#!/usr/bin/env python3
"""Protecting a convolutional network's weights — the paper's
motivating safety scenario (mis-classifications in e.g. autonomous
driving).

The network's convolution weights (Layer1/Layer2) are read by every
CTA of every image: a multi-bit fault there flips classifications
across the whole batch, while a fault in one input image is contained
to that image.  Protecting the two weight arrays (~2% of memory)
removes the systemic failure mode at negligible cost.

Run:  python examples/protect_cnn.py
"""

from repro import ReliabilityManager, create_app
from repro.analysis.report import campaign_table
from repro.faults.outcomes import Outcome


def main() -> None:
    app = create_app("C-NN", scale="small")
    manager = ReliabilityManager(app)

    t3 = manager.table3()
    print(f"C-NN input objects by importance: "
          f"{', '.join(t3.objects_by_importance)}")
    print(f"hot (protected) objects: {', '.join(t3.hot_objects)} — "
          f"{t3.hot_footprint_pct:.2f}% of application memory\n")

    # Inject 4-bit faults into the weights (the hot arm of Fig 6) and
    # into the rest of memory, with and without protection.
    results = []
    for label, scheme, protect, selection in (
        ("weights faulted, unprotected", "baseline", "none", "hot"),
        ("weights faulted, detection", "detection", "hot", "hot"),
        ("weights faulted, correction", "correction", "hot", "hot"),
        ("rest-of-memory faulted, unprotected", "baseline", "none",
         "rest"),
    ):
        result = manager.evaluate(
            scheme=scheme, protect=protect, runs=120, n_bits=4,
            n_blocks=1, selection=selection,
        )
        results.append(result)
        flips = result.count(Outcome.SDC)
        print(f"{label:38s} -> {flips} runs with misclassifications, "
              f"{result.count(Outcome.DETECTED)} detected, "
              f"{result.count(Outcome.CORRECTED)} corrected")

    print()
    print(campaign_table(results).render())

    base = manager.simulate_performance("baseline", "none")
    corr = manager.simulate_performance("correction", "hot")
    print(f"\ncost of triplicating the weights: "
          f"{100 * (corr.slowdown_vs(base) - 1):+.2f}% execution time")


if __name__ == "__main__":
    main()
