#!/usr/bin/env python3
"""Bringing your own kernel under the reliability framework.

Implements a small SAXPY-with-lookup-table workload from scratch —
the lookup table is broadcast-read by every warp iteration (hot),
while the x/y vectors stream (cold) — and runs the whole pipeline on
it: profiling, automated hot-object discovery, fault campaigns, and
timing simulation.

This is the template for evaluating applications the paper did not:
subclass GpuApplication, provide setup/execute/build_trace, done.

Run:  python examples/custom_kernel.py
"""

import numpy as np

from repro import ReliabilityManager
from repro.arch.address_space import DeviceMemory
from repro.kernels import common
from repro.kernels.base import GpuApplication
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.metrics.vector import VectorDeviationMetric

TABLE_SIZE = 64  # lookup table: 2 memory blocks, read constantly
CTA_SIZE = 128


class TableSaxpy(GpuApplication):
    """y[i] = table[x_class[i]] * x[i] + y[i], iterated K times."""

    name = "X-TableSaxpy"
    suite = "custom"

    def __init__(self, n: int = 4096, iterations: int = 16,
                 seed: int = 1234):
        self.n = n
        self.iterations = iterations
        super().__init__(seed)

    def _make_metric(self):
        return VectorDeviationMetric(threshold=1.0)

    @property
    def object_importance(self):
        return ["table", "x"]

    @property
    def hot_object_names(self):
        return {"table"}

    def setup(self, memory: DeviceMemory) -> None:
        rng = self.rng(0)
        table = memory.alloc("table", (TABLE_SIZE,), np.float32)
        x = memory.alloc("x", (self.n,), np.float32)
        memory.alloc("y", (self.n,), np.float32, read_only=False)
        memory.write_object(
            table, rng.uniform(0.5, 1.5, size=TABLE_SIZE))
        memory.write_object(x, rng.uniform(-1.0, 1.0, size=self.n))

    def execute(self, memory: DeviceMemory, reader) -> np.ndarray:
        table = reader.read(memory.object("table"))
        x = reader.read(memory.object("x"))
        classes = (np.arange(self.n) % TABLE_SIZE)
        y = np.zeros(self.n, dtype=np.float64)
        with np.errstate(all="ignore"):
            for _ in range(self.iterations):
                y = table[classes] * x + y
        memory.write_object(memory.object("y"), y)
        return memory.read_object(memory.object("y"))

    def build_trace(self, memory: DeviceMemory) -> AppTrace:
        table = memory.object("table")
        x = memory.object("x")
        y = memory.object("y")
        kernel = KernelTrace("table_saxpy")
        warp_id = 0
        for cta_id, (first, size) in enumerate(
            common.ctas_of_threads(self.n, CTA_SIZE)
        ):
            cta = CtaTrace(cta_id)
            for w_first, lanes in common.warp_partition(size):
                t0 = first + w_first
                insts: list = [Compute(2)]
                x_blocks = common.contiguous_blocks(x, t0, lanes)
                y_blocks = common.contiguous_blocks(y, t0, lanes)
                for k in range(self.iterations):
                    insts.append(Load(
                        "table",
                        (common.block_addr(table,
                                           (t0 + k) % TABLE_SIZE),)))
                    insts.append(Load("x", x_blocks))
                    insts.append(Load("y", y_blocks))
                    insts.append(Compute(2, wait=True))
                    insts.append(Store("y", y_blocks))
                cta.warps.append(WarpTrace(warp_id, insts))
                warp_id += 1
            kernel.ctas.append(cta)
        return AppTrace(self.name, [kernel])


def main() -> None:
    manager = ReliabilityManager(TableSaxpy())

    discovery = manager.discover_hot_objects()
    print(f"hot objects discovered automatically: "
          f"{discovery.hot_objects}")
    assert discovery.matches_declaration

    t3 = manager.table3()
    print(f"table footprint: {t3.hot_footprint_pct:.3f}% of memory, "
          f"absorbing {t3.hot_access_pct:.1f}% of reads")

    base = manager.evaluate(scheme="baseline", protect="none",
                            runs=100, n_bits=3, selection="hot")
    corr = manager.evaluate(scheme="correction", protect="hot",
                            runs=100, n_bits=3, selection="hot")
    print(f"\nfaults in the table, unprotected: "
          f"{base.sdc_count} SDCs / {base.n_runs} runs")
    print(f"faults in the table, triplicated:  "
          f"{corr.sdc_count} SDCs / {corr.n_runs} runs")

    perf_base = manager.simulate_performance("baseline", "none")
    perf_corr = manager.simulate_performance("correction", "hot")
    print(f"protection overhead: "
          f"{100 * (perf_corr.slowdown_vs(perf_base) - 1):+.2f}%")


if __name__ == "__main__":
    main()
