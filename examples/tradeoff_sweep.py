#!/usr/bin/env python3
"""The Section V-C reliability/performance tradeoff, end to end.

Sweeps the number of protected objects for one application under both
schemes and prints the curve a deployment engineer would use to pick
an operating point.

Run:  python examples/tradeoff_sweep.py [APP]
"""

import sys

from repro import ReliabilityManager, create_app
from repro.analysis.tradeoff import knee_point, tradeoff_curve
from repro.utils.tables import TextTable


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "A-Laplacian"
    manager = ReliabilityManager(create_app(app_name, scale="small"))

    for scheme in ("detection", "correction"):
        points = tradeoff_curve(
            manager, scheme=scheme, runs=80, n_bits=3,
            selection="hot",
        )
        print(f"\n=== {app_name}, {scheme} scheme ===")
        table = TextTable(
            ["protected", "objects", "norm time", "norm missed",
             "SDC", "detected", "corrected"],
            float_format="{:.3f}",
        )
        for p in points:
            table.add_row([
                p.n_protected,
                ",".join(p.protected_names) or "-",
                p.slowdown,
                p.missed_accesses_ratio,
                p.sdc_count,
                p.detected_count,
                p.corrected_count,
            ])
        print(table.render())
        knee = knee_point(points)
        print(f"sweet spot: {knee.n_protected} object(s) at "
              f"{100 * (knee.slowdown - 1):+.1f}% time, "
              f"{knee.sdc_count} SDC / {knee.runs} runs")


if __name__ == "__main__":
    main()
