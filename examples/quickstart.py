#!/usr/bin/env python3
"""Quickstart: protect a GPGPU application's hot data in five steps.

Run:  python examples/quickstart.py
"""

from repro import ReliabilityManager, create_app

def main() -> None:
    # 1. Pick an application (P-BICG: the paper's Listing 1 example).
    app = create_app("P-BICG", scale="small")
    manager = ReliabilityManager(app)

    # 2. One-time offline profiling: where do the accesses go?
    profile = manager.profile
    print(f"{app.name}: {profile.total_reads} read transactions over "
          f"{profile.n_blocks} memory blocks")
    print(f"hottest/coldest block ratio: "
          f"{profile.max_min_ratio():.0f}x")

    # 3. Identify the hot data objects (automated, NVBit-style).
    discovery = manager.discover_hot_objects()
    print(f"hot objects discovered: {discovery.hot_objects} "
          f"(matches source analysis: "
          f"{discovery.matches_declaration})")

    t3 = manager.table3()
    print(f"they occupy {t3.hot_footprint_pct:.2f}% of memory and "
          f"absorb {t3.hot_access_pct:.1f}% of reads")

    # 4. How vulnerable is the app without protection?
    baseline = manager.evaluate(
        scheme="baseline", protect="none", runs=100, n_bits=3,
        selection="hot",
    )
    print(f"\nno protection, faults in hot blocks:\n"
          f"{baseline.summary()}")

    # 5. Protect the hot objects with triplication + majority vote.
    protected = manager.evaluate(
        scheme="correction", protect="hot", runs=100, n_bits=3,
        selection="hot",
    )
    print(f"\ncorrection scheme, hot objects protected:\n"
          f"{protected.summary()}")

    # And what does it cost?  One timing run per configuration.
    base_perf = manager.simulate_performance("baseline", "none")
    prot_perf = manager.simulate_performance("correction", "hot")
    overhead = 100.0 * (prot_perf.slowdown_vs(base_perf) - 1.0)
    print(f"\nperformance overhead of that protection: "
          f"{overhead:+.1f}% "
          f"({prot_perf.replica_transactions} replica transactions)")


if __name__ == "__main__":
    main()
