#!/usr/bin/env python3
"""Comparing the paper's schemes against the related-work baselines.

Pits hot-data duplication/triplication against (a) plain SECDED, (b)
dual-modular redundant execution, and (c) checkpoint/restart, on the
same hot-block multi-bit faults — the quantified version of the
paper's Sections II-B and VI.

Run:  python examples/compare_baselines.py
"""

from repro import ReliabilityManager, create_app
from repro.analysis.recovery import compare_strategies
from repro.core.baselines import (
    CheckpointModel,
    classify_dmr_run,
    dmr_slowdown,
)
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.injector import apply_faults
from repro.faults.model import live_words, sample_word_fault
from repro.faults.outcomes import Outcome
from repro.faults.selection import uniform_selection
from repro.utils.rng import RngStream, derive_seed
from repro.utils.tables import TextTable

APP = "P-MVT"
RUNS = 80
N_BITS = 3
SEED = 20210621


def hot_pool(manager):
    return sorted(
        a for n in manager.app.hot_object_names
        for a in manager.memory.object(n).block_addrs()
    )


def run_dmr_arm(manager):
    counts = {o: 0 for o in Outcome}
    golden = manager.app.golden_output()
    selection = uniform_selection(hot_pool(manager))
    for run_index in range(RUNS):
        rng = RngStream(derive_seed(SEED, run_index))
        memory = manager.memory.clone()
        addr = selection.pick(rng, 1)[0]
        fault = sample_word_fault(
            rng.child(0), addr, N_BITS,
            word_candidates=live_words(memory.object_at(addr), addr))
        apply_faults(memory, [fault])
        counts[classify_dmr_run(manager.app, memory, golden).outcome] \
            += 1
    return counts


def run_scheme_arm(manager, scheme, protect, secded=False):
    return Campaign(
        manager.app, uniform_selection(hot_pool(manager)),
        scheme=scheme,
        protect=manager.protected_names(protect),
        config=CampaignConfig(runs=RUNS, n_bits=N_BITS, seed=SEED,
                              secded=secded),
    ).run()


def main() -> None:
    manager = ReliabilityManager(create_app(APP, scale="small"))
    base_perf = manager.simulate_performance("baseline", "none")

    print(f"=== {APP}: hot-block {N_BITS}-bit faults, {RUNS} runs ===\n")
    table = TextTable(
        ["Protection", "slowdown", "SDC", "loud (DUE/det/crash)",
         "corrected"],
        float_format="{:.3f}",
    )

    none = run_scheme_arm(manager, "baseline", "none")
    table.add_row(["none", 1.0, none.sdc_count,
                   none.count(Outcome.CRASH), 0])

    secded = run_scheme_arm(manager, "baseline", "none", secded=True)
    table.add_row(["SECDED only", 1.0, secded.sdc_count,
                   secded.count(Outcome.DETECTED)
                   + secded.count(Outcome.CRASH), 0])

    dmr = run_dmr_arm(manager)
    table.add_row(["DMR (run twice)", dmr_slowdown(base_perf.cycles),
                   dmr[Outcome.SDC],
                   dmr[Outcome.DETECTED] + dmr[Outcome.CRASH], 0])

    det = run_scheme_arm(manager, "detection", "hot")
    det_perf = manager.simulate_performance("detection", "hot")
    table.add_row(["hot duplication (paper)",
                   det_perf.slowdown_vs(base_perf), det.sdc_count,
                   det.count(Outcome.DETECTED)
                   + det.count(Outcome.CRASH), 0])

    corr = run_scheme_arm(manager, "correction", "hot")
    corr_perf = manager.simulate_performance("correction", "hot")
    table.add_row(["hot triplication (paper)",
                   corr_perf.slowdown_vs(base_perf), corr.sdc_count,
                   corr.count(Outcome.DETECTED)
                   + corr.count(Outcome.CRASH),
                   corr.count(Outcome.CORRECTED)])

    print(table.render())

    model = CheckpointModel.for_app(
        manager.memory, total_cycles=base_perf.cycles,
        n_checkpoints=10, config=manager.config)
    print(f"\ncheckpoint/restart overhead (10 snapshots of the full "
          f"{model.writable_bytes // 1024}KB allocation): "
          f"{100 * model.overhead_fraction:.1f}% before any fault "
          "occurs")
    row = compare_strategies(
        det_perf.slowdown_vs(base_perf), model, base_perf.cycles,
        detect_probability=0.05)
    print(f"expected runtime at 5% per-run detection probability: "
          f"rerun {row.rerun:.3f} vs checkpoint {row.checkpoint:.3f} "
          f"vs DMR {row.dmr:.3f} -> {row.winner} wins")


if __name__ == "__main__":
    main()
