#!/usr/bin/env python3
"""Reproducing a full fault-injection campaign grid (Figures 6 and 9).

Runs the paper's {1,5}-block x {2,3,4}-bit grid against one
application, first contrasting hot vs rest fault sites (Fig 6), then
sweeping protection levels under exposure-weighted injection (Fig 9).

Run:  python examples/fault_campaign.py [APP] [RUNS] [JOBS]

JOBS > 1 fans each campaign out over worker processes; the outcome
tallies are bit-identical to a serial run.
"""

import sys

from repro import ReliabilityManager, create_app
from repro.analysis.figures import FAULT_GRID, fig6_grid, fig9_grid
from repro.utils.tables import TextTable


def main() -> None:
    app_name = sys.argv[1] if len(sys.argv) > 1 else "A-Sobel"
    runs = int(sys.argv[2]) if len(sys.argv) > 2 else 100
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1

    manager = ReliabilityManager(create_app(app_name, scale="small"),
                                 jobs=jobs)
    n_hot = len(manager.app.hot_object_names)

    print(f"=== Figure 6 grid for {app_name} ({runs} runs/config) ===")
    table = TextTable(
        ["space", "blocks", "bits", "SDC", "crash", "masked"])
    for cell in fig6_grid(manager, runs=runs):
        table.add_row([cell.space, cell.n_blocks, cell.n_bits,
                       cell.sdc, cell.crash, cell.masked])
    print(table.render())

    print(f"\n=== Figure 9 sweep for {app_name} "
          f"(correction scheme) ===")
    table = TextTable(
        ["protected", "blocks", "bits", "SDC", "corrected", "crash"])
    cells = fig9_grid(
        manager, scheme="correction", runs=runs,
        levels=[0, n_hot], grid=FAULT_GRID,
    )
    for cell in cells:
        table.add_row([cell.n_protected, cell.n_blocks, cell.n_bits,
                       cell.sdc, cell.corrected, cell.crash])
    print(table.render())

    base_bad = sum(c.sdc + c.crash for c in cells if c.n_protected == 0)
    prot_bad = sum(c.sdc + c.crash for c in cells
                   if c.n_protected == n_hot)
    if base_bad:
        drop = 100.0 * (base_bad - prot_bad) / base_bad
        print(f"\nbad outcomes (SDC+crash) drop with hot protection: "
              f"{drop:.1f}%  ({base_bad} -> {prot_bad})")


if __name__ == "__main__":
    main()
