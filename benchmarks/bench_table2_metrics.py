"""Table II — output error metrics for the evaluated applications."""

from conftest import banner

from repro.analysis.figures import table2_rows
from repro.utils.tables import TextTable


def test_table2_error_metrics(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)

    banner("Table II: Output error metrics for applications")
    table = TextTable(["Application", "Output Format", "Error Metric"])
    for row in rows:
        table.add_row(list(row))
    print(table.render())

    by_app = {r[0]: r for r in rows}
    assert len(rows) == 8
    assert "mis-classifications" in by_app["C-NN"][2].lower()
    for app in ("P-BICG", "P-GESUMMV", "P-MVT"):
        assert by_app[app][1] == "Result Vector"
        assert "vector elements" in by_app[app][2]
    for app in ("A-Laplacian", "A-Meanfilter", "A-Sobel", "A-SRAD"):
        assert "Root Mean Square" in by_app[app][2]
