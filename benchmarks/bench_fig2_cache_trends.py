"""Figure 2 — L2 cache size trends for NVIDIA and AMD GPUs."""

from conftest import banner

from repro.analysis.figures import fig2_rows
from repro.data.gpu_trends import growth_factor
from repro.utils.tables import TextTable


def test_fig2_l2_size_trend(benchmark):
    rows = benchmark.pedantic(fig2_rows, rounds=1, iterations=1)

    banner("Figure 2: L2 cache size trends for NVIDIA and AMD GPUs")
    table = TextTable(["Vendor", "GPU", "Year", "L2 (MiB)"],
                      float_format="{:.2f}")
    for vendor, model, year, l2_mib in rows:
        table.add_row([vendor, model, year, l2_mib])
    print(table.render())
    print(f"\nNVIDIA growth over the surveyed span: "
          f"{growth_factor('NVIDIA'):.0f}x")
    print(f"AMD growth over the surveyed span:    "
          f"{growth_factor('AMD'):.0f}x")

    # The paper's motivating claims: relentless growth, and Ampere's
    # L2 being ~10x its predecessor generation's.
    nvidia = [(y, l2) for v, _m, y, l2 in rows if v == "NVIDIA"]
    assert nvidia[-1][1] >= 6 * nvidia[-2][1]
    assert growth_factor("NVIDIA") > 10
    assert growth_factor("AMD") > 5
