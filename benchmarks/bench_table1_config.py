"""Table I — key configuration parameters of the simulated GPU."""

from conftest import banner

from repro.analysis.figures import table1_rows
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.utils.tables import TextTable


def test_table1_configuration(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)

    banner("Table I: Key configuration parameters of the simulated GPU")
    table = TextTable(["Category", "Configuration"])
    for category, description in rows:
        table.add_row([category, description])
    print(table.render())

    row_map = dict(rows)
    assert "1400MHz core clock" in row_map["Core Features"]
    assert "SIMT width = 32" in row_map["Core Features"]
    assert "15 SMs" in row_map["Resources / Core"]
    assert "1536 KB in total" in row_map["L2 Caches"]
    assert "6 GDDR5 Memory Controllers" in row_map["Memory Model"]
    assert "924 MHz memory clock" in row_map["Memory Model"]
    assert PAPER_CONFIG == GpuConfig()
