"""Figures 8/9 — silent data corruption under the resilience schemes.

Faults are injected across the application memory space with
probability proportional to each block's exposure (see DESIGN.md on
the access-weighted substitution for Fig 8's miss weighting), for
every {1, 5}-block x {2, 3, 4}-bit configuration.  The x-axis of
Fig 9 — the number of cumulatively protected objects — is sampled at
baseline (0), hot objects, and all objects.

Headline: protecting only the hot objects drops SDC outcomes by
98.97% on average in the paper.
"""

import numpy as np
from conftest import RUNS, SEED, banner

from repro.analysis.figures import FAULT_GRID, fig9_grid
from repro.kernels.registry import APPLICATIONS
from repro.utils.tables import TextTable


def test_fig9_sdc_reduction(benchmark, managers):
    def compute():
        grids = {}
        for name, manager in managers.items():
            n_objects = len(manager.app.object_importance)
            n_hot = len(manager.app.hot_object_names)
            levels = sorted({0, n_hot, n_objects})
            per_scheme = {}
            for scheme in ("detection", "correction"):
                per_scheme[scheme] = fig9_grid(
                    manager, scheme=scheme, runs=RUNS, levels=levels,
                    seed=SEED,
                )
            grids[name] = (n_hot, per_scheme)
        return grids

    grids = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner(f"Figure 9: SDC outcomes vs protected objects "
           f"({RUNS} runs/config, grid = {{1,5}}blk x {{2,3,4}}bit)")
    table = TextTable(
        ["App", "Scheme", "Protected", "SDC (sum over grid)",
         "Detected", "Corrected", "Crash"],
    )
    drops_sdc = []
    drops_bad = []
    for name in APPLICATIONS:
        n_hot, per_scheme = grids[name]
        for scheme in ("detection", "correction"):
            cells = per_scheme[scheme]
            levels = sorted({c.n_protected for c in cells})
            sums = {}
            for level in levels:
                level_cells = [c for c in cells
                               if c.n_protected == level]
                sums[level] = (
                    sum(c.sdc for c in level_cells),
                    sum(c.detected for c in level_cells),
                    sum(c.corrected for c in level_cells),
                    sum(c.crash for c in level_cells),
                )
                label = (
                    "baseline" if level == 0 else
                    f"hot ({level})" if level == n_hot else
                    f"all ({level})"
                )
                table.add_row([name, scheme, label, *sums[level]])
            base_sdc, base_bad = sums[0][0], sums[0][0] + sums[0][3]
            hot_sdc, hot_bad = (
                sums[n_hot][0], sums[n_hot][0] + sums[n_hot][3])
            if base_sdc:
                drops_sdc.append(
                    100.0 * (base_sdc - hot_sdc) / base_sdc)
            if base_bad:
                drops_bad.append(
                    100.0 * (base_bad - hot_bad) / base_bad)
    print(table.render())

    avg_sdc = float(np.mean(drops_sdc)) if drops_sdc else 0.0
    avg_bad = float(np.mean(drops_bad)) if drops_bad else 0.0
    print(f"\naverage SDC drop with hot-object protection: "
          f"{avg_sdc:.2f}% (paper: 98.97%)")
    print(f"average bad-outcome (SDC+crash) drop:        "
          f"{avg_bad:.2f}%  — the apples-to-apples headline in this "
          "model, which separates crashes from SDCs")

    # Shape assertions: the headline reduction holds on bad outcomes;
    # pure SDC counts can locally rise when protection converts a
    # baseline crash into a completed-but-deviating run.
    assert avg_bad > 85.0
    assert avg_sdc > 50.0
    for name in APPLICATIONS:
        n_hot, per_scheme = grids[name]
        for scheme in ("detection", "correction"):
            cells = per_scheme[scheme]
            base = sum(c.sdc + c.crash for c in cells
                       if c.n_protected == 0)
            hot = sum(c.sdc + c.crash for c in cells
                      if c.n_protected == n_hot)
            # Protection never makes things worse; where the baseline
            # suffers, it helps substantially.
            assert hot <= base, (name, scheme)
            if base >= 20:
                assert hot <= base // 2, (name, scheme)
        # Detection converts bad outcomes into detections, correction
        # into corrected completions.
        det_cells = [c for c in per_scheme["detection"]
                     if c.n_protected == n_hot]
        cor_cells = [c for c in per_scheme["correction"]
                     if c.n_protected == n_hot]
        assert sum(c.detected for c in det_cells) > 0, name
        assert sum(c.corrected for c in cor_cells) > 0, name
        assert sum(c.detected for c in cor_cells) == 0, name
