"""Ablation — the lazy comparison (Section IV-B1).

The detection scheme's low overhead hinges on *not* stalling for the
second copy: execution proceeds when the first copy arrives and the
comparison happens in the background.  This bench contrasts lazy with
an eager variant that waits for both copies, at full protection where
the difference is maximal.
"""

from conftest import banner

from repro.sim.simulator import simulate_app
from repro.utils.tables import TextTable

APPS = ("P-BICG", "P-GESUMMV", "A-Laplacian")


def test_lazy_vs_eager_detection(benchmark, managers):
    def compute():
        rows = {}
        for name in APPS:
            manager = managers[name]
            protected = manager.protected_names("all")
            base = manager.simulate_performance("baseline", "none")
            lazy = simulate_app(
                manager.app, manager.trace, manager.memory,
                manager.config, scheme_name="detection",
                protected_names=protected, lazy=True,
            )
            eager = simulate_app(
                manager.app, manager.trace, manager.memory,
                manager.config, scheme_name="detection",
                protected_names=protected, lazy=False,
            )
            rows[name] = (base, lazy, eager)
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner("Ablation: lazy vs eager copy comparison "
           "(detection, all objects protected)")
    table = TextTable(
        ["App", "lazy slowdown", "eager slowdown", "eager/lazy"],
        float_format="{:.3f}",
    )
    for name in APPS:
        base, lazy, eager = rows[name]
        lazy_s = lazy.slowdown_vs(base)
        eager_s = eager.slowdown_vs(base)
        table.add_row([name, lazy_s, eager_s, eager_s / lazy_s])
    print(table.render())

    for name in APPS:
        base, lazy, eager = rows[name]
        # Both replicate every protected miss (exact counts differ
        # slightly: timing feeds back into L1 hit patterns)...
        assert lazy.replica_transactions > 0
        assert eager.replica_transactions > 0
        # ...but eager stalls on the slower copy.
        assert eager.cycles >= lazy.cycles, name
    # Somewhere in the suite laziness buys a real margin.
    margins = [
        rows[name][2].cycles / rows[name][1].cycles for name in APPS
    ]
    assert max(margins) > 1.01
