"""Trace-subsystem overhead: disabled tracer must be (near) free.

The trace hooks are attached per simulation *instance* — when no
:class:`~repro.obs.trace.TraceSession` is passed, every component runs
its original, unwrapped methods, so the disabled path is the no-hooks
baseline by construction.  This bench keeps that property honest
against future regressions (an unconditional hook, a stray branch in
a hot loop) by timing three interleaved arms on the paper's GPU
configuration:

* ``baseline`` — ``simulate_app`` with no tracer;
* ``disabled`` — the identical call, timed in alternation with the
  baseline (both must run the same code; the measured ratio is pure
  noise and asserted ``< 1.02``);
* ``enabled``  — a fresh default-config ``TraceSession`` per run,
  gated at ``MAX_ENABLED_RATIO`` over baseline: the fused hot-path
  instrumentation (interned emission sites, a flat tuple ring with
  amortized compaction, export-time stringification) keeps full
  tracing cheap enough to leave on.

Each sample batches ``REPRO_BENCH_TRACE_BATCH`` timing runs (default
20, ~0.7 s), after one warm-up batch per arm.  The baseline/disabled
comparison alternates the two arms back-to-back (order flipping every
sample, a fresh ``gc.collect()`` before each batch) and compares the
*minimum* over ``REPRO_BENCH_TRACE_SAMPLES`` samples — the minimum is
the standard noise-robust estimator for identical-code timing.  The
enabled arm runs as a *paired design*: each sample times a fresh
baseline batch and an enabled batch back-to-back (order flipping per
sample) and the gated statistic is the median of the per-pair
``enabled / baseline`` ratios.  Pairing cancels the slow drift
(thermal, scheduler, allocator state) that makes unpaired estimators
on a shared host flap across runs — each ratio compares two batches
measured seconds apart, and the median rejects the tail pairs where
one arm was preempted.  Results go to ``BENCH_trace.json`` at the
repository root.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from conftest import SEED, banner

from repro.kernels.registry import create_app
from repro.obs.trace import TraceConfig, TraceSession
from repro.sim.simulator import simulate_app
from repro.utils.tables import TextTable

BATCH = int(os.environ.get("REPRO_BENCH_TRACE_BATCH", "20"))
SAMPLES = int(os.environ.get("REPRO_BENCH_TRACE_SAMPLES", "7"))
_APP, _SCALE = "P-BICG", "small"
_SCHEME, _PROTECT = "detection", ("A",)

#: Disabled-tracer slowdown bar from the issue's acceptance criteria.
MAX_DISABLED_RATIO = 1.02
#: Enabled-tracer slowdown bar from the issue's acceptance criteria.
MAX_ENABLED_RATIO = 1.3


def _run_batch(app, trace, memory, tracer_factory) -> float:
    """Seconds for one batch of timing runs (fresh tracer per run)."""
    start = time.perf_counter()
    for _ in range(BATCH):
        simulate_app(
            app, trace=trace, memory=memory,
            scheme_name=_SCHEME, protected_names=_PROTECT,
            tracer=tracer_factory() if tracer_factory else None,
        )
    return time.perf_counter() - start


def test_trace_overhead(benchmark):
    app = create_app(_APP, scale=_SCALE, seed=SEED)
    memory = app.fresh_memory()
    trace = app.build_trace(memory)

    def enabled_tracer():
        return TraceSession(TraceConfig())

    def compute():
        # Warm-up batches: JIT-free Python still warms allocator/caches,
        # and the first enabled batch additionally pays the one-time
        # site interning and ring growth.
        _run_batch(app, trace, memory, None)
        _run_batch(app, trace, memory, enabled_tracer)
        times: dict[str, list[float]] = {
            "baseline": [], "disabled": [], "enabled": [],
        }
        for i in range(SAMPLES):
            # Alternate arm order so slow drift (thermal, scheduler)
            # cancels instead of biasing one arm.
            order = ("baseline", "disabled") if i % 2 == 0 \
                else ("disabled", "baseline")
            for arm in order:
                gc.collect()
                times[arm].append(_run_batch(app, trace, memory, None))
        pairs: list[tuple[float, float]] = []
        for i in range(SAMPLES):
            # The enabled arm is paired: each sample times a fresh
            # baseline batch back-to-back with an enabled batch, so
            # every ratio cancels whatever drift both batches shared.
            order = ("baseline", "enabled") if i % 2 == 0 \
                else ("enabled", "baseline")
            sample = {}
            for arm in order:
                gc.collect()
                sample[arm] = _run_batch(
                    app, trace, memory,
                    enabled_tracer if arm == "enabled" else None,
                )
                times[arm].append(sample[arm])
            pairs.append((sample["baseline"], sample["enabled"]))
        return times, pairs

    times, pairs = benchmark.pedantic(compute, rounds=1, iterations=1)

    best = {arm: min(ts) for arm, ts in times.items()}
    median = {arm: statistics.median(ts) for arm, ts in times.items()}
    # Both estimators converge to 1.0 for identical code; a genuine
    # regression (an unconditional hook) inflates both, while taking
    # the smaller of the two rejects one-sided sampling noise.
    disabled_ratio = min(best["disabled"] / best["baseline"],
                         median["disabled"] / median["baseline"])
    # Paired estimator: drift common to a pair's two batches divides
    # out of its ratio, and the median rejects pairs where one arm
    # caught a preemption tail.
    pair_ratios = sorted(en / base for base, en in pairs)
    enabled_ratio = statistics.median(pair_ratios)

    report = {
        "app": _APP,
        "scale": _SCALE,
        "scheme": _SCHEME,
        "protect": list(_PROTECT),
        "seed": SEED,
        "batch_runs": BATCH,
        "samples": SAMPLES,
        "best_seconds": {k: round(v, 4) for k, v in best.items()},
        "median_seconds": {k: round(v, 4) for k, v in median.items()},
        "enabled_pair_ratios": [round(r, 4) for r in pair_ratios],
        "all_seconds": {
            k: [round(v, 4) for v in ts] for k, ts in times.items()
        },
        "disabled_over_baseline": round(disabled_ratio, 4),
        "enabled_over_baseline": round(enabled_ratio, 4),
        "max_disabled_ratio": MAX_DISABLED_RATIO,
        "max_enabled_ratio": MAX_ENABLED_RATIO,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Trace overhead ({_APP} {_SCHEME}, {BATCH} runs/batch, "
           f"{SAMPLES} samples)")
    table = TextTable(["arm", "best s/batch", "median s/batch",
                       "vs baseline"],
                      float_format="{:.3f}")
    table.add_row(["baseline", best["baseline"], median["baseline"],
                   1.0])
    table.add_row(["disabled", best["disabled"], median["disabled"],
                   disabled_ratio])
    table.add_row(["enabled", best["enabled"], median["enabled"],
                   enabled_ratio])
    print(table.render())
    print(f"\nwrote {out}")

    assert disabled_ratio < MAX_DISABLED_RATIO, (
        f"disabled-tracer path is {100 * (disabled_ratio - 1):.2f}% "
        f"slower than the no-hooks baseline (bar: "
        f"{100 * (MAX_DISABLED_RATIO - 1):.0f}%)"
    )
    assert enabled_ratio <= MAX_ENABLED_RATIO, (
        f"enabled-tracer path is {enabled_ratio:.3f}x the baseline "
        f"(bar: {MAX_ENABLED_RATIO}x)"
    )
    # Enabled tracing must actually record something (sanity that the
    # enabled arm exercised the hooks rather than silently no-opping).
    probe = TraceSession(TraceConfig())
    simulate_app(app, trace=trace, memory=memory, scheme_name=_SCHEME,
                 protected_names=_PROTECT, tracer=probe)
    assert probe.emitted > 0 and probe.samples


#: Provenance-enabled campaign slowdown bar over telemetry-only.
MAX_PROVENANCE_RATIO = 1.15
PROV_RUNS = int(os.environ.get("REPRO_BENCH_PROV_RUNS", "600"))
PROV_SAMPLES = int(os.environ.get("REPRO_BENCH_PROV_SAMPLES", "7"))


def _campaign_batch(app, provenance: bool) -> float:
    """Seconds for one fresh batched campaign (telemetry always on)."""
    from repro.faults.campaign import Campaign, CampaignConfig
    from repro.faults.selection import uniform_selection

    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    campaign = Campaign(
        app,
        uniform_selection(pool),
        scheme=_SCHEME,
        protect=_PROTECT,
        config=CampaignConfig(runs=PROV_RUNS, n_blocks=2, n_bits=2,
                              seed=SEED),
        collect_records=True,
        collect_provenance=provenance,
        batch=16,
    )
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    assert len(result.records) == PROV_RUNS
    assert len(result.provenance) == (PROV_RUNS if provenance else 0)
    return elapsed


def test_provenance_overhead(benchmark):
    """Provenance derivation rides the golden evidence the batched
    classifier already holds, so a provenance-enabled campaign must
    stay within ``MAX_PROVENANCE_RATIO`` of the telemetry-only arm
    (paired design, median of per-pair ratios)."""
    app = create_app(_APP, scale=_SCALE, seed=SEED)

    def compute():
        _campaign_batch(app, provenance=False)   # warm-up (app cache)
        _campaign_batch(app, provenance=True)
        pairs = []
        for i in range(PROV_SAMPLES):
            order = (False, True) if i % 2 == 0 else (True, False)
            sample = {}
            for provenance in order:
                gc.collect()
                sample[provenance] = _campaign_batch(app, provenance)
            pairs.append((sample[False], sample[True]))
        return pairs

    pairs = benchmark.pedantic(compute, rounds=1, iterations=1)
    pair_ratios = sorted(prov / base for base, prov in pairs)
    # Two estimators, same rationale as ``disabled_ratio`` above: the
    # paired median cancels slow drift, the ratio of per-arm minima
    # approaches the no-contention cost; a genuine regression inflates
    # both, so taking the smaller rejects one-sided sampling noise.
    min_ratio = min(prov for _, prov in pairs) \
        / min(base for base, _ in pairs)
    ratio = min(statistics.median(pair_ratios), min_ratio)

    report = {}
    out = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    if out.exists():
        report = json.loads(out.read_text())
    report["provenance"] = {
        "app": _APP,
        "scheme": _SCHEME,
        "runs": PROV_RUNS,
        "batch": 16,
        "samples": PROV_SAMPLES,
        "pair_ratios": [round(r, 4) for r in pair_ratios],
        "min_ratio": round(min_ratio, 4),
        "provenance_over_telemetry": round(ratio, 4),
        "max_provenance_ratio": MAX_PROVENANCE_RATIO,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Provenance overhead ({_APP} {_SCHEME}, {PROV_RUNS} runs, "
           f"{PROV_SAMPLES} samples)")
    print(f"provenance/telemetry-only median pair ratio: {ratio:.3f} "
          f"(bar: {MAX_PROVENANCE_RATIO}x)\nwrote {out}")

    assert ratio <= MAX_PROVENANCE_RATIO, (
        f"provenance-enabled campaign is {ratio:.3f}x the "
        f"telemetry-only arm (bar: {MAX_PROVENANCE_RATIO}x)"
    )
    # Structural zero-cost check: with collection off, the golden
    # evidence base is never even built.
    from repro.faults.campaign import Campaign, CampaignConfig
    from repro.faults.selection import uniform_selection

    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    scalar = Campaign(
        app, uniform_selection(pool), scheme=_SCHEME,
        protect=_PROTECT,
        config=CampaignConfig(runs=4, n_blocks=1, n_bits=2, seed=SEED),
    )
    result = scalar.run()
    assert scalar._evidence is None, (
        "telemetry-only scalar campaign built the golden evidence "
        "base — provenance is supposed to be pay-for-use"
    )
    assert result.provenance == []
