"""Trace-subsystem overhead: disabled tracer must be (near) free.

The trace hooks are attached per simulation *instance* — when no
:class:`~repro.obs.trace.TraceSession` is passed, every component runs
its original, unwrapped methods, so the disabled path is the no-hooks
baseline by construction.  This bench keeps that property honest
against future regressions (an unconditional hook, a stray branch in
a hot loop) by timing three interleaved arms on the paper's GPU
configuration:

* ``baseline`` — ``simulate_app`` with no tracer;
* ``disabled`` — the identical call, timed in alternation with the
  baseline (both must run the same code; the measured ratio is pure
  noise and asserted ``< 1.02``);
* ``enabled``  — a fresh default-config ``TraceSession`` per run,
  reported for information (full tracing is expected to cost real
  time; it is an opt-in diagnostic mode).

Each sample batches ``REPRO_BENCH_TRACE_BATCH`` timing runs (default
20, ~0.7 s).  The baseline/disabled comparison alternates the two
arms back-to-back (order flipping every sample, a fresh
``gc.collect()`` before each batch) and compares the *minimum* over
``REPRO_BENCH_TRACE_SAMPLES`` samples — the minimum is the standard
noise-robust estimator for identical-code timing, and the enabled arm
runs only after the comparison so its allocation debris cannot skew
it.  Results go to ``BENCH_trace.json`` at the repository root.
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from conftest import SEED, banner

from repro.kernels.registry import create_app
from repro.obs.trace import TraceConfig, TraceSession
from repro.sim.simulator import simulate_app
from repro.utils.tables import TextTable

BATCH = int(os.environ.get("REPRO_BENCH_TRACE_BATCH", "20"))
SAMPLES = int(os.environ.get("REPRO_BENCH_TRACE_SAMPLES", "7"))
_APP, _SCALE = "P-BICG", "small"
_SCHEME, _PROTECT = "detection", ("A",)

#: Disabled-tracer slowdown bar from the issue's acceptance criteria.
MAX_DISABLED_RATIO = 1.02


def _run_batch(app, trace, memory, tracer_factory) -> float:
    """Seconds for one batch of timing runs (fresh tracer per run)."""
    start = time.perf_counter()
    for _ in range(BATCH):
        simulate_app(
            app, trace=trace, memory=memory,
            scheme_name=_SCHEME, protected_names=_PROTECT,
            tracer=tracer_factory() if tracer_factory else None,
        )
    return time.perf_counter() - start


def test_trace_overhead(benchmark):
    app = create_app(_APP, scale=_SCALE, seed=SEED)
    memory = app.fresh_memory()
    trace = app.build_trace(memory)

    def enabled_tracer():
        return TraceSession(TraceConfig())

    def compute():
        # Warm-up batch: JIT-free Python still warms allocator/caches.
        _run_batch(app, trace, memory, None)
        times: dict[str, list[float]] = {
            "baseline": [], "disabled": [], "enabled": [],
        }
        for i in range(SAMPLES):
            # Alternate arm order so slow drift (thermal, scheduler)
            # cancels instead of biasing one arm.
            order = ("baseline", "disabled") if i % 2 == 0 \
                else ("disabled", "baseline")
            for arm in order:
                gc.collect()
                times[arm].append(_run_batch(app, trace, memory, None))
        for _ in range(SAMPLES):
            gc.collect()
            times["enabled"].append(
                _run_batch(app, trace, memory, enabled_tracer))
        return times

    times = benchmark.pedantic(compute, rounds=1, iterations=1)

    best = {arm: min(ts) for arm, ts in times.items()}
    median = {arm: statistics.median(ts) for arm, ts in times.items()}
    # Both estimators converge to 1.0 for identical code; a genuine
    # regression (an unconditional hook) inflates both, while taking
    # the smaller of the two rejects one-sided sampling noise.
    disabled_ratio = min(best["disabled"] / best["baseline"],
                         median["disabled"] / median["baseline"])
    enabled_ratio = best["enabled"] / best["baseline"]

    report = {
        "app": _APP,
        "scale": _SCALE,
        "scheme": _SCHEME,
        "protect": list(_PROTECT),
        "seed": SEED,
        "batch_runs": BATCH,
        "samples": SAMPLES,
        "best_seconds": {k: round(v, 4) for k, v in best.items()},
        "median_seconds": {k: round(v, 4) for k, v in median.items()},
        "all_seconds": {
            k: [round(v, 4) for v in ts] for k, ts in times.items()
        },
        "disabled_over_baseline": round(disabled_ratio, 4),
        "enabled_over_baseline": round(enabled_ratio, 4),
        "max_disabled_ratio": MAX_DISABLED_RATIO,
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Trace overhead ({_APP} {_SCHEME}, {BATCH} runs/batch, "
           f"{SAMPLES} samples)")
    table = TextTable(["arm", "best s/batch", "median s/batch",
                       "vs baseline"],
                      float_format="{:.3f}")
    table.add_row(["baseline", best["baseline"], median["baseline"],
                   1.0])
    table.add_row(["disabled", best["disabled"], median["disabled"],
                   disabled_ratio])
    table.add_row(["enabled", best["enabled"], median["enabled"],
                   enabled_ratio])
    print(table.render())
    print(f"\nwrote {out}")

    assert disabled_ratio < MAX_DISABLED_RATIO, (
        f"disabled-tracer path is {100 * (disabled_ratio - 1):.2f}% "
        f"slower than the no-hooks baseline (bar: "
        f"{100 * (MAX_DISABLED_RATIO - 1):.0f}%)"
    )
    # Enabled tracing must actually record something (sanity that the
    # enabled arm exercised the hooks rather than silently no-opping).
    probe = TraceSession(TraceConfig())
    simulate_app(app, trace=trace, memory=memory, scheme_name=_SCHEME,
                 protected_names=_PROTECT, tracer=probe)
    assert probe.emitted > 0 and probe.samples
