"""Benchmark harness configuration.

Every bench regenerates one of the paper's tables or figures: it
computes the same rows/series the exhibit reports, prints them (run
pytest with ``-s`` to see the output), and asserts the paper's
qualitative shape.

Environment knobs:

* ``REPRO_RUNS``  — fault-injection runs per configuration
  (default 100; the paper uses 1000 for its +/-3% margins).
* ``REPRO_SCALE`` — application scale, ``default`` or ``small``.
* ``REPRO_SEED``  — campaign seed (default the paper's 20210621).
* ``REPRO_JOBS``  — worker processes per fault campaign (default 1;
  results are bit-identical for any value).
"""

from __future__ import annotations

import os

import pytest

from repro.core.manager import ReliabilityManager
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
)

RUNS = int(os.environ.get("REPRO_RUNS", "100"))
SCALE = os.environ.get("REPRO_SCALE", "default")
SEED = int(os.environ.get("REPRO_SEED", "20210621"))
JOBS = int(os.environ.get("REPRO_JOBS", "1"))

#: The four applications Figure 4 plots.
FIG4_APPS = ("P-BICG", "A-Laplacian", "C-NN", "A-SRAD")


@pytest.fixture(scope="session")
def managers() -> dict[str, ReliabilityManager]:
    """One warmed ReliabilityManager per resilience-study app."""
    return {
        name: ReliabilityManager(create_app(name, scale=SCALE),
                                 jobs=JOBS)
        for name in APPLICATIONS
    }


@pytest.fixture(scope="session")
def flat_managers() -> dict[str, ReliabilityManager]:
    return {
        name: ReliabilityManager(create_app(name, scale=SCALE),
                                 jobs=JOBS)
        for name in FLAT_APPLICATIONS
    }


def banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
