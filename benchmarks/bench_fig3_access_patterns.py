"""Figure 3 — normalized number of accesses to data memory blocks.

Six applications with a steep profile (a handful of blocks absorbs a
disproportionate number of read transactions) and the two
counter-examples whose profiles are flat (C-BlackScholes) or gently
ramping (P-GRAMSCHM).
"""

import numpy as np
from conftest import banner

from repro.analysis.figures import fig3_series
from repro.utils.tables import TextTable

#: The eight panels of Figure 3 in paper order.
PANELS = (
    "C-NN", "P-BICG", "P-GESUMMV", "A-Laplacian", "P-MVT", "A-SRAD",
    "C-BlackScholes", "P-GRAMSCHM",
)


def _sparkline(curve: np.ndarray, width: int = 40) -> str:
    """Render the sorted normalized curve as a coarse text series."""
    if curve.size == 0:
        return ""
    idx = np.linspace(0, curve.size - 1, width).astype(int)
    glyphs = " .:-=+*#%@"
    return "".join(
        glyphs[min(int(curve[i] * (len(glyphs) - 1)), len(glyphs) - 1)]
        for i in idx
    )


def test_fig3_access_patterns(benchmark, managers, flat_managers):
    every = {**managers, **flat_managers}

    def compute():
        return {name: fig3_series(every[name]) for name in PANELS}

    series = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner("Figure 3: Normalized accesses to data memory blocks "
           "(sorted low to high)")
    table = TextTable(
        ["App", "Blocks", "Max/Min ratio", "Top-5% share",
         "Profile (sorted, normalized)"],
        float_format="{:.2f}",
    )
    for name in PANELS:
        s = series[name]
        table.add_row([
            name,
            s.normalized_counts.size,
            s.max_min_ratio,
            s.tail_share(0.05),
            _sparkline(s.normalized_counts),
        ])
    print(table.render())

    # (a)-(f): few blocks, very many accesses.
    for name in PANELS[:6]:
        assert series[name].max_min_ratio > 8, name
    # (g): C-BlackScholes — perfectly flat.
    assert series["C-BlackScholes"].max_min_ratio == 1.0
    # (h): P-GRAMSCHM — a gentle ramp with no dominant block: the
    # most-accessed block is within a small factor of the typical one
    # and the top 5% of blocks hold no outsized share.
    gram = series["P-GRAMSCHM"]
    assert gram.max_min_ratio < 8
    assert gram.tail_share(0.05) < 0.15
    # The two application classes separate cleanly on the max/min
    # per-block contrast (the paper's 4732x C-NN headline statistic).
    hot_contrast = min(series[n].max_min_ratio for n in PANELS[:6])
    flat_contrast = max(series[n].max_min_ratio for n in PANELS[6:])
    assert hot_contrast > flat_contrast
