"""Figure 7 — performance overhead of the resilience schemes.

Per application: execution time and L1-missed accesses, normalized to
the unprotected baseline, as the number of protected data objects
grows cumulatively (Table III importance order), for detection-only
and detection-and-correction.

Headline averages in the paper: +1.2% (detection, hot only), +3.4%
(correction, hot only), +40.65% / +74.24% when every object is
protected.
"""

from conftest import banner

from repro.analysis.figures import fig7_sweep
from repro.kernels.registry import APPLICATIONS
from repro.utils.stats import geometric_mean
from repro.utils.tables import TextTable


def test_fig7_performance_overhead(benchmark, managers):
    def compute():
        return {
            name: fig7_sweep(managers[name]) for name in APPLICATIONS
        }

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner("Figure 7: normalized execution time / L1-missed accesses "
           "vs #objects protected")
    table = TextTable(
        ["App", "Scheme", "n=1", "n=2", "n=3", "n=4", "n=5"],
    )
    hot_time = {"detection": [], "correction": []}
    all_time = {"detection": [], "correction": []}
    all_missed = {"detection": [], "correction": []}
    for name in APPLICATIONS:
        manager = managers[name]
        n_hot = len(manager.app.hot_object_names)
        _baseline, rows = sweeps[name]
        for scheme in ("detection", "correction"):
            scheme_rows = [r for r in rows if r.scheme == scheme]
            cells = [
                f"{r.norm_time:.3f}/{r.norm_missed_accesses:.2f}"
                for r in scheme_rows
            ]
            cells += ["-"] * (5 - len(cells))
            table.add_row([name, scheme] + cells)
            hot_time[scheme].append(scheme_rows[n_hot - 1].norm_time)
            all_time[scheme].append(scheme_rows[-1].norm_time)
            all_missed[scheme].append(
                scheme_rows[-1].norm_missed_accesses)
    print(table.render())
    print("\ncells are 'normalized time / normalized L1-missed "
          "accesses'")

    det_hot = geometric_mean(hot_time["detection"])
    cor_hot = geometric_mean(hot_time["correction"])
    det_all = geometric_mean(all_time["detection"])
    cor_all = geometric_mean(all_time["correction"])
    print(f"\naverage slowdown, hot objects only: "
          f"detection {100 * (det_hot - 1):+.1f}% (paper +1.2%), "
          f"correction {100 * (cor_hot - 1):+.1f}% (paper +3.4%)")
    print(f"average slowdown, all objects:      "
          f"detection {100 * (det_all - 1):+.1f}% (paper +40.65%), "
          f"correction {100 * (cor_all - 1):+.1f}% (paper +74.24%)")

    # Shape assertions: hot-only protection is nearly free; full
    # protection is expensive; correction costs more than detection.
    assert det_hot < 1.10
    assert cor_hot < 1.10
    assert det_all > 1.15
    assert cor_all > det_all
    # Missed accesses scale with the replication degree when all
    # objects are protected.
    assert 1.4 < geometric_mean(all_missed["detection"]) < 2.2
    assert 2.0 < geometric_mean(all_missed["correction"]) < 4.0
    # Per-app: protecting more objects never reduces missed accesses.
    for name in APPLICATIONS:
        _b, rows = sweeps[name]
        for scheme in ("detection", "correction"):
            series = [r.norm_missed_accesses for r in rows
                      if r.scheme == scheme]
            assert all(b >= a - 1e-9
                       for a, b in zip(series, series[1:])), name
