"""Results-warehouse throughput and the progress-off overhead gate.

Two questions, answered into ``BENCH_store.json``:

* how fast does :class:`~repro.obs.store.ResultsStore` ingest a
  campaign corpus (rows/sec, with the dedup re-ingest timed
  separately), and how long does the HTML report take to render from
  it (``REPRO_BENCH_STORE_ROWS`` rows, default 5000)?
* does the live-progress subsystem cost anything when disabled?  A
  campaign built exactly as pre-progress code did (no ``progress``
  argument at all) is paired-timed against one passing
  ``progress=None`` explicitly; both must take the identical code
  path, so the alternate-order ratio of the per-arm minima is gated
  at ``MAX_PROGRESS_OFF_RATIO`` — within 2% of the
  ``BENCH_campaign`` baseline idiom — and a structural assert pins
  the dormancy (the executor must make exactly one unchunked
  ``run_span`` call).

Environment knobs: ``REPRO_BENCH_STORE_ROWS`` (default 5000),
``REPRO_BENCH_PROGRESS_OFF_RUNS`` (default 800) and
``REPRO_BENCH_PROGRESS_OFF_SAMPLES`` (default 9).
"""

from __future__ import annotations

import gc
import json
import os
import statistics
import time
from pathlib import Path

from conftest import SEED, banner

from repro.analysis.html import render_html_report
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.provenance import ProvenanceWriter
from repro.obs.records import TelemetryWriter
from repro.obs.store import ResultsStore
from repro.utils.canonical import canonical_json

STORE_ROWS = int(os.environ.get("REPRO_BENCH_STORE_ROWS", "5000"))
PROGRESS_OFF_RUNS = int(
    os.environ.get("REPRO_BENCH_PROGRESS_OFF_RUNS", "800"))
PROGRESS_OFF_SAMPLES = int(
    os.environ.get("REPRO_BENCH_PROGRESS_OFF_SAMPLES", "9"))

#: Identical code in both arms — anything beyond noise is a leak of
#: progress bookkeeping into the disabled path.
MAX_PROGRESS_OFF_RATIO = 1.02


def _campaign(runs, **kwargs):
    app = create_app("A-Laplacian", scale="small", seed=1234)
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme="correction",
        protect=(),
        config=CampaignConfig(runs=runs, n_blocks=2, n_bits=2,
                              seed=SEED),
        keep_runs=True,
        collect_records=True,
        collect_provenance=True,
        **kwargs,
    )


def _synthesize_corpus(tmp_path: Path, rows: int):
    """A ``rows``-line telemetry + provenance corpus on disk.

    Seeded from one real campaign, then tiled by patching
    ``run_index``/``seed`` — every line stays schema-valid and the
    ingest cost scales to warehouse-sized files without paying for
    ``rows`` actual fault injections.
    """
    result = _campaign(runs=48).run()
    telemetry = tmp_path / "telemetry.jsonl"
    with TelemetryWriter(str(telemetry)) as writer:
        writer.write_result(result)
    provenance = tmp_path / "provenance.jsonl"
    with ProvenanceWriter(str(provenance)) as writer:
        writer.write_result(result)
    for path in (telemetry, provenance):
        base = [json.loads(line)
                for line in path.read_text().splitlines()]
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            for index in range(rows):
                record = dict(base[index % len(base)])
                record["run_index"] = index
                record["seed"] = SEED + index
                fh.write(canonical_json(record) + "\n")
    return telemetry, provenance


def test_store_ingest_throughput(benchmark, tmp_path):
    telemetry, provenance = _synthesize_corpus(tmp_path, STORE_ROWS)
    db = tmp_path / "bench.db"

    def compute():
        with ResultsStore(str(db)) as store:
            start = time.perf_counter()
            receipts = [*store.ingest(str(telemetry)),
                        *store.ingest(str(provenance))]
            ingest_s = time.perf_counter() - start
            start = time.perf_counter()
            deduped = [*store.ingest(str(telemetry)),
                       *store.ingest(str(provenance))]
            reingest_s = time.perf_counter() - start
            start = time.perf_counter()
            html = render_html_report(store)
            report_s = time.perf_counter() - start
        return receipts, deduped, ingest_s, reingest_s, report_s, html

    receipts, deduped, ingest_s, reingest_s, report_s, html = \
        benchmark.pedantic(compute, rounds=1, iterations=1)

    total_rows = sum(r["rows"] for r in receipts)
    assert total_rows == 2 * STORE_ROWS
    assert not any(r["deduped"] for r in receipts)
    assert all(r["deduped"] for r in deduped)
    assert html.startswith("<!DOCTYPE html>")

    report = {
        "rows": total_rows,
        "ingest_seconds": round(ingest_s, 3),
        "ingest_rows_per_sec": round(total_rows / ingest_s, 1),
        "reingest_seconds": round(reingest_s, 3),
        "reingest_rows_per_sec": round(total_rows / reingest_s, 1),
        "report_seconds": round(report_s, 3),
        "report_bytes": len(html.encode("utf-8")),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_store.json"
    existing = json.loads(out.read_text()) if out.exists() else {}
    existing["ingest"] = report
    out.write_text(json.dumps(existing, indent=2) + "\n")

    banner(f"Results-store ingest ({total_rows} rows)")
    print(f"ingest: {report['ingest_rows_per_sec']} rows/sec; "
          f"re-ingest (dedup): {report['reingest_rows_per_sec']} "
          f"rows/sec; report: {report['report_seconds']}s for "
          f"{report['report_bytes']} bytes; wrote {out}")

    # The warehouse must not be the bottleneck of any realistic
    # campaign: even modest hardware ingests thousands of rows/sec.
    assert report["ingest_rows_per_sec"] > 500, report


def test_progress_off_overhead(benchmark):
    """Live progress is strictly pay-for-use: a campaign without it
    must run the exact pre-progress code path."""
    from repro.runtime.executor import CampaignExecutor

    app = create_app("A-Laplacian", scale="small", seed=1234)
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]

    def run_arm(explicit_off: bool) -> float:
        # Telemetry-only, like the pre-progress throughput baseline —
        # no provenance machinery whose fixed costs would drown the
        # signal the 2% gate is after.
        kwargs = {"progress": None} if explicit_off else {}
        campaign = Campaign(
            app,
            uniform_selection(pool),
            scheme="correction",
            protect=(),
            config=CampaignConfig(runs=PROGRESS_OFF_RUNS, n_blocks=2,
                                  n_bits=2, seed=SEED),
            collect_records=True,
            **kwargs,
        )
        start = time.perf_counter()
        result = campaign.run()
        elapsed = time.perf_counter() - start
        assert campaign.progress is None
        assert result.n_runs == PROGRESS_OFF_RUNS
        return elapsed

    def compute():
        run_arm(False)  # warm-up (app/kernels cache)
        times: dict[bool, list[float]] = {False: [], True: []}
        for i in range(PROGRESS_OFF_SAMPLES):
            order = (False, True) if i % 2 == 0 else (True, False)
            for explicit_off in order:
                gc.collect()
                times[explicit_off].append(run_arm(explicit_off))
        return times

    times = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Three noise-rejecting estimators, smallest wins (identical code
    # in both arms, so anything above 1.0 is sampling error): per-arm
    # minima, per-arm medians, and the median of same-round paired
    # ratios — the pairs run back to back, so load drift cancels.
    pair_ratios = [a / b for a, b in zip(times[False], times[True])]
    ratio = min(
        min(times[False]) / min(times[True]),
        statistics.median(times[False])
        / statistics.median(times[True]),
        statistics.median(pair_ratios),
    )

    # Structural dormancy: with progress disabled the executor makes
    # exactly one unchunked run_span call — the pre-progress path.
    campaign = _campaign(runs=16)
    calls = []
    original = campaign.run_span
    campaign.run_span = lambda start, stop: (
        calls.append((start, stop)) or original(start, stop))
    CampaignExecutor(campaign, jobs=1).run()
    assert calls == [(0, 16)], calls

    out = Path(__file__).resolve().parent.parent / "BENCH_store.json"
    report = json.loads(out.read_text()) if out.exists() else {}
    report["progress_disabled"] = {
        "app": "A-Laplacian",
        "scale": "small",
        "scheme": "correction",
        "runs": PROGRESS_OFF_RUNS,
        "samples": PROGRESS_OFF_SAMPLES,
        "default_seconds": [round(t, 4) for t in times[False]],
        "explicit_off_seconds": [round(t, 4) for t in times[True]],
        "default_over_explicit_off": round(ratio, 4),
        "max_ratio": MAX_PROGRESS_OFF_RATIO,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Progress-off overhead (A-Laplacian correction, "
           f"{PROGRESS_OFF_RUNS} runs, {PROGRESS_OFF_SAMPLES} samples)")
    print(f"default/explicit-off ratio: {ratio:.4f} "
          f"(bar: {MAX_PROGRESS_OFF_RATIO}); wrote {out}")

    assert ratio < MAX_PROGRESS_OFF_RATIO, (
        f"progress-free campaign is {100 * (ratio - 1):.2f}% slower "
        f"with the progress subsystem present (bar: "
        f"{100 * (MAX_PROGRESS_OFF_RATIO - 1):.0f}%)"
    )
