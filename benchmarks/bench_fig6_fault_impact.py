"""Figure 6 — effect of faults in hot vs rest memory blocks.

For each application: {1, 5} faulty blocks x {2, 3, 4}-bit faults,
with blocks drawn either from the hot memory blocks or from the rest
of memory.  SDC counts (plus crashes, which this model surfaces
separately) out of N runs per configuration.
"""

from conftest import RUNS, SEED, banner

from repro.analysis.figures import fig6_grid
from repro.kernels.registry import APPLICATIONS
from repro.utils.tables import TextTable


def test_fig6_hot_vs_rest_vulnerability(benchmark, managers):
    def compute():
        return {
            name: fig6_grid(managers[name], runs=RUNS, seed=SEED)
            for name in APPLICATIONS
        }

    cells = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner(f"Figure 6: SDC outcomes, faults in hot vs rest blocks "
           f"({RUNS} runs/config)")
    table = TextTable(
        ["App", "Space", "1blk 2bit", "1blk 3bit", "1blk 4bit",
         "5blk 2bit", "5blk 3bit", "5blk 4bit"],
    )
    summary = {}
    for name in APPLICATIONS:
        for space in ("hot", "rest"):
            row = [name, space]
            bad_total = 0
            for cell in cells[name]:
                if cell.space != space:
                    continue
                bad = cell.sdc + cell.crash
                bad_total += bad
                row.append(f"{cell.sdc}+{cell.crash}c")
            table.add_row(row)
            summary[(name, space)] = bad_total
    print(table.render())
    print("\ncells are 'SDC+crashes' out of", RUNS, "runs")

    # Observation III, part 1: hot-block faults hurt more for every
    # app, and much more in aggregate.  (C-NN has the weakest
    # per-app contrast — the paper calls out its hot blocks as less
    # universally shared, and a fault in any single input image also
    # counts as a misclassification.)
    for name in APPLICATIONS:
        hot_bad = summary[(name, "hot")]
        rest_bad = summary[(name, "rest")]
        assert hot_bad > rest_bad, (name, hot_bad, rest_bad)
    total_hot = sum(summary[(n, "hot")] for n in APPLICATIONS)
    total_rest = sum(summary[(n, "rest")] for n in APPLICATIONS)
    assert total_hot >= 3 * max(total_rest, 1)

    # Observation III, part 2: more faulty blocks and/or more bit
    # faults => more SDCs (monotone within the hot arm, allowing
    # statistical noise of a few runs).
    for name in APPLICATIONS:
        hot_cells = {
            (c.n_blocks, c.n_bits): c.sdc + c.crash
            for c in cells[name] if c.space == "hot"
        }
        slack = max(3, RUNS // 20)
        assert hot_cells[(5, 4)] + slack >= hot_cells[(1, 2)], name
