"""Baseline comparison — recovery strategies across fault rates.

Prices the paper's "checkpoint-restart overhead is prohibitive"
argument: expected normalized runtime of detect+rerun (the paper's
scheme), detect+checkpoint-rollback, and DMR, as the per-run
fault-detection probability grows.
"""

from conftest import banner

from repro.analysis.recovery import compare_strategies
from repro.core.baselines import CheckpointModel
from repro.utils.tables import TextTable

APP = "P-BICG"
FAULT_RATES = (0.0, 0.01, 0.05, 0.2, 0.5, 0.8)


def test_recovery_strategy_comparison(benchmark, managers):
    manager = managers[APP]

    def compute():
        base = manager.simulate_performance("baseline", "none")
        det = manager.simulate_performance("detection", "hot")
        model = CheckpointModel.for_app(
            manager.memory, total_cycles=base.cycles,
            n_checkpoints=10, config=manager.config,
        )
        rows = [
            compare_strategies(
                det.slowdown_vs(base), model, base.cycles, p)
            for p in FAULT_RATES
        ]
        return base, det, model, rows

    base, det, model, rows = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    banner(f"Recovery strategies, {APP}: expected runtime normalized "
           "to fault-free baseline")
    print(f"detection slowdown {det.slowdown_vs(base):.3f}, "
          f"checkpoint overhead "
          f"{100 * model.overhead_fraction:.1f}%/interval "
          f"({model.checkpoint_cost_cycles} cycles per snapshot)")
    table = TextTable(
        ["P(detect/run)", "detect+rerun", "detect+checkpoint", "DMR",
         "winner"],
        float_format="{:.3f}",
    )
    for row in rows:
        table.add_row([
            row.detect_probability, row.rerun, row.checkpoint,
            row.dmr, row.winner,
        ])
    print(table.render())

    # At realistic (low) fault rates the paper's terminate-and-rerun
    # wins; checkpointing only pays off when faults are frequent; DMR
    # never wins (and cannot even detect these faults).
    assert rows[0].winner == "detect+rerun"
    assert rows[1].winner == "detect+rerun"
    assert rows[-1].winner == "detect+checkpoint"
    assert all(r.winner != "dmr" for r in rows)
    # Crossover exists and is interior.
    winners = [r.winner for r in rows]
    assert "detect+rerun" in winners and "detect+checkpoint" in winners
