"""Table III — input data objects, hot-object footprint and access
share, side by side with the paper's reported values."""

from conftest import banner

from repro.analysis.figures import table3_rows
from repro.utils.tables import TextTable

#: Paper-reported (footprint %, access %) per application.
PAPER_VALUES = {
    "C-NN": (2.15, 34.99),
    "P-BICG": (0.064, 5.7),
    "P-GESUMMV": (0.025, 4.8),
    "P-MVT": (0.048, 5.8),
    "A-Laplacian": (0.001, 73.0),
    "A-Meanfilter": (0.0001, 39.89),
    "A-Sobel": (0.001, 73.0),
    "A-SRAD": (0.86, 39.67),
}


def test_table3_hot_objects(benchmark, managers):
    rows = benchmark.pedantic(
        lambda: table3_rows(list(managers.values())),
        rounds=1, iterations=1,
    )

    banner("Table III: Input data objects (hot objects in the paper's "
           "bold = listed)")
    table = TextTable(
        ["App", "Objects (importance order)", "Hot objects",
         "Footprint % (paper)", "Access % (paper)"],
        float_format="{:.3f}",
    )
    for row in rows:
        paper_fp, paper_acc = PAPER_VALUES[row.app_name]
        table.add_row([
            row.app_name,
            ", ".join(row.objects_by_importance),
            ", ".join(row.hot_objects),
            f"{row.hot_footprint_pct:.3f} ({paper_fp:g})",
            f"{row.hot_access_pct:.1f} ({paper_acc:g})",
        ])
    print(table.render())

    by_app = {r.app_name: r for r in rows}
    # Structural claims of the table.
    assert by_app["C-NN"].hot_objects == [
        "Layer1_Weights", "Layer2_Weights"]
    assert by_app["P-BICG"].hot_objects == ["p", "r"]
    assert by_app["A-SRAD"].hot_objects == ["i_N", "i_S", "i_E", "i_W"]
    # Observation IV: footprints are a small fraction of app memory.
    for row in rows:
        assert row.hot_footprint_pct < 10.0, row.app_name
    # Access shares land in the paper's ballpark (ordering preserved:
    # the stencil filters absorb the most, the Polybench vectors the
    # least).
    assert by_app["A-Laplacian"].hot_access_pct > 50.0
    assert by_app["A-Sobel"].hot_access_pct > 50.0
    assert 4.0 < by_app["P-BICG"].hot_access_pct < 8.0
    assert 4.0 < by_app["P-MVT"].hot_access_pct < 8.0
    assert 1.5 < by_app["P-GESUMMV"].hot_access_pct < 8.0
    assert by_app["A-Laplacian"].hot_access_pct > \
        by_app["P-BICG"].hot_access_pct
