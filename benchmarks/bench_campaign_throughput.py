"""Campaign execution-engine throughput: serial vs COW vs parallel.

Times one fault-injection campaign (P-BICG, correction scheme, full
replication — the paper's most replica-heavy configuration) through
three arms of the execution engine:

* ``serial-full`` — the original flow: deep-copy the pristine memory
  and rebuild every replica inside each run;
* ``serial-cow``  — copy-on-write clones of a once-prepared replica
  image, with overlay-aware divergence checks;
* ``parallel-cow`` — the same COW path fanned out over worker
  processes (``REPRO_BENCH_JOBS``, default 4).

All arms must produce bit-identical outcome tallies — the engine's
core guarantee.  Results (runs/sec, speedups, peak RSS) are written to
``BENCH_campaign.json`` at the repository root.

Environment knobs: ``REPRO_BENCH_RUNS`` (default 1000) and
``REPRO_BENCH_JOBS`` (default 4).
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

from conftest import SEED, banner

from repro.core.manager import ReliabilityManager
from repro.faults.campaign import Campaign, CampaignConfig
from repro.kernels.registry import create_app
from repro.runtime import clear_app_cache
from repro.utils.tables import TextTable

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1000"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
_APP, _SCALE, _SCHEME, _PROTECT = "P-BICG", "default", "correction", "all"


def _peak_rss_mb() -> float:
    """Peak resident set in MB, including reaped worker processes."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return round((self_kb + child_kb) / 1024.0, 1)


def _time_arm(manager, clone_mode: str, jobs: int):
    campaign = Campaign(
        manager.app,
        manager.selection("access-weighted"),
        scheme=_SCHEME,
        protect=manager.protected_names(_PROTECT),
        config=CampaignConfig(runs=BENCH_RUNS, seed=SEED),
        clone_mode=clone_mode,
        jobs=jobs,
    )
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    return {
        "clone_mode": clone_mode,
        "jobs": jobs,
        "seconds": round(elapsed, 3),
        "runs_per_sec": round(BENCH_RUNS / elapsed, 1),
        "outcomes": {o.value: n for o, n in result.counts.items() if n},
    }, elapsed, result.counts


def test_campaign_throughput(benchmark):
    def compute():
        clear_app_cache()  # arm 1 pays the one-time setup, like seed
        manager = ReliabilityManager(
            create_app(_APP, scale=_SCALE, seed=1234))
        arms, times, tallies = {}, {}, {}
        for name, mode, jobs in (
            ("serial-full", "full", 1),
            ("serial-cow", "cow", 1),
            ("parallel-cow", "cow", BENCH_JOBS),
        ):
            arms[name], times[name], tallies[name] = _time_arm(
                manager, mode, jobs)
        return arms, times, tallies

    arms, times, tallies = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    # The engine's contract: every arm, identical outcome counts.
    assert tallies["serial-full"] == tallies["serial-cow"] \
        == tallies["parallel-cow"]

    speedup = {
        name: round(times["serial-full"] / times[name], 2)
        for name in ("serial-cow", "parallel-cow")
    }
    report = {
        "app": _APP,
        "scale": _SCALE,
        "scheme": _SCHEME,
        "protect": _PROTECT,
        "runs": BENCH_RUNS,
        "seed": SEED,
        "jobs": BENCH_JOBS,
        "host_cpus": os.cpu_count(),
        "arms": arms,
        "speedup_vs_serial_full": speedup,
        "peak_rss_mb": _peak_rss_mb(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Campaign engine throughput ({BENCH_RUNS} runs, "
           f"{_APP} {_SCHEME}/{_PROTECT})")
    table = TextTable(["arm", "seconds", "runs/sec", "speedup"],
                      float_format="{:.2f}")
    table.add_row(["serial-full", arms["serial-full"]["seconds"],
                   arms["serial-full"]["runs_per_sec"], 1.0])
    for name in ("serial-cow", "parallel-cow"):
        table.add_row([name, arms[name]["seconds"],
                       arms[name]["runs_per_sec"], speedup[name]])
    print(table.render())
    print(f"\npeak RSS: {report['peak_rss_mb']} MB "
          f"(host has {report['host_cpus']} CPU(s)); wrote {out}")

    # At campaign scale the prepared-image COW path (serial or fanned
    # out) must beat the original flow at least 3x; allow a softer bar
    # for quick reduced-run invocations where fixed costs dominate.
    floor = 3.0 if BENCH_RUNS >= 1000 else 1.2
    assert max(speedup.values()) >= floor, speedup
