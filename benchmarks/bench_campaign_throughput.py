"""Campaign execution-engine throughput: serial vs COW vs parallel.

Times one fault-injection campaign (P-BICG, correction scheme, full
replication — the paper's most replica-heavy configuration) through
three arms of the execution engine:

* ``serial-full`` — the original flow: deep-copy the pristine memory
  and rebuild every replica inside each run;
* ``serial-cow``  — copy-on-write clones of a once-prepared replica
  image, with overlay-aware divergence checks;
* ``parallel-cow`` — the same COW path fanned out over worker
  processes (``REPRO_BENCH_JOBS``, default 4);
* ``batched-cow`` — the batched propagation engine
  (:mod:`repro.faults.batch`): ``REPRO_BENCH_BATCH`` lanes (default
  64) planned and classified per sweep, ``--max-batch-bytes``-clamped
  so the lane images cannot OOM;
* ``adaptive``   — the batched engine under CI-driven early stopping
  (:mod:`repro.faults.adaptive`, ``REPRO_BENCH_MARGIN``, default
  0.03): same statistical question as the fixed budget, answered from
  a committed prefix.  Its *effective* runs/sec is the full budget
  divided by wall time — the runs the fixed protocol would have paid
  for, delivered at early-stop cost.

The four exhaustive arms must produce bit-identical outcome tallies —
the engine's core guarantee — and the batched arm must clear the
issue's ≥5x bar over ``serial-cow``.  The adaptive arm is excluded
from the tally check (it commits a prefix, by design); instead its
estimate must land inside the exhaustive arms' 95% CI and its
effective throughput must beat the batched arm.  Results (runs/sec,
speedups, per-arm peak RSS watermarks) are written to
``BENCH_campaign.json`` at the repository root.

Environment knobs: ``REPRO_BENCH_RUNS`` (default 1000),
``REPRO_BENCH_JOBS`` (default 4), ``REPRO_BENCH_BATCH`` (default 64)
and ``REPRO_BENCH_MARGIN`` (default 0.03).
"""

from __future__ import annotations

import json
import os
import resource
import time
from pathlib import Path

from conftest import SEED, banner

from repro.core.manager import ReliabilityManager
from repro.faults.campaign import Campaign, CampaignConfig
from repro.kernels.registry import create_app
from repro.runtime import clear_app_cache
from repro.utils.tables import TextTable

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "1000"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
BENCH_BATCH = int(os.environ.get("REPRO_BENCH_BATCH", "64"))
BENCH_MARGIN = float(os.environ.get("REPRO_BENCH_MARGIN", "0.03"))
_APP, _SCALE, _SCHEME, _PROTECT = "P-BICG", "default", "correction", "all"

#: Batched-engine throughput bar from the issue's acceptance criteria.
MIN_BATCHED_SPEEDUP = 5.0


def _peak_rss_mb() -> float:
    """Peak resident set in MB, including reaped worker processes."""
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return round((self_kb + child_kb) / 1024.0, 1)


def _time_arm(manager, clone_mode: str, jobs: int, batch: int = 1):
    campaign = Campaign(
        manager.app,
        manager.selection("access-weighted"),
        scheme=_SCHEME,
        protect=manager.protected_names(_PROTECT),
        config=CampaignConfig(runs=BENCH_RUNS, seed=SEED),
        clone_mode=clone_mode,
        jobs=jobs,
        batch=batch,
    )
    start = time.perf_counter()
    result = campaign.run()
    elapsed = time.perf_counter() - start
    return {
        "clone_mode": clone_mode,
        "jobs": jobs,
        "batch": batch,
        "effective_batch": campaign.effective_batch,
        "seconds": round(elapsed, 3),
        "runs_per_sec": round(BENCH_RUNS / elapsed, 1),
        "outcomes": {o.value: n for o, n in result.counts.items() if n},
        # ru_maxrss is a process-lifetime high-water mark, so this is
        # the watermark *after* the arm — a batched arm that blew up
        # memory would show as a jump over the preceding arms.
        "peak_rss_mb": _peak_rss_mb(),
    }, elapsed, result.counts


def _time_adaptive_arm(manager):
    campaign = Campaign(
        manager.app,
        manager.selection("access-weighted"),
        scheme=_SCHEME,
        protect=manager.protected_names(_PROTECT),
        config=CampaignConfig(runs=BENCH_RUNS, seed=SEED),
        clone_mode="cow",
        batch=BENCH_BATCH,
        target_margin=BENCH_MARGIN,
    )
    start = time.perf_counter()
    adaptive = campaign.run_adaptive()
    elapsed = time.perf_counter() - start
    return {
        "clone_mode": "cow",
        "jobs": 1,
        "batch": BENCH_BATCH,
        "target_margin": BENCH_MARGIN,
        "seconds": round(elapsed, 3),
        "converged": adaptive.converged,
        "stopped_runs": adaptive.stopped_at,
        "simulated_runs": adaptive.simulated_runs,
        "analytic_runs": adaptive.analytic_runs,
        "margin": round(adaptive.interval.margin, 4),
        "sdc_rate": adaptive.interval.proportion,
        # budgeted runs per second of wall time: what the fixed-budget
        # protocol would have cost, delivered at early-stop price
        "effective_runs_per_sec": round(BENCH_RUNS / elapsed, 1),
        "peak_rss_mb": _peak_rss_mb(),
    }, elapsed, adaptive


def test_campaign_throughput(benchmark):
    def compute():
        clear_app_cache()  # arm 1 pays the one-time setup, like seed
        manager = ReliabilityManager(
            create_app(_APP, scale=_SCALE, seed=1234))
        arms, times, tallies = {}, {}, {}
        for name, mode, jobs, batch in (
            ("serial-full", "full", 1, 1),
            ("serial-cow", "cow", 1, 1),
            ("parallel-cow", "cow", BENCH_JOBS, 1),
            ("batched-cow", "cow", 1, BENCH_BATCH),
        ):
            arms[name], times[name], tallies[name] = _time_arm(
                manager, mode, jobs, batch)
        arms["adaptive"], times["adaptive"], adaptive = \
            _time_adaptive_arm(manager)
        return arms, times, tallies, adaptive

    arms, times, tallies, adaptive = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    # The engine's contract: every exhaustive arm, identical outcome
    # counts.  (The adaptive arm commits a prefix, so it is held to a
    # statistical bar instead, below.)
    assert tallies["serial-full"] == tallies["serial-cow"] \
        == tallies["parallel-cow"] == tallies["batched-cow"]

    speedup = {
        name: round(times["serial-full"] / times[name], 2)
        for name in ("serial-cow", "parallel-cow", "batched-cow",
                     "adaptive")
    }
    batched_vs_cow = round(times["serial-cow"] / times["batched-cow"], 2)
    adaptive_vs_batched = round(
        arms["adaptive"]["effective_runs_per_sec"]
        / arms["batched-cow"]["runs_per_sec"], 2)
    report = {
        "app": _APP,
        "scale": _SCALE,
        "scheme": _SCHEME,
        "protect": _PROTECT,
        "runs": BENCH_RUNS,
        "seed": SEED,
        "jobs": BENCH_JOBS,
        "batch": BENCH_BATCH,
        "target_margin": BENCH_MARGIN,
        "host_cpus": os.cpu_count(),
        "arms": arms,
        "speedup_vs_serial_full": speedup,
        "batched_vs_serial_cow": batched_vs_cow,
        "adaptive_vs_batched_effective": adaptive_vs_batched,
        "min_batched_speedup": MIN_BATCHED_SPEEDUP,
        "peak_rss_mb": _peak_rss_mb(),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Campaign engine throughput ({BENCH_RUNS} runs, "
           f"{_APP} {_SCHEME}/{_PROTECT})")
    table = TextTable(["arm", "seconds", "runs/sec", "speedup",
                       "rss MB"],
                      float_format="{:.2f}")
    table.add_row(["serial-full", arms["serial-full"]["seconds"],
                   arms["serial-full"]["runs_per_sec"], 1.0,
                   arms["serial-full"]["peak_rss_mb"]])
    for name in ("serial-cow", "parallel-cow", "batched-cow"):
        table.add_row([name, arms[name]["seconds"],
                       arms[name]["runs_per_sec"], speedup[name],
                       arms[name]["peak_rss_mb"]])
    table.add_row(["adaptive", arms["adaptive"]["seconds"],
                   arms["adaptive"]["effective_runs_per_sec"],
                   speedup["adaptive"],
                   arms["adaptive"]["peak_rss_mb"]])
    print(table.render())
    print(f"\nbatched vs serial-cow: {batched_vs_cow}x; adaptive "
          f"effective vs batched: {adaptive_vs_batched}x "
          f"(stopped at {arms['adaptive']['stopped_runs']}/{BENCH_RUNS}, "
          f"{arms['adaptive']['simulated_runs']} simulated); "
          f"peak RSS: {report['peak_rss_mb']} MB "
          f"(host has {report['host_cpus']} CPU(s)); wrote {out}")

    # At campaign scale the prepared-image COW path (serial or fanned
    # out) must beat the original flow at least 3x, and the batched
    # engine must clear the issue's bar over the serial-COW baseline;
    # allow softer bars for quick reduced-run invocations where fixed
    # costs dominate.
    floor = 3.0 if BENCH_RUNS >= 1000 else 1.2
    assert max(speedup.values()) >= floor, speedup
    batched_floor = MIN_BATCHED_SPEEDUP if BENCH_RUNS >= 1000 else 1.0
    assert batched_vs_cow >= batched_floor, (
        f"batched engine is only {batched_vs_cow}x the serial-COW "
        f"baseline (bar: {batched_floor}x)"
    )

    # The adaptive arm answers the same question for less: its
    # estimate must sit inside the exhaustive arms' 95% CI, and its
    # effective throughput must beat the batched engine whenever the
    # budget leaves room to stop early.
    from repro.faults.outcomes import Outcome
    from repro.utils.stats import confidence_interval

    exhaustive_ci = confidence_interval(
        tallies["batched-cow"].get(Outcome.SDC, 0), BENCH_RUNS)
    assert exhaustive_ci.low <= adaptive.interval.proportion \
        <= exhaustive_ci.high, (adaptive.interval, exhaustive_ci)
    # At reduced budgets the one-time golden-evidence capture
    # dominates both arms (analytic lanes cost microseconds), so
    # effective-throughput parity is not expected — only that the
    # adaptive arm is not pathologically slower.
    adaptive_floor = 2.0 if BENCH_RUNS >= 1000 else 0.5
    assert adaptive_vs_batched >= adaptive_floor, (
        f"adaptive arm is only {adaptive_vs_batched}x the batched "
        f"engine's effective throughput (bar: {adaptive_floor}x)"
    )


#: Telemetry-only slowdown bar now that provenance collection exists:
#: with ``collect_provenance`` left at its default (off), campaigns
#: must run the pre-provenance code path — the two timed arms below
#: execute identical code, so the gated ratio is pure noise, and the
#: structural asserts pin the dormancy that keeps it that way.
MAX_PROV_OFF_RATIO = 1.02
PROV_OFF_RUNS = int(os.environ.get("REPRO_BENCH_PROV_OFF_RUNS", "120"))
PROV_OFF_SAMPLES = int(
    os.environ.get("REPRO_BENCH_PROV_OFF_SAMPLES", "5"))


def test_provenance_off_overhead(benchmark):
    """Provenance is strictly pay-for-use: a telemetry-only campaign
    (the default) must not regress now that the provenance subsystem
    exists.

    Arm ``default`` builds the campaign exactly as pre-provenance code
    did (no ``collect_provenance`` argument at all); arm ``off`` passes
    ``collect_provenance=False`` explicitly.  Both must take the same
    path: the ratio of the per-arm minima is gated at
    ``MAX_PROV_OFF_RATIO`` (pure noise for identical code), and the
    structural asserts verify the dormancy that makes the path
    identical — the shared golden-evidence base is never built and no
    provenance records accumulate."""
    import gc
    import statistics

    from repro.faults.selection import uniform_selection

    app = create_app(_APP, scale="small", seed=SEED)

    def telemetry_campaign(explicit_off: bool):
        memory = app.fresh_memory()
        pool = [a for o in memory.objects for a in o.block_addrs()]
        kwargs = {"collect_provenance": False} if explicit_off else {}
        campaign = Campaign(
            app,
            uniform_selection(pool),
            scheme="detection",
            protect=("A",),
            config=CampaignConfig(runs=PROV_OFF_RUNS, n_blocks=2,
                                  n_bits=2, seed=SEED),
            collect_records=True,
            **kwargs,
        )
        start = time.perf_counter()
        result = campaign.run()
        elapsed = time.perf_counter() - start
        assert campaign._evidence is None, (
            "telemetry-only campaign built the golden evidence base — "
            "provenance is supposed to be pay-for-use"
        )
        assert result.provenance == []
        assert len(result.records) == PROV_OFF_RUNS
        return elapsed

    def compute():
        telemetry_campaign(False)  # warm-up (app/kernels cache)
        times: dict[bool, list[float]] = {False: [], True: []}
        for i in range(PROV_OFF_SAMPLES):
            order = (False, True) if i % 2 == 0 else (True, False)
            for explicit_off in order:
                gc.collect()
                times[explicit_off].append(
                    telemetry_campaign(explicit_off))
        return times

    times = benchmark.pedantic(compute, rounds=1, iterations=1)
    # Identical code in both arms: the smaller of the min-based and
    # median-based estimators rejects one-sided sampling noise, same
    # rationale as the disabled-tracer gate in bench_trace_overhead.
    ratio = min(
        min(times[False]) / min(times[True]),
        statistics.median(times[False]) / statistics.median(times[True]),
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"
    report = json.loads(out.read_text()) if out.exists() else {}
    report["provenance_disabled"] = {
        "app": _APP,
        "scale": "small",
        "scheme": "detection",
        "runs": PROV_OFF_RUNS,
        "samples": PROV_OFF_SAMPLES,
        "default_seconds": [round(t, 4) for t in times[False]],
        "explicit_off_seconds": [round(t, 4) for t in times[True]],
        "default_over_explicit_off": round(ratio, 4),
        "max_ratio": MAX_PROV_OFF_RATIO,
    }
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Provenance-off overhead ({_APP} detection, "
           f"{PROV_OFF_RUNS} runs, {PROV_OFF_SAMPLES} samples)")
    print(f"default/explicit-off ratio: {ratio:.4f} "
          f"(bar: {MAX_PROV_OFF_RATIO}); wrote {out}")

    assert ratio < MAX_PROV_OFF_RATIO, (
        f"telemetry-only campaign is {100 * (ratio - 1):.2f}% slower "
        f"with the provenance subsystem present (bar: "
        f"{100 * (MAX_PROV_OFF_RATIO - 1):.0f}%)"
    )
