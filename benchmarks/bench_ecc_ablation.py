"""Ablation — why SECDED is not enough (the paper's premise).

Monte-Carlo outcome distribution of the (72,64) SECDED code under
k-bit errors: 1-bit faults are corrected, 2-bit detected, and from 3
bits up the code miscorrects or lets errors escape silently — the gap
the data-centric schemes fill.
"""

import numpy as np
from conftest import RUNS, banner

from repro.arch.ecc import SecdedCodec, TrueOutcome, escape_rates
from repro.utils.tables import TextTable


def test_secded_vs_multibit_faults(benchmark):
    codec = SecdedCodec()
    trials = max(RUNS, 100)

    def compute():
        rng = np.random.default_rng(20210621)
        return {
            n_bits: escape_rates(codec, n_bits, trials, rng)
            for n_bits in (1, 2, 3, 4)
        }

    rates = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner(f"Ablation: SECDED (72,64) outcomes for k-bit errors "
           f"({trials} trials each)")
    table = TextTable(
        ["bits", "corrected", "detected", "miscorrected",
         "silent escape"],
        float_format="{:.3f}",
    )
    for n_bits, dist in rates.items():
        table.add_row([
            n_bits,
            dist[TrueOutcome.CORRECTED],
            dist[TrueOutcome.DETECTED],
            dist[TrueOutcome.MISCORRECTED],
            dist[TrueOutcome.SILENT_ESCAPE],
        ])
    print(table.render())

    # SECDED's contract...
    assert rates[1][TrueOutcome.CORRECTED] == 1.0
    assert rates[2][TrueOutcome.DETECTED] == 1.0
    # ...and its failure beyond 2 bits: nothing is ever repaired, and
    # 3-bit errors overwhelmingly miscorrect (silent data corruption).
    for n_bits in (3, 4):
        assert rates[n_bits][TrueOutcome.CORRECTED] == 0.0
    assert rates[3][TrueOutcome.MISCORRECTED] > 0.5
