"""Design-space exploration throughput: what a search costs.

Runs one greedy ``optimize`` search twice against the same checkpoint
directory:

* ``cold``  — fresh directory, every configuration evaluated;
* ``warm``  — a resume of the same search: strategies re-propose the
  same candidates, whose campaign chunks replay from the checkpoints.

Both arms must return the identical Pareto front — the engine's core
guarantee.  Results (evaluations/sec cold, chunk cache-hit rate warm,
resume speedup) are written to ``BENCH_optimize.json`` at the
repository root.

Environment knobs: ``REPRO_BENCH_RUNS`` (default 300, runs per
configuration), ``REPRO_BENCH_JOBS`` (default 4).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import SEED, banner

from repro.runtime import clear_app_cache
from repro.search import optimize
from repro.utils.tables import TextTable

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "300"))
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
_APP = "P-BICG"


def _search(store: str, resume: bool):
    start = time.perf_counter()
    result = optimize(
        app=_APP,
        strategy="greedy",
        runs=BENCH_RUNS,
        seed=SEED,
        store=store,
        resume=resume,
        jobs=BENCH_JOBS,
        max_overhead=0.02,
    )
    return time.perf_counter() - start, result


def test_optimize_throughput(benchmark):
    def compute():
        clear_app_cache()
        with tempfile.TemporaryDirectory() as tmp:
            store = str(Path(tmp) / "dse")
            cold_s, cold = _search(store, resume=False)
            warm_s, warm = _search(store, resume=True)
        return cold_s, cold, warm_s, warm

    cold_s, cold, warm_s, warm = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    # The engine's contract: a resume replays to the same outcome.
    assert [e.to_dict() for e in warm.front] == \
        [e.to_dict() for e in cold.front]
    # A full resume executes nothing — every chunk comes from disk.
    assert warm.stats["chunks_executed"] == 0
    assert warm.stats["chunks_resumed"] == \
        cold.stats["chunks_executed"]

    n_evals = cold.stats["evaluations"]
    warm_chunks = warm.stats["chunks_resumed"] + \
        warm.stats["chunks_executed"]
    report = {
        "app": _APP,
        "strategy": "greedy",
        "runs_per_configuration": BENCH_RUNS,
        "seed": SEED,
        "jobs": BENCH_JOBS,
        "host_cpus": os.cpu_count(),
        "evaluations": n_evals,
        "rounds": cold.rounds,
        "front_size": len(cold.front),
        "seconds": {"cold": round(cold_s, 3),
                    "warm": round(warm_s, 3)},
        "evaluations_per_second_cold": round(n_evals / cold_s, 2),
        "chunk_cache_hit_rate_warm": round(
            warm.stats["chunks_resumed"] / warm_chunks, 3)
        if warm_chunks else 0.0,
        "resume_speedup": round(cold_s / warm_s, 1),
    }
    out = Path(__file__).resolve().parent.parent / \
        "BENCH_optimize.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Design-space exploration ({n_evals} configurations x "
           f"{BENCH_RUNS} runs, jobs={BENCH_JOBS})")
    table = TextTable(["arm", "seconds", "evals/s"],
                      float_format="{:.2f}")
    table.add_row(["cold", report["seconds"]["cold"],
                   n_evals / cold_s])
    table.add_row(["warm (resume)", report["seconds"]["warm"],
                   n_evals / warm_s])
    print(table.render())
    print(f"\nfront size {len(cold.front)}, cache-hit rate "
          f"{report['chunk_cache_hit_rate_warm']:.0%} on resume "
          f"({report['resume_speedup']}x faster); wrote {out}")

    # A resume must be much cheaper than searching from scratch.
    assert warm_s < cold_s, report
