"""Baseline comparison — redundant execution (DMR) vs the schemes.

The related work (Section VI) protects computation by running it
twice; the paper protects *data*.  This bench makes the difference
concrete: against permanent memory faults, DMR costs ~2x and detects
nothing (both executions read the same corrupted bits and agree),
while duplicating just the hot data costs ~1-2% and catches every
injected hot fault.
"""

from conftest import RUNS, SEED, banner

from repro.core.baselines import classify_dmr_run, dmr_slowdown
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.injector import apply_faults
from repro.faults.model import live_words, sample_word_fault
from repro.faults.outcomes import Outcome
from repro.faults.selection import uniform_selection
from repro.utils.rng import RngStream, derive_seed
from repro.utils.tables import TextTable

APP = "P-MVT"


def _dmr_campaign(manager, runs, n_bits=3):
    """Run the hot-fault experiment under DMR protection."""
    app = manager.app
    memory = manager.memory
    pool = sorted(
        a for n in app.hot_object_names
        for a in memory.object(n).block_addrs()
    )
    selection = uniform_selection(pool)
    golden = app.golden_output()
    counts = {o: 0 for o in Outcome}
    for run_index in range(runs):
        rng = RngStream(derive_seed(SEED, run_index))
        run_mem = memory.clone()
        addr = selection.pick(rng, 1)[0]
        fault = sample_word_fault(
            rng.child(0), addr, n_bits,
            word_candidates=live_words(run_mem.object_at(addr), addr),
        )
        apply_faults(run_mem, [fault])
        result = classify_dmr_run(app, run_mem, golden)
        counts[result.outcome] += 1
    return counts


def _scheme_campaign(manager, scheme, runs, n_bits=3):
    app = manager.app
    memory = manager.memory
    pool = sorted(
        a for n in app.hot_object_names
        for a in memory.object(n).block_addrs()
    )
    return Campaign(
        app, uniform_selection(pool),
        scheme=scheme,
        protect=manager.protected_names("hot"),
        config=CampaignConfig(runs=runs, n_bits=n_bits, seed=SEED),
    ).run()


def test_dmr_vs_data_centric(benchmark, managers):
    manager = managers[APP]
    runs = max(RUNS // 2, 40)

    def compute():
        dmr_counts = _dmr_campaign(manager, runs)
        det = _scheme_campaign(manager, "detection", runs)
        base = manager.simulate_performance("baseline", "none")
        det_perf = manager.simulate_performance("detection", "hot")
        return dmr_counts, det, base, det_perf

    dmr_counts, det, base, det_perf = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    banner(f"Baseline: DMR vs data-centric detection "
           f"({APP}, hot-block 3-bit faults, {runs} runs)")
    table = TextTable(
        ["Strategy", "slowdown", "SDC", "detected", "masked"],
        float_format="{:.3f}",
    )
    table.add_row([
        "redundant execution (DMR)",
        dmr_slowdown(base.cycles),
        dmr_counts[Outcome.SDC],
        dmr_counts[Outcome.DETECTED],
        dmr_counts[Outcome.MASKED],
    ])
    table.add_row([
        "hot-data duplication (paper)",
        det_perf.slowdown_vs(base),
        det.sdc_count,
        det.count(Outcome.DETECTED),
        det.count(Outcome.MASKED),
    ])
    print(table.render())

    # DMR: ~2x the time, zero detections, the SDCs sail through.
    assert dmr_counts[Outcome.DETECTED] == 0
    assert dmr_counts[Outcome.SDC] > 0
    # Data-centric detection: ~free, catches everything.
    assert det.sdc_count == 0
    assert det.count(Outcome.DETECTED) > 0
    assert det_perf.slowdown_vs(base) < 1.1
    assert dmr_slowdown(base.cycles) >= 2.0
