"""Sweep-session overhead: what durability and resumability cost.

Runs one two-cell sweep (baseline + correction) through three arms of
the session orchestrator:

* ``bare``        — no checkpoint store: pure execution cost;
* ``checkpointed``— every chunk persisted (write path overhead);
* ``resumed``     — the same sweep replayed entirely from the durable
  chunks (read/verify path; no campaign executes).

All arms must produce byte-identical merged results — the session's
core guarantee.  Results (seconds per arm, checkpoint overhead %,
bytes on disk, resume speedup) are written to ``BENCH_sweep.json`` at
the repository root.

Environment knobs: ``REPRO_BENCH_RUNS`` (default 300, split across
both cells), ``REPRO_BENCH_JOBS`` (default 4).
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path

from conftest import SEED, banner

from repro.runtime import clear_app_cache
from repro.runtime.session import Session, SessionConfig, SweepSpec
from repro.utils.canonical import canonical_json
from repro.utils.tables import TextTable

BENCH_RUNS = int(os.environ.get("REPRO_BENCH_RUNS", "300")) // 2
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "4"))
_APP = "P-BICG"


def _spec() -> SweepSpec:
    return SweepSpec(
        apps=(_APP,),
        schemes=("baseline", "correction"),
        protects=("hot",),
        runs=BENCH_RUNS,
        seed=SEED,
    )


def _dir_bytes(root: Path) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def _time_arm(store, resume: bool):
    session = Session(_spec(), store=store,
                      config=SessionConfig(jobs=BENCH_JOBS))
    start = time.perf_counter()
    sweep = session.run(resume=resume)
    elapsed = time.perf_counter() - start
    return elapsed, canonical_json(sweep.to_dict()), session


def test_sweep_checkpoint_overhead(benchmark):
    def compute():
        clear_app_cache()
        with tempfile.TemporaryDirectory() as tmp:
            ckpt = Path(tmp) / "ckpt"
            bare_s, bare_doc, _ = _time_arm(None, resume=False)
            ckpt_s, ckpt_doc, _ = _time_arm(ckpt, resume=False)
            resume_s, resume_doc, resumed = _time_arm(
                ckpt, resume=True)
            disk = _dir_bytes(ckpt)
            counters = resumed.metrics.snapshot()["counters"]
        return (bare_s, ckpt_s, resume_s, bare_doc, ckpt_doc,
                resume_doc, disk, counters)

    (bare_s, ckpt_s, resume_s, bare_doc, ckpt_doc, resume_doc, disk,
     counters) = benchmark.pedantic(compute, rounds=1, iterations=1)

    # The session's contract: identical bytes in every arm.
    assert bare_doc == ckpt_doc == resume_doc
    # A full resume executes nothing — every chunk comes from disk.
    assert counters["session.chunks.resumed"] == counters.get(
        "session.chunks.planned", counters["session.chunks.resumed"])
    assert "session.chunks.executed" not in counters

    overhead_pct = 100.0 * (ckpt_s - bare_s) / bare_s
    report = {
        "app": _APP,
        "runs_per_cell": BENCH_RUNS,
        "cells": 2,
        "seed": SEED,
        "jobs": BENCH_JOBS,
        "host_cpus": os.cpu_count(),
        "seconds": {
            "bare": round(bare_s, 3),
            "checkpointed": round(ckpt_s, 3),
            "resumed": round(resume_s, 3),
        },
        "checkpoint_overhead_pct": round(overhead_pct, 2),
        "checkpoint_bytes": disk,
        "resume_speedup": round(bare_s / resume_s, 1),
    }
    out = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    banner(f"Sweep session overhead ({2 * BENCH_RUNS} runs over "
           f"2 cells, jobs={BENCH_JOBS})")
    table = TextTable(["arm", "seconds", "vs bare"],
                      float_format="{:.2f}")
    table.add_row(["bare", report["seconds"]["bare"], 1.0])
    table.add_row(["checkpointed", report["seconds"]["checkpointed"],
                   ckpt_s / bare_s])
    table.add_row(["resumed", report["seconds"]["resumed"],
                   resume_s / bare_s])
    print(table.render())
    print(f"\ncheckpoint overhead: {overhead_pct:+.1f}% "
          f"({disk / 1024:.0f} KiB on disk); resume replays "
          f"{report['resume_speedup']}x faster; wrote {out}")

    # Durability must stay cheap relative to execution, and a resume
    # must be much cheaper than rerunning.
    assert overhead_pct < 50.0, report
    assert resume_s < bare_s, report
