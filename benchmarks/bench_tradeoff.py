"""Section V-C — the reliability/performance tradeoff.

Sweeping the number of cumulatively protected objects trades SDC
reduction against slowdown; the paper's point is that the knee sits
exactly at "protect the hot objects".
"""

from conftest import RUNS, SEED, banner

from repro.analysis.tradeoff import knee_point, tradeoff_curve
from repro.utils.tables import TextTable

APPS = ("P-BICG", "A-Laplacian", "C-NN")


def test_tradeoff_curves(benchmark, managers):
    def compute():
        return {
            name: tradeoff_curve(
                managers[name], scheme="correction",
                runs=max(RUNS // 2, 20), n_bits=3, seed=SEED,
            )
            for name in APPS
        }

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner("Section V-C: reliability vs performance tradeoff "
           "(correction scheme, 3-bit faults)")
    table = TextTable(
        ["App", "Protected", "Objects", "Slowdown", "SDC",
         "Corrected"],
        float_format="{:.3f}",
    )
    for name in APPS:
        for p in curves[name]:
            table.add_row([
                name, p.n_protected,
                ",".join(p.protected_names) or "-",
                p.slowdown, p.sdc_count, p.corrected_count,
            ])
    print(table.render())

    for name in APPS:
        manager = managers[name]
        points = curves[name]
        n_hot = len(manager.app.hot_object_names)
        knee = knee_point(points)
        hot_point = points[n_hot]
        full_point = points[-1]
        print(f"{name}: knee at {knee.n_protected} object(s), "
              f"hot point {100 * (hot_point.slowdown - 1):+.1f}% time "
              f"vs full {100 * (full_point.slowdown - 1):+.1f}%")
        # SDCs shrink (weakly) along the sweep...
        assert hot_point.sdc_count <= points[0].sdc_count
        # ...and the hot point is dramatically cheaper than full
        # protection for C-NN/P-BICG (whose non-hot objects are large).
        if name != "A-Laplacian":
            assert hot_point.slowdown < full_point.slowdown
        # The knee never pays full-protection prices.
        assert knee.slowdown <= full_point.slowdown + 1e-9
