"""Figure 4 — percentage of active warps accessing each memory block.

P-BICG and A-Laplacian: the highly accessed blocks are shared by all
active warps.  C-NN and A-SRAD: not by all, but still by far more
warps than the rest of the blocks (Observation II).
"""

import numpy as np
from conftest import FIG4_APPS, banner

from repro.profiling.warp_sharing import warp_sharing_curve
from repro.utils.tables import TextTable


def test_fig4_warp_sharing(benchmark, managers):
    def compute():
        return {
            name: warp_sharing_curve(managers[name].profile)
            for name in FIG4_APPS
        }

    curves = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner("Figure 4: % of active warps accessing the data memory "
           "blocks (blocks sorted by access count)")
    table = TextTable(
        ["App", "Top-3 blocks (% warps)", "Median block (% warps)"],
        float_format="{:.1f}",
    )
    tops = {}
    for name in FIG4_APPS:
        curve = curves[name]
        top = float(curve[-3:].mean())
        median = float(np.median(curve))
        tops[name] = top
        table.add_row([name, top, median])
    print(table.render())

    # (a)-(b): P-BICG and A-Laplacian hot blocks shared by ~all warps.
    assert tops["P-BICG"] > 95.0
    assert tops["A-Laplacian"] > 95.0
    # (c)-(d): C-NN and A-SRAD hot blocks shared by many-but-not-all.
    for name in ("C-NN", "A-SRAD"):
        curve = curves[name]
        assert 10.0 < tops[name] < 95.0, name
        assert tops[name] > 5 * np.median(curve), name
