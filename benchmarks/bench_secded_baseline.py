"""Ablation — the SECDED baseline in the loop (Section II-B).

Runs the hot-block fault experiment with the (72,64) SECDED decode
modelled explicitly, across 1..4-bit fault clusters.  The paper's
premise, quantified end to end: with ECC on, single-bit faults vanish
and double-bit faults turn loud, but 3-4-bit clusters still reach the
application as silent corruption — which only the data-centric
schemes remove.
"""

from conftest import RUNS, SEED, banner

from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.outcomes import Outcome
from repro.faults.selection import uniform_selection
from repro.utils.tables import TextTable

APP = "A-Sobel"


def _campaign(manager, n_bits, secded, scheme="baseline",
              protect=(), runs=100):
    memory = manager.memory
    pool = [
        a for n in manager.app.hot_object_names
        for a in memory.object(n).block_addrs()
    ]
    return Campaign(
        manager.app, uniform_selection(pool),
        scheme=scheme, protect=protect,
        config=CampaignConfig(runs=runs, n_bits=n_bits, seed=SEED,
                              secded=secded),
    ).run()


def test_secded_baseline_vs_multibit(benchmark, managers):
    manager = managers[APP]
    runs = max(RUNS // 2, 40)

    def compute():
        rows = {}
        for n_bits in (1, 2, 3, 4):
            rows[(n_bits, "no-ecc")] = _campaign(
                manager, n_bits, secded=False, runs=runs)
            rows[(n_bits, "secded")] = _campaign(
                manager, n_bits, secded=True, runs=runs)
        rows["protected"] = _campaign(
            manager, 4, secded=True, scheme="correction",
            protect=tuple(
                n for n in manager.app.object_importance
                if n in manager.app.hot_object_names),
            runs=runs,
        )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner(f"Ablation: SECDED baseline, hot-block faults on {APP} "
           f"({runs} runs/config)")
    table = TextTable(
        ["bits", "ECC", "masked", "sdc", "crash", "due/detected",
         "corrected"],
    )
    for n_bits in (1, 2, 3, 4):
        for ecc in ("no-ecc", "secded"):
            r = rows[(n_bits, ecc)]
            table.add_row([
                n_bits, ecc, r.count(Outcome.MASKED), r.sdc_count,
                r.count(Outcome.CRASH), r.count(Outcome.DETECTED),
                r.count(Outcome.CORRECTED),
            ])
    r = rows["protected"]
    table.add_row([
        4, "secded+scheme", r.count(Outcome.MASKED), r.sdc_count,
        r.count(Outcome.CRASH), r.count(Outcome.DETECTED),
        r.count(Outcome.CORRECTED),
    ])
    print(table.render())

    def bad(r):
        return r.sdc_count + r.count(Outcome.CRASH)

    # SECDED's contract: 1-bit faults vanish, 2-bit faults are loud.
    assert bad(rows[(1, "secded")]) == 0
    assert bad(rows[(2, "secded")]) == 0
    assert bad(rows[(1, "no-ecc")]) > 0  # why ECC exists at all
    # ...but 3-4-bit clusters still silently corrupt with ECC alone.
    residual = bad(rows[(3, "secded")]) + bad(rows[(4, "secded")])
    assert residual > 0
    # The data-centric scheme closes exactly that residual gap.
    assert bad(rows["protected"]) == 0
    assert rows["protected"].count(Outcome.CORRECTED) > 0
