"""Ablation — faults landing in the replica copies themselves.

The paper stores copies at distinct DRAM locations so that the same
fault cannot hit all of them.  This bench injects faults directly
into replica space: detection still terminates (a mismatch is a
mismatch), and correction still outvotes the single bad copy — the
run completes with clean output.
"""

from conftest import RUNS, SEED, banner

from repro.core.replication import replica_name
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.outcomes import Outcome
from repro.faults.selection import uniform_selection
from repro.utils.tables import TextTable

APP = "A-Laplacian"


def _replica_campaign(manager, scheme, copy_index, runs):
    """Faults injected uniformly into one replica copy's blocks."""
    app = manager.app
    protected = manager.protected_names("hot")

    # Build the replica address map the scheme will create, by dry
    # running the same allocation in a clone.
    shadow = manager.memory.clone()
    from repro.core.schemes import make_scheme

    scheme_obj = make_scheme(
        scheme, shadow, [shadow.object(n) for n in protected])
    pool = [
        addr
        for name in protected
        for addr in shadow.object(
            replica_name(name, copy_index)).block_addrs()
    ]
    return Campaign(
        app,
        uniform_selection(pool, name=f"replica-{copy_index}"),
        scheme=scheme,
        protect=protected,
        config=CampaignConfig(runs=runs, n_blocks=1, n_bits=3,
                              seed=SEED),
    ).run()


def test_faults_in_replica_space(benchmark, managers):
    manager = managers[APP]
    runs = max(RUNS // 2, 20)

    def compute():
        return {
            ("detection", 1): _replica_campaign(
                manager, "detection", 1, runs),
            ("correction", 1): _replica_campaign(
                manager, "correction", 1, runs),
            ("correction", 2): _replica_campaign(
                manager, "correction", 2, runs),
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    banner(f"Ablation: faults injected into replica copies ({APP}, "
           f"{runs} runs, 3-bit)")
    table = TextTable(
        ["Scheme", "Faulted copy", "masked", "sdc", "detected",
         "corrected", "crash"],
    )
    for (scheme, copy_index), result in results.items():
        table.add_row([
            scheme, copy_index,
            result.count(Outcome.MASKED), result.sdc_count,
            result.count(Outcome.DETECTED),
            result.count(Outcome.CORRECTED),
            result.count(Outcome.CRASH),
        ])
    print(table.render())

    # No replica fault ever becomes silent corruption or a crash.
    for result in results.values():
        assert result.sdc_count == 0
        assert result.count(Outcome.CRASH) == 0
    # Detection flags mismatches even when the *copy* is the bad one.
    assert results[("detection", 1)].count(Outcome.DETECTED) > 0
    # Correction completes every run; faults that change stored bits
    # are outvoted without surfacing to the application at all (the
    # primary stays correct, so nothing counts as 'repaired').
    for key in (("correction", 1), ("correction", 2)):
        result = results[key]
        assert result.count(Outcome.DETECTED) == 0
        assert result.count(Outcome.MASKED) + \
            result.count(Outcome.CORRECTED) == result.n_runs
