"""A/B determinism suite for the design-space exploration engine.

The contracts pinned here are the ones ``repro optimize`` advertises:
the search trail and Pareto front are byte-identical at any
``jobs``/``batch`` setting, an interrupted search resumes to the
exact same outcome, and vulnerability-seeded greedy search reaches
the front in fewer evaluations than random sampling.
"""

import pytest

from repro.core.request import EvaluationRequest
from repro.errors import (
    CheckpointError,
    SessionInterrupted,
    SpecError,
)
from repro.obs.search import read_search_trail
from repro.search import optimize

APP = "P-BICG"
#: Small but non-trivial baseline: P-BICG small with this grid shows
#: SDCs at the baseline point, so reduction percentages are exercised.
KW = dict(app=APP, runs=60, seed=11, scale="small")


def run(tmp_path, name, **kwargs):
    trail = tmp_path / f"{name}.jsonl"
    merged = {**KW, "strategy": "greedy", "trail": str(trail)}
    merged.update(kwargs)
    result = optimize(**merged)
    return result, trail.read_bytes()


class TestSearchOutcome:
    def test_exhaustive_front_contains_optimum(self, tmp_path):
        result, _ = run(tmp_path, "x", strategy="exhaustive",
                        objects=2)
        assert len(result.evaluations) == 9
        assert result.rounds == 1
        assert result.baseline is not None
        assert result.baseline.sdc_count > 0
        best_sdc = min(e.sdc_count for e in result.evaluations)
        assert any(e.sdc_count == best_sdc for e in result.front)

    def test_budget_pick_removes_most_sdcs(self, tmp_path):
        result, _ = run(tmp_path, "b", max_overhead=0.02)
        assert result.best is not None
        assert result.best.overhead <= 0.02
        assert result.sdc_reduction(result.best) >= 90.0

    def test_front_is_mutually_non_dominated(self, tmp_path):
        from repro.search.pareto import dominates

        result, _ = run(tmp_path, "nd", strategy="exhaustive",
                        objects=2)
        for a in result.front:
            assert not any(dominates(b, a) for b in result.front)

    def test_stats_account_for_every_evaluation(self, tmp_path):
        result, _ = run(tmp_path, "s")
        assert result.stats["evaluations"] == len(result.evaluations)
        assert result.stats["proposed"] == (
            result.stats["evaluations"] + result.stats["cache_hits"])
        assert result.stats["chunks_executed"] > 0
        assert result.stats["chunks_resumed"] == 0


class TestJobsAndBatchInvariance:
    def test_trail_and_front_identical_across_jobs(self, tmp_path):
        base, trail_1 = run(tmp_path, "j1", jobs=1)
        jobs2, trail_2 = run(tmp_path, "j2", jobs=2)
        assert trail_1 == trail_2
        assert [e.digest for e in base.front] == \
            [e.digest for e in jobs2.front]

    def test_trail_identical_across_batch(self, tmp_path):
        _, scalar = run(tmp_path, "b1", batch=1)
        _, batched = run(tmp_path, "b4", batch=4)
        assert scalar == batched

    def test_evolutionary_deterministic_across_jobs(self, tmp_path):
        kwargs = dict(strategy="evolutionary", population=6,
                      generations=2, search_seed=3)
        _, a = run(tmp_path, "e1", jobs=1, **kwargs)
        _, b = run(tmp_path, "e2", jobs=2, batch=4, **kwargs)
        assert a == b


class TestResume:
    def test_interrupt_then_resume_replays_identically(self, tmp_path):
        _, complete = run(tmp_path, "full", store=str(tmp_path / "a"))
        with pytest.raises(SessionInterrupted):
            run(tmp_path, "cut", store=str(tmp_path / "b"),
                stop_after_chunks=20)
        resumed, replayed = run(tmp_path, "cut",
                                store=str(tmp_path / "b"),
                                resume=True)
        assert replayed == complete
        assert resumed.stats["chunks_resumed"] > 0
        assert resumed.stats["chunks_executed"] < \
            resumed.stats["chunks_resumed"] + \
            resumed.stats["chunks_executed"] + 1

    def test_existing_store_requires_resume_flag(self, tmp_path):
        store = str(tmp_path / "s")
        run(tmp_path, "one", store=store)
        with pytest.raises(CheckpointError, match="resume"):
            run(tmp_path, "two", store=store)

    def test_store_pins_search_identity(self, tmp_path):
        store = str(tmp_path / "s")
        run(tmp_path, "one", store=store)
        with pytest.raises(CheckpointError, match="different search"):
            run(tmp_path, "two", store=store, resume=True,
                search_seed=99, strategy="random")


class TestSearchTrail:
    def test_trail_parses_and_matches_result(self, tmp_path):
        result, _ = run(tmp_path, "t")
        lines = read_search_trail(str(tmp_path / "t.jsonl"))
        header, rounds = lines[0], lines[1:]
        assert header["app"] == APP
        assert header["strategy"] == "greedy"
        assert len(rounds) == result.rounds
        assert sum(r["new"] for r in rounds) == len(result.evaluations)
        assert rounds[-1]["front"] == [e.digest for e in result.front]


class TestGreedySeeding:
    def test_greedy_beats_random_in_evaluations_to_front(
            self, tmp_path):
        """The vulnerability-seeded hill climb reaches a zero-SDC
        front configuration in fewer evaluations than uniform random
        sampling — the paper's protect-what-matters argument."""
        def evals_to_zero_sdc(trail_path):
            seen = 0
            for line in read_search_trail(str(trail_path))[1:]:
                for ev in line["evaluations"]:
                    seen += 1
                    if ev["sdc"] == 0:
                        return seen
            return float("inf")

        run(tmp_path, "greedy")
        run(tmp_path, "rand", strategy="random", search_seed=4,
            population=12)
        greedy_cost = evals_to_zero_sdc(tmp_path / "greedy.jsonl")
        random_cost = evals_to_zero_sdc(tmp_path / "rand.jsonl")
        assert greedy_cost < random_cost


class TestRequestSurface:
    def test_request_supplies_the_experiment(self, tmp_path):
        request = EvaluationRequest(app=APP, runs=60, seed=11,
                                    scale="small", batch=4)
        via_request = optimize(request=request, strategy="exhaustive",
                               objects=2)
        direct, _ = run(tmp_path, "d", strategy="exhaustive",
                        objects=2)
        assert [e.to_dict() for e in via_request.evaluations] == \
            [e.to_dict() for e in direct.evaluations]

    def test_app_required(self):
        with pytest.raises(SpecError, match="application"):
            optimize(strategy="exhaustive")

    def test_unknown_object_count_rejected(self):
        with pytest.raises(SpecError, match="objects"):
            optimize(**KW, objects=99)

    def test_max_evals_caps_the_search(self, tmp_path):
        result, _ = run(tmp_path, "cap", strategy="random",
                        max_evals=3, population=5)
        assert len(result.evaluations) <= 3
