"""Tests for the protection design space and its points."""

import random

import pytest

from repro.core.protection import ProtectionSpec
from repro.errors import SpecError
from repro.search.space import UNPROTECTED, DesignPoint, DesignSpace


def space(objects=("p", "r"), schemes=("detection", "correction")):
    return DesignSpace(app="P-BICG", objects=objects, schemes=schemes)


class TestDesignSpace:
    def test_size_and_choices(self):
        s = space()
        assert s.choices == (UNPROTECTED, "detection", "correction")
        assert s.size() == 9

    def test_empty_objects_rejected(self):
        with pytest.raises(SpecError, match="at least one object"):
            space(objects=())

    def test_duplicate_objects_rejected(self):
        with pytest.raises(SpecError, match="unique"):
            space(objects=("p", "p"))

    def test_unknown_scheme_rejected(self):
        with pytest.raises(SpecError, match="unknown design-space"):
            space(schemes=("parity",))

    def test_lists_normalized_to_tuples(self):
        s = DesignSpace(app="A", objects=["p", "r"],
                        schemes=["detection"])
        assert s.objects == ("p", "r")
        assert s.schemes == ("detection",)

    def test_enumerate_covers_the_space_uniquely(self):
        points = list(space().enumerate())
        assert len(points) == 9
        assert len({p.digest for p in points}) == 9

    def test_enumerate_order_is_deterministic(self):
        a = [p.digest for p in space().enumerate()]
        b = [p.digest for p in space().enumerate()]
        assert a == b

    def test_point_from_mapping_and_sequence_agree(self):
        s = space()
        from_map = s.point({"r": "correction"})
        from_seq = s.point((UNPROTECTED, "correction"))
        assert from_map == from_seq

    def test_point_wrong_length_rejected(self):
        with pytest.raises(SpecError, match="entries"):
            space().point(("detection",))

    def test_point_unknown_gene_rejected(self):
        with pytest.raises(SpecError, match="outside"):
            space().point(("parity", UNPROTECTED))

    def test_uniform_outside_object_rejected(self):
        with pytest.raises(SpecError, match="outside"):
            space().uniform("detection", names=("ghost",))

    def test_random_point_reproducible_from_seed(self):
        s = space(objects=("p", "r", "A"))
        a = [s.random_point(random.Random(5)).digest for _ in range(3)]
        b = [s.random_point(random.Random(5)).digest for _ in range(3)]
        assert a == b

    def test_roundtrip_preserves_digest(self):
        s = space()
        again = DesignSpace.from_dict(s.to_dict())
        assert again == s
        assert again.digest() == s.digest()

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SpecError, match="image"):
            DesignSpace.from_dict({"nope": 1})


class TestDesignPoint:
    def test_genes_roundtrip_through_point(self):
        s = space()
        point = s.point({"p": "correction", "r": "detection"})
        assert point.genes(s) == ("correction", "detection")
        assert s.point(point.genes(s)) == point

    def test_baseline_is_empty_spec(self):
        point = space().baseline()
        assert point.spec.is_baseline
        assert point.genes(space()) == (UNPROTECTED, UNPROTECTED)

    def test_digest_matches_wrapped_spec(self):
        spec = ProtectionSpec.parse("p=correction")
        assert DesignPoint(spec).digest == spec.digest()

    def test_label_is_spec_string(self):
        point = space().point({"p": "detection"})
        assert point.label == "p=detection"
