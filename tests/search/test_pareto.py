"""Tests for Pareto dominance, sorting and the budget solver."""

import math

import pytest

from repro.core.protection import ProtectionSpec
from repro.errors import SpecError
from repro.search.pareto import (
    Evaluation,
    budget_best,
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front,
)
from repro.search.space import DesignPoint


def ev(label, sdc, overhead, bytes_, runs=100):
    spec = (ProtectionSpec.baseline() if label == "none"
            else ProtectionSpec.parse(label))
    return Evaluation(point=DesignPoint(spec), sdc_count=sdc,
                      runs=runs, overhead=overhead,
                      replica_bytes=bytes_)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates(ev("p=detection", 0, 0.01, 10),
                         ev("none", 5, 0.02, 20))

    def test_equal_vectors_do_not_dominate(self):
        a = ev("p=detection", 1, 0.01, 10)
        b = ev("r=detection", 1, 0.01, 10)
        assert not dominates(a, b)
        assert not dominates(b, a)

    def test_tradeoff_is_incomparable(self):
        a = ev("p=detection", 0, 0.05, 10)
        b = ev("none", 5, 0.0, 0)
        assert not dominates(a, b)
        assert not dominates(b, a)


class TestFronts:
    def test_front_excludes_dominated(self):
        good = ev("p=correction", 0, 0.01, 10)
        bad = ev("p=detection", 3, 0.02, 20)
        free = ev("none", 5, 0.0, 0)
        front = pareto_front([bad, good, free])
        assert front == [good, free]

    def test_front_dedupes_by_digest(self):
        a = ev("p=detection", 1, 0.01, 10)
        assert pareto_front([a, a, a]) == [a]

    def test_front_order_independent_of_input_order(self):
        evals = [ev("none", 5, 0.0, 0),
                 ev("p=detection", 0, 0.01, 10),
                 ev("r=detection", 0, 0.01, 12)]
        assert pareto_front(evals) == pareto_front(reversed(evals))

    def test_non_dominated_sort_layers(self):
        first = ev("p=correction", 0, 0.01, 10)
        second = ev("p=detection", 1, 0.02, 20)
        third = ev("r=detection", 2, 0.03, 30)
        fronts = non_dominated_sort([third, first, second])
        assert [f[0] for f in fronts] == [first, second, third]

    def test_empty_input(self):
        assert pareto_front([]) == []
        assert non_dominated_sort([]) == []


class TestCrowding:
    def test_boundaries_are_infinite(self):
        front = [ev("none", 0, 0.0, 0),
                 ev("p=detection", 2, 0.01, 10),
                 ev("p=correction", 4, 0.02, 20)]
        distances = crowding_distance(front)
        assert math.isinf(distances[0])
        assert math.isinf(distances[2])
        assert not math.isinf(distances[1])

    def test_empty_front(self):
        assert crowding_distance([]) == []


class TestBudget:
    FRONT = [
        # canonical order: best SDC first
        Evaluation(DesignPoint(ProtectionSpec.parse("p=correction")),
                   0, 100, 0.05, 1000),
        Evaluation(DesignPoint(ProtectionSpec.parse("p=detection")),
                   1, 100, 0.01, 500),
        Evaluation(DesignPoint(ProtectionSpec.baseline()),
                   5, 100, 0.0, 0),
    ]

    def test_unconstrained_picks_lowest_sdc(self):
        assert budget_best(self.FRONT) == self.FRONT[0]

    def test_overhead_budget_excludes_expensive(self):
        best = budget_best(self.FRONT, max_overhead=0.02)
        assert best == self.FRONT[1]

    def test_memory_budget(self):
        best = budget_best(self.FRONT, max_replica_bytes=0)
        assert best == self.FRONT[2]

    def test_nothing_fits(self):
        assert budget_best(self.FRONT[:2], max_overhead=0.001) is None


class TestEvaluationSerialization:
    def test_roundtrip(self):
        original = ev("p=correction,r=detection", 2, 0.03, 768)
        again = Evaluation.from_dict(original.to_dict())
        assert again == original
        assert again.digest == original.digest

    def test_sdc_rate_zero_runs(self):
        assert ev("none", 0, 0.0, 0, runs=0).sdc_rate == 0.0

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SpecError, match="image"):
            Evaluation.from_dict({"bogus": True})
