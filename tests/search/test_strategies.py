"""Tests for the search strategies (deterministic round generators)."""

import pytest

from repro.errors import SpecError
from repro.search.pareto import Evaluation
from repro.search.space import DesignSpace
from repro.search.strategies import (
    EvolutionaryStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    make_strategy,
)


def space(objects=("p", "r")):
    return DesignSpace(app="P-BICG", objects=objects)


def evaluate(points, sdc_by_label=None):
    """Fake engine: score points so tests can drive multiple rounds."""
    sdc_by_label = sdc_by_label or {}
    out = {}
    for p in points:
        n = len(p.spec.objects)
        out[p.digest] = Evaluation(
            point=p,
            sdc_count=sdc_by_label.get(p.label, max(0, 5 - 2 * n)),
            runs=100,
            overhead=0.01 * n,
            replica_bytes=100 * n,
        )
    return out


class TestExhaustive:
    def test_one_round_covers_the_space(self):
        strategy = ExhaustiveStrategy(space())
        first = strategy.propose(0, {})
        assert len(first) == space().size()
        assert strategy.propose(1, evaluate(first)) == []

    def test_oversized_space_rejected(self):
        big = space(objects=tuple("abcdefgh"))  # 3^8 = 6561 points
        with pytest.raises(SpecError, match="exhaustive limit"):
            ExhaustiveStrategy(big)

    def test_limit_is_tunable(self):
        ExhaustiveStrategy(space(), limit=9)
        with pytest.raises(SpecError):
            ExhaustiveStrategy(space(), limit=8)


class TestRandom:
    def test_same_seed_same_sequence(self):
        a = RandomStrategy(space(), seed=3, population=5, rounds=2)
        b = RandomStrategy(space(), seed=3, population=5, rounds=2)
        for round_index in range(3):
            pa = a.propose(round_index, {})
            pb = b.propose(round_index, {})
            assert [p.digest for p in pa] == [p.digest for p in pb]

    def test_round_zero_contains_baseline(self):
        strategy = RandomStrategy(space(), seed=3, population=5)
        first = strategy.propose(0, {})
        assert first[0] == space().baseline()

    def test_rounds_bound_the_search(self):
        strategy = RandomStrategy(space(), seed=3, population=5,
                                  rounds=2)
        assert strategy.propose(0, {})
        assert strategy.propose(1, {})
        assert strategy.propose(2, {}) == []


class TestGreedy:
    def test_round_zero_is_baseline(self):
        strategy = GreedyStrategy(space())
        assert strategy.propose(0, {}) == [space().baseline()]

    def test_upgrades_follow_the_ranking(self):
        strategy = GreedyStrategy(space(), ranking=("r", "p"))
        evaluated = evaluate(strategy.propose(0, {}))
        first = strategy.propose(1, evaluated)
        assert all(p.spec.objects == ("r",) for p in first)
        evaluated.update(evaluate(first))
        second = strategy.propose(2, evaluated)
        # r=... adoption happened, p is upgraded next
        assert all("p" in p.spec.objects for p in second)

    def test_unranked_objects_still_visited(self):
        strategy = GreedyStrategy(space(), ranking=("r",))
        assert strategy.ranking == ("r", "p")

    def test_terminates_after_all_objects(self):
        strategy = GreedyStrategy(space())
        evaluated = {}
        rounds = 0
        for round_index in range(10):
            proposals = strategy.propose(round_index, evaluated)
            if not proposals:
                break
            evaluated.update(evaluate(proposals))
            rounds += 1
        assert rounds == 1 + len(space().objects)

    def test_keeps_current_when_no_sdc_improvement(self):
        strategy = GreedyStrategy(space(), ranking=("r", "p"))
        evaluated = evaluate(strategy.propose(0, {}),
                             sdc_by_label={"none": 0})
        first = strategy.propose(1, evaluated)
        evaluated.update(evaluate(
            first, sdc_by_label={p.label: 5 for p in first}))
        strategy.propose(2, evaluated)
        assert strategy._current == space().baseline()


class TestEvolutionary:
    def test_population_floor(self):
        with pytest.raises(SpecError, match="population"):
            EvolutionaryStrategy(space(), population=3)

    def test_generations_floor(self):
        with pytest.raises(SpecError, match="generations"):
            EvolutionaryStrategy(space(), generations=0)

    def test_seeded_pool_starts_with_baseline(self):
        strategy = EvolutionaryStrategy(space(), seed=2, population=6)
        first = strategy.propose(0, {})
        assert first[0] == space().baseline()
        assert len(first) == 6
        assert len({p.digest for p in first}) == 6

    def test_same_seed_same_children(self):
        results = []
        for _ in range(2):
            strategy = EvolutionaryStrategy(space(), seed=2,
                                            population=6,
                                            generations=2)
            digests = []
            evaluated = {}
            for round_index in range(4):
                proposals = strategy.propose(round_index, evaluated)
                if not proposals:
                    break
                digests.append([p.digest for p in proposals])
                evaluated.update(evaluate(proposals))
            results.append(digests)
        assert results[0] == results[1]

    def test_ends_after_generations(self):
        strategy = EvolutionaryStrategy(space(), seed=2, population=6,
                                        generations=1)
        evaluated = evaluate(strategy.propose(0, {}))
        evaluated.update(evaluate(strategy.propose(1, evaluated)))
        assert strategy.propose(2, evaluated) == []


class TestFactory:
    @pytest.mark.parametrize("name,klass", [
        ("exhaustive", ExhaustiveStrategy),
        ("greedy", GreedyStrategy),
        ("evolutionary", EvolutionaryStrategy),
        ("random", RandomStrategy),
    ])
    def test_registered_names(self, name, klass):
        assert isinstance(make_strategy(name, space()), klass)

    def test_unknown_name_rejected(self):
        with pytest.raises(SpecError, match="unknown search strategy"):
            make_strategy("annealing", space())
