"""Tests for the LD/ST unit (replication-aware L1 front-end)."""

import pytest

from repro.arch.config import fast_config
from repro.core.hardware import HardwareBudget
from repro.sim.ldst import LdstUnit, TimingProtection, SimStats
from repro.sim.memory_subsystem import MemorySubsystem

CFG = fast_config()


def make_unit(protection=None, config=CFG):
    protection = protection or TimingProtection.baseline()
    stats = SimStats()
    subsystem = MemorySubsystem(config)
    unit = LdstUnit(config, subsystem, protection,
                    HardwareBudget.from_config(config), stats)
    return unit, stats, subsystem


def detection_spec(offsets=None):
    return TimingProtection(
        "detection", lazy=True,
        offsets=offsets or {"hot": (1 << 20,)},
    )


def correction_spec():
    return TimingProtection(
        "correction", lazy=True,
        offsets={"hot": (1 << 20, 2 << 20)},
    )


class TestBasicLoads:
    def test_miss_then_hit(self):
        unit, stats, _ = make_unit()
        ready1, stall = unit.load(0, "obj", 0)
        assert stall is None
        assert ready1 > CFG.l1_hit_latency
        assert stats.demand_misses == 1
        # After the fill has arrived, same line is an L1 hit.
        ready2, _ = unit.load(ready1 + 1, "obj", 0)
        assert ready2 == ready1 + 1 + CFG.l1_hit_latency

    def test_merged_miss_inherits_fill_time(self):
        unit, stats, _ = make_unit()
        ready1, _ = unit.load(0, "obj", 0)
        ready2, stall = unit.load(1, "obj", 0)  # still in flight
        assert stall is None
        assert ready2 == ready1
        assert stats.demand_misses == 1  # merged: one transaction

    def test_distinct_lines_distinct_misses(self):
        unit, stats, _ = make_unit()
        unit.load(0, "obj", 0)
        unit.load(0, "obj", 128)
        assert stats.demand_misses == 2

    def test_store_counts_transaction(self):
        unit, stats, _ = make_unit()
        unit.store(0, 256)
        assert stats.store_transactions == 1
        assert stats.demand_misses == 0


class TestMshrPressure:
    def test_mshr_full_stalls(self):
        unit, stats, _ = make_unit()
        for i in range(CFG.l1_mshr_entries):
            _ready, stall = unit.load(0, "obj", i * 128)
            assert stall is None
        ready, stall = unit.load(0, "obj", 9999 * 128)
        assert stall is not None
        assert stats.stalls.mshr_full == 1

    def test_stall_clears_after_fill(self):
        unit, _stats, _ = make_unit()
        stall_until = None
        for i in range(CFG.l1_mshr_entries + 1):
            _ready, stall = unit.load(0, "obj", i * 128)
            if stall is not None:
                stall_until = stall
        assert stall_until is not None
        ready, stall = unit.load(stall_until, "obj", 9999 * 128)
        assert stall is None


class TestDetectionReplication:
    def test_protected_miss_issues_replica(self):
        unit, stats, _ = make_unit(detection_spec())
        unit.load(0, "hot", 0)
        assert stats.demand_misses == 1
        assert stats.replica_transactions == 1

    def test_unprotected_object_no_replica(self):
        unit, stats, _ = make_unit(detection_spec())
        unit.load(0, "cold", 0)
        assert stats.replica_transactions == 0

    def test_lazy_demand_ready_is_primary_fill(self):
        """The lazy compare: warp resumes on the first copy, identical
        to an unprotected miss at the same (idle) time."""
        unit_p, _s1, _ = make_unit(detection_spec())
        unit_b, _s2, _ = make_unit()
        ready_p, _ = unit_p.load(0, "hot", 0)
        ready_b, _ = unit_b.load(0, "hot", 0)
        assert ready_p == ready_b

    def test_l1_hit_no_replication(self):
        unit, stats, _ = make_unit(detection_spec())
        ready1, _ = unit.load(0, "hot", 0)
        unit.load(ready1 + 1, "hot", 0)  # L1 hit now
        assert stats.replica_transactions == 1  # only the miss

    def test_compare_queue_fills_and_stalls(self):
        cfg = CFG.scaled(pending_compare_entries=2,
                         l1_mshr_entries=64)
        unit, stats, _ = make_unit(detection_spec(), config=cfg)
        unit.load(0, "hot", 0)
        unit.load(0, "hot", 128)
        _ready, stall = unit.load(0, "hot", 256)
        assert stall is not None
        assert stats.stalls.compare_queue_full == 1


class TestCorrectionReplication:
    def test_two_replicas_issued(self):
        unit, stats, _ = make_unit(correction_spec())
        unit.load(0, "hot", 0)
        assert stats.replica_transactions == 2

    def test_demand_waits_for_all_copies(self):
        unit_c, _s1, _ = make_unit(correction_spec())
        unit_b, _s2, _ = make_unit()
        ready_c, _ = unit_c.load(0, "hot", 0)
        ready_b, _ = unit_b.load(0, "hot", 0)
        # max of three queued transfers + comparator pass > one fill.
        assert ready_c > ready_b

    def test_eager_detection_also_waits(self):
        spec = TimingProtection("detection", lazy=False,
                              offsets={"hot": (1 << 20,)})
        unit_e, _s1, _ = make_unit(spec)
        unit_l, _s2, _ = make_unit(detection_spec())
        ready_e, _ = unit_e.load(0, "hot", 0)
        ready_l, _ = unit_l.load(0, "hot", 0)
        assert ready_e > ready_l


class TestRetryInvariance:
    """Structural stalls must be side-effect-free: the scheduler
    retries a stalled load, and pre-fix the early L1 probe allocated
    the line on each attempt — the retry then saw a phantom hit and
    never issued the demand miss."""

    def _stalled_unit(self):
        unit, stats, _ = make_unit()
        for i in range(CFG.l1_mshr_entries):
            _ready, stall = unit.load(0, "obj", i * 128)
            assert stall is None
        return unit, stats

    def test_mshr_stall_does_not_touch_l1(self):
        unit, stats = self._stalled_unit()
        accesses_before = unit.l1.stats.accesses
        new_addr = 9999 * 128
        _ready, stall = unit.load(0, "obj", new_addr)
        assert stall is not None
        assert unit.l1.stats.accesses == accesses_before
        # The phantom-hit regression: the stalled miss must not have
        # allocated the line.
        assert not unit.l1.lookup(new_addr)

    def test_retry_after_stall_issues_real_miss(self):
        unit, stats = self._stalled_unit()
        new_addr = 9999 * 128
        _ready, stall = unit.load(0, "obj", new_addr)
        misses_before = stats.demand_misses
        _ready, stall2 = unit.load(stall, "obj", new_addr)
        assert stall2 is None
        assert stats.demand_misses == misses_before + 1

    def test_repeated_stalls_keep_access_count_invariant(self):
        unit, _stats = self._stalled_unit()
        accesses = unit.l1.stats.accesses
        for _ in range(5):
            _ready, stall = unit.load(0, "obj", 9999 * 128)
            assert stall is not None
        assert unit.l1.stats.accesses == accesses

    def test_compare_queue_stall_does_not_touch_l1(self):
        cfg = CFG.scaled(pending_compare_entries=1,
                         l1_mshr_entries=64)
        unit, stats, _ = make_unit(detection_spec(), config=cfg)
        unit.load(0, "hot", 0)
        accesses_before = unit.l1.stats.accesses
        _ready, stall = unit.load(0, "hot", 256)
        assert stall is not None
        assert unit.l1.stats.accesses == accesses_before
        assert not unit.l1.lookup(256)

    def test_merged_miss_never_beats_hit_latency(self):
        """A warp merging into a pending line one cycle before the fill
        still pays the L1 read-port turnaround — data cannot arrive
        faster than a hit issued at the same cycle would deliver it."""
        unit, _stats, _ = make_unit()
        fill, stall = unit.load(0, "obj", 0)
        assert stall is None
        late = fill - 1
        ready, stall = unit.load(late, "obj", 0)
        assert stall is None
        assert ready == late + CFG.l1_hit_latency
        assert ready > fill


class TestTimingProtection:
    def test_baseline_inactive(self):
        assert not TimingProtection.baseline().active

    def test_n_way(self):
        assert detection_spec().n_way == 2
        assert correction_spec().n_way == 3
        assert TimingProtection.baseline().n_way == 1
