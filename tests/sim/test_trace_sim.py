"""Tests for the instrumented (traced) timing simulation.

The central invariants: attaching a tracer must not perturb the
simulation's results, the recorded events must follow the track/
category scheme and validate as a Perfetto document, attribution must
follow the request context down to DRAM (replica traffic included),
and the interval series must be deterministic and independent of the
campaign's ``jobs`` setting.
"""

import pytest

from repro.kernels.registry import create_app
from repro.obs.perfetto import render_chrome_trace, validate_trace_events, chrome_trace
from repro.obs.trace import (
    PID_TIMELINE,
    TraceConfig,
    TraceSession,
    UNATTRIBUTED,
)
from repro.sim.simulator import simulate_app


def _traced_run(scheme="detection", protect=("A",), seed=7,
                tcfg=None, test_config=None):
    app = create_app("P-ATAX", scale="small", seed=seed)
    tracer = TraceSession(tcfg or TraceConfig(max_events=50000,
                                              interval_cycles=512))
    report = simulate_app(
        app, config=test_config, scheme_name=scheme,
        protected_names=protect, tracer=tracer,
    )
    return report, tracer


class TestNonPerturbation:
    @pytest.mark.parametrize("scheme,protect", [
        ("baseline", ()),
        ("detection", ("A",)),
        ("correction", ("A", "x")),
    ])
    def test_traced_report_equals_untraced(self, test_config, scheme,
                                           protect):
        app = create_app("P-ATAX", scale="small", seed=7)
        untraced = simulate_app(app, config=test_config,
                                scheme_name=scheme,
                                protected_names=protect)
        traced, _ = _traced_run(scheme, protect,
                                test_config=test_config)
        assert traced == untraced

    def test_tracing_is_per_instance(self, test_config):
        """A traced run must not leak hooks into later untraced ones."""
        app = create_app("P-ATAX", scale="small", seed=7)
        before = simulate_app(app, config=test_config)
        _traced_run("baseline", (), test_config=test_config)
        after = simulate_app(app, config=test_config)
        assert before == after


class TestEventContent:
    def test_document_validates(self, test_config):
        _, tracer = _traced_run(test_config=test_config)
        assert validate_trace_events(chrome_trace(tracer)) > 0

    def test_kernel_spans_tile_the_run(self, test_config):
        report, tracer = _traced_run(test_config=test_config)
        kernels = [e for e in tracer.events if e.cat == "kernel"]
        assert kernels, "no kernel spans recorded"
        assert all(e.pid == PID_TIMELINE for e in kernels)
        assert sum(e.dur for e in kernels) == report.cycles
        assert set(report.kernel_cycles) == {e.name for e in kernels}

    def test_all_expected_categories_present(self, test_config):
        _, tracer = _traced_run(test_config=test_config)
        cats = {e.cat for e in tracer.events}
        assert {"kernel", "warp", "cache", "l2", "dram",
                "noc", "mshr"} <= cats

    def test_spans_have_nonnegative_durations(self, test_config):
        _, tracer = _traced_run(test_config=test_config)
        assert all(e.dur >= 0 for e in tracer.events if e.ph == "X")
        assert all(e.ts >= 0 for e in tracer.events)


class TestAttribution:
    def test_replica_traffic_attributed_to_owner(self, test_config):
        """Replica reads land outside every object's address span, so
        only the request context can attribute them — protected objects
        must show more L2 traffic than their primary misses alone."""
        _, tracer = _traced_run("detection", ("A",),
                                test_config=test_config)
        stats = tracer.object_stats["A"]
        assert stats.l2_accesses > stats.l1_misses
        assert stats.dram_reads > 0
        assert stats.read_bytes > 0
        # Nothing in a pure demand-read run should be unattributable.
        dram_events = [e for e in tracer.events if e.cat == "dram"]
        assert dram_events
        assert all(e.obj != UNATTRIBUTED for e in dram_events)

    def test_store_only_objects_see_l2_writes(self, test_config):
        _, tracer = _traced_run("baseline", (),
                                test_config=test_config)
        # P-ATAX writes y (the output vector) but never reads it.
        stats = tracer.object_stats["y"]
        assert stats.loads == 0
        assert stats.l2_accesses > 0


class TestIntervalSeries:
    def test_sampling_cadence_and_fields(self, test_config):
        report, tracer = _traced_run(test_config=test_config)
        assert tracer.samples, "no interval samples recorded"
        interval = tracer.config.interval_cycles
        for sample in tracer.samples:
            assert 0 < sample["cycle"] <= report.cycles
            assert sample["ipc"] >= 0.0
            assert 0.0 <= sample["row_hit_rate"] <= 1.0
            assert sample["mshr_occupancy"] >= 0
        # Boundary samples land on multiples of the interval; kernel
        # barriers may add one trailing partial sample each.
        aligned = [s for s in tracer.samples
                   if s["cycle"] % interval == 0]
        assert len(aligned) >= len(tracer.samples) // 2

    def test_deterministic_across_runs(self, test_config):
        _, a = _traced_run(test_config=test_config)
        _, b = _traced_run(test_config=test_config)
        assert a.samples == b.samples
        assert render_chrome_trace(a) == render_chrome_trace(b)

    def test_sample_rate_thins_events_not_series(self, test_config):
        full_cfg = TraceConfig(max_events=50000, interval_cycles=512,
                               sample_rate=1.0)
        thin_cfg = TraceConfig(max_events=50000, interval_cycles=512,
                               sample_rate=0.1)
        _, full = _traced_run(tcfg=full_cfg, test_config=test_config)
        _, thin = _traced_run(tcfg=thin_cfg, test_config=test_config)
        assert thin.emitted < full.emitted
        # The interval series is structural, never sampled away.
        assert [s["cycle"] for s in thin.samples] == \
            [s["cycle"] for s in full.samples]
        assert thin.samples == full.samples
