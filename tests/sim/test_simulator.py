"""Tests for the top-level timing simulator."""

import pytest

from repro.arch.config import PAPER_CONFIG, fast_config
from repro.errors import ConfigError
from repro.kernels.registry import create_app
from repro.sim.simulator import (
    build_protection,
    simulate_app,
    simulate_trace,
)

CFG = fast_config()
#: Traffic-relationship assertions run on the paper's configuration:
#: at the shrunken fast config the 2-channel memory system makes fill
#: latencies (and therefore MSHR merge windows and demand-miss counts)
#: swing with replica traffic, which is emergent timing behavior, not
#: the property under test.
FULL_CFG = PAPER_CONFIG


@pytest.fixture(scope="module")
def bicg_small():
    app = create_app("P-BICG", scale="small")
    memory = app.fresh_memory()
    trace = app.build_trace(memory)
    return app, memory, trace


class TestBuildProtection:
    def test_baseline(self, bicg_small):
        _app, memory, _trace = bicg_small
        spec = build_protection(memory, "baseline", ())
        assert not spec.active

    def test_empty_names_is_baseline(self, bicg_small):
        _app, memory, _trace = bicg_small
        spec = build_protection(memory, "detection", ())
        assert not spec.active

    def test_detection_offsets(self, bicg_small):
        _app, memory, _trace = bicg_small
        spec = build_protection(memory, "detection", ("r", "p"))
        assert set(spec.offsets) == {"r", "p"}
        assert all(len(offs) == 1 for offs in spec.offsets.values())
        assert all(offs[0] > 0 for offs in spec.offsets.values())

    def test_correction_offsets(self, bicg_small):
        _app, memory, _trace = bicg_small
        spec = build_protection(memory, "correction", ("r",))
        assert len(spec.offsets["r"]) == 2

    def test_does_not_mutate_caller_memory(self, bicg_small):
        _app, memory, _trace = bicg_small
        before = memory.bytes_allocated
        build_protection(memory, "correction", ("r", "p"))
        assert memory.bytes_allocated == before

    def test_unknown_scheme_rejected(self, bicg_small):
        _app, memory, _trace = bicg_small
        with pytest.raises(ConfigError):
            build_protection(memory, "mystery", ("r",))

    def test_never_copies_device_memory(self, bicg_small, monkeypatch):
        """The timing model only needs replica *offsets*: building a
        protection spec must neither deep-copy the device memory nor
        populate replica bytes (the pre-fix path cloned and copied the
        whole image per call)."""
        from repro.arch.address_space import DeviceMemory

        _app, memory, _trace = bicg_small
        reference = build_protection(memory, "correction", ("r", "p"))

        def _no_clone(self):
            raise AssertionError("build_protection deep-copied memory")

        def _no_copy(self, *a, **k):
            raise AssertionError("build_protection populated replicas")

        monkeypatch.setattr(DeviceMemory, "clone", _no_clone)
        monkeypatch.setattr(DeviceMemory, "read_pristine", _no_copy)
        monkeypatch.setattr(DeviceMemory, "write_object", _no_copy)
        spec = build_protection(memory, "correction", ("r", "p"))
        assert spec.offsets == reference.offsets


class TestSimulateTrace:
    def test_deterministic(self, bicg_small):
        _app, _memory, trace = bicg_small
        a = simulate_trace(trace, CFG)
        b = simulate_trace(trace, CFG)
        assert a.cycles == b.cycles
        assert a.demand_misses == b.demand_misses

    def test_kernels_serialize(self, bicg_small):
        _app, _memory, trace = bicg_small
        report = simulate_trace(trace, CFG)
        assert set(report.kernel_cycles) == \
            {"bicg_kernel1", "bicg_kernel2"}
        assert sum(report.kernel_cycles.values()) == report.cycles

    def test_instruction_count_matches_trace(self, bicg_small):
        _app, _memory, trace = bicg_small
        report = simulate_trace(trace, CFG)
        expected = 0
        for kernel in trace.kernels:
            for warp in kernel.iter_warps():
                for inst in warp.insts:
                    from repro.kernels.trace import Compute

                    if isinstance(inst, Compute):
                        expected += inst.count
                    else:
                        expected += len(inst.addrs)
        assert report.instructions == expected

    def test_l1_stats_populated(self, bicg_small):
        _app, _memory, trace = bicg_small
        report = simulate_trace(trace, CFG)
        assert report.l1_accesses > 0
        assert 0.0 < report.l1_hit_rate < 1.0
        # L2 sees demand misses plus write-through store traffic.
        assert report.l2_accesses == \
            report.demand_misses + report.store_transactions
        assert report.dram_requests > 0


class TestSimulateApp:
    def test_protection_increases_missed_accesses(self, bicg_small):
        app, memory, trace = bicg_small
        base = simulate_app(app, trace, memory, FULL_CFG)
        prot = simulate_app(app, trace, memory, FULL_CFG,
                            scheme_name="detection",
                            protected_names=("r", "p"))
        assert prot.l1_missed_accesses > base.l1_missed_accesses
        assert prot.replica_transactions > 0
        assert base.replica_transactions == 0

    def test_correction_more_traffic_than_detection(self, bicg_small):
        app, memory, trace = bicg_small
        det = simulate_app(app, trace, memory, FULL_CFG,
                           scheme_name="detection",
                           protected_names=("r", "p"))
        cor = simulate_app(app, trace, memory, FULL_CFG,
                           scheme_name="correction",
                           protected_names=("r", "p"))
        assert cor.replica_transactions == 2 * det.replica_transactions

    def test_protect_all_costs_more_than_hot(self, bicg_small):
        app, memory, trace = bicg_small
        hot = simulate_app(app, trace, memory, CFG,
                           scheme_name="correction",
                           protected_names=("r", "p"))
        all_objs = simulate_app(app, trace, memory, CFG,
                                scheme_name="correction",
                                protected_names=("r", "p", "A"))
        assert all_objs.cycles > hot.cycles
        assert all_objs.replica_transactions > \
            5 * hot.replica_transactions

    def test_lazy_vs_eager_detection(self, bicg_small):
        """The lazy comparison is the reason detection is nearly free:
        eager (stall for both copies) costs at least as much."""
        app, memory, trace = bicg_small
        lazy = simulate_app(app, trace, memory, CFG,
                            scheme_name="detection",
                            protected_names=("r", "p", "A"),
                            lazy=True)
        eager = simulate_app(app, trace, memory, CFG,
                             scheme_name="detection",
                             protected_names=("r", "p", "A"),
                             lazy=False)
        assert eager.cycles >= lazy.cycles

    def test_report_normalization_helpers(self, bicg_small):
        app, memory, trace = bicg_small
        base = simulate_app(app, trace, memory, CFG)
        prot = simulate_app(app, trace, memory, CFG,
                            scheme_name="correction",
                            protected_names=("A",))
        assert prot.slowdown_vs(base) > 1.0
        assert prot.missed_accesses_vs(base) > 1.5
        assert "P-BICG" in prot.summary()
