"""Tests for the SM core: scheduling, stalls, CTA residency."""

import pytest

from repro.arch.config import fast_config
from repro.core.hardware import HardwareBudget
from repro.kernels.trace import (
    Compute,
    CtaTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.sim.ldst import LdstUnit, TimingProtection, SimStats
from repro.sim.memory_subsystem import MemorySubsystem
from repro.sim.sm import SmCore

CFG = fast_config()


def make_sm(config=CFG):
    stats = SimStats()
    subsystem = MemorySubsystem(config)
    ldst = LdstUnit(config, subsystem, TimingProtection.baseline(),
                    HardwareBudget.from_config(config), stats)
    return SmCore(0, config, ldst, stats), stats


def run_to_completion(sm, limit=10_000_000):
    steps = 0
    while sm.active:
        sm.step()
        steps += 1
        if steps > limit:
            raise AssertionError("SM did not finish")
    return sm.cycle


class TestComputeOnly:
    def test_single_warp_compute_time(self):
        sm, stats = make_sm()
        cta = CtaTrace(0, [WarpTrace(0, [Compute(100)])])
        sm.start_kernel([cta], start_cycle=0)
        cycles = run_to_completion(sm)
        # 100 instructions at issue_width=2, one warp: one per cycle
        # visit but issue_width allows 2 per cycle from the same warp.
        assert cycles <= 100
        assert stats.instructions == 100

    def test_two_warps_share_issue_slots(self):
        sm, stats = make_sm()
        cta = CtaTrace(0, [
            WarpTrace(0, [Compute(100)]),
            WarpTrace(1, [Compute(100)]),
        ])
        sm.start_kernel([cta], 0)
        cycles = run_to_completion(sm)
        assert stats.instructions == 200
        # issue_width=2: ~100 cycles for 200 instructions.
        assert 95 <= cycles <= 130


class TestMemoryStalls:
    def test_load_use_stall(self):
        sm, _stats = make_sm()
        cta = CtaTrace(0, [WarpTrace(0, [
            Load("obj", (0,)),
            Compute(1, wait=True),
        ])])
        sm.start_kernel([cta], 0)
        cycles = run_to_completion(sm)
        # Must wait out the full L2 round trip for the cold miss.
        assert cycles > CFG.l1_hit_latency

    def test_latency_hiding_across_warps(self):
        """Eight warps issuing independent misses overlap them: total
        time is far less than eight serialized round trips."""
        def warp(i):
            return WarpTrace(i, [
                Load("obj", (i * 128 * 64,)),
                Compute(1, wait=True),
            ])

        sm, _stats = make_sm()
        sm.start_kernel([CtaTrace(0, [warp(i) for i in range(8)])], 0)
        overlapped = run_to_completion(sm)

        serial_total = 0
        for i in range(8):
            sm_s, _ = make_sm()
            sm_s.start_kernel([CtaTrace(0, [warp(i)])], 0)
            serial_total += run_to_completion(sm_s)
        assert overlapped < 0.5 * serial_total

    def test_store_does_not_stall(self):
        sm, _stats = make_sm()
        cta = CtaTrace(0, [WarpTrace(0, [
            Store("obj", (0,)),
            Compute(10),
        ])])
        sm.start_kernel([cta], 0)
        cycles = run_to_completion(sm)
        assert cycles < 30  # fire-and-forget


class TestCtaResidency:
    def test_cta_limit_respected(self):
        config = CFG.scaled(max_ctas_per_sm=2, max_warps_per_sm=48)
        sm, stats = make_sm(config)
        ctas = [
            CtaTrace(i, [WarpTrace(i * 4 + j, [Compute(50)])
                         for j in range(4)])
            for i in range(5)
        ]
        sm.start_kernel(ctas, 0)
        run_to_completion(sm)
        assert stats.instructions == 5 * 4 * 50

    def test_warp_limit_respected(self):
        config = CFG.scaled(max_ctas_per_sm=8, max_warps_per_sm=4)
        sm, stats = make_sm(config)
        ctas = [
            CtaTrace(i, [WarpTrace(i * 4 + j, [Compute(10)])
                         for j in range(4)])
            for i in range(3)
        ]
        sm.start_kernel(ctas, 0)
        run_to_completion(sm)
        assert stats.instructions == 120

    def test_oversized_cta_still_admitted(self):
        config = CFG.scaled(max_warps_per_sm=2)
        sm, stats = make_sm(config)
        big = CtaTrace(0, [WarpTrace(j, [Compute(5)]) for j in range(4)])
        sm.start_kernel([big], 0)
        run_to_completion(sm)
        assert stats.instructions == 20

    def test_busy_sm_rejects_new_kernel(self):
        sm, _ = make_sm()
        sm.start_kernel([CtaTrace(0, [WarpTrace(0, [Compute(5)])])], 0)
        with pytest.raises(RuntimeError):
            sm.start_kernel([CtaTrace(1, [WarpTrace(1, [Compute(5)])])],
                            0)

    def test_kernel_starts_at_given_cycle(self):
        sm, _ = make_sm()
        sm.start_kernel([CtaTrace(0, [WarpTrace(0, [Compute(2)])])],
                        start_cycle=500)
        cycles = run_to_completion(sm)
        assert cycles >= 500


class TestMultiTransactionLoads:
    def test_uncoalesced_load_consumes_issue_slots(self):
        """A 32-transaction load occupies the LD/ST pipe for many
        cycles (issue_width per cycle)."""
        addrs = tuple(i * 128 * 64 for i in range(32))
        sm, stats = make_sm()
        cta = CtaTrace(0, [WarpTrace(0, [Load("obj", addrs)])])
        sm.start_kernel([cta], 0)
        cycles = run_to_completion(sm)
        assert cycles >= 32 // CFG.issue_width - 1
        assert stats.instructions == 32
