"""Tests for the shared below-L1 memory hierarchy."""

import pytest

from repro.arch.config import fast_config
from repro.sim.memory_subsystem import MemorySubsystem

CFG = fast_config()


class TestReadPath:
    def test_l2_hit_faster_than_miss(self):
        subsystem = MemorySubsystem(CFG)
        first = subsystem.read(0, 0)  # cold: goes to DRAM
        warm_start = first + 1000
        second = subsystem.read(warm_start, 0)  # L2 hit
        assert second - warm_start < first - 0

    def test_requests_route_by_channel(self):
        subsystem = MemorySubsystem(CFG)
        line = CFG.line_bytes
        subsystem.read(0, 0)
        subsystem.read(0, line)  # different partition
        hits_per_slice = [s.stats.accesses for s in subsystem.l2_slices]
        assert hits_per_slice.count(1) == 2

    def test_same_partition_queues(self):
        subsystem = MemorySubsystem(CFG)
        stride = CFG.line_bytes * CFG.n_mem_channels  # same partition
        t0 = subsystem.read(0, 0)
        t1 = subsystem.read(0, stride)
        t2 = subsystem.read(0, 2 * stride)
        assert t1 > t0
        assert t2 > t1

    def test_different_partitions_overlap(self):
        subsystem = MemorySubsystem(CFG)
        t0 = subsystem.read(0, 0)
        t1 = subsystem.read(0, CFG.line_bytes)
        # Nearly identical completion: independent request links, L2
        # slices, and DRAM channels.
        assert abs(t1 - t0) <= CFG.interconnect_latency

    def test_stats_accumulate(self):
        subsystem = MemorySubsystem(CFG)
        for i in range(8):
            subsystem.read(0, i * CFG.line_bytes)
        assert subsystem.l2_accesses == 8
        assert subsystem.l2_hits == 0  # all cold
        assert subsystem.dram_requests == 8


class TestWritePath:
    def test_write_does_not_allocate_l2(self):
        subsystem = MemorySubsystem(CFG)
        subsystem.write(0, 0)
        assert subsystem.l2_accesses == 1
        assert subsystem.dram_requests == 0
        # A later read to the same line still misses L2.
        subsystem.read(100, 0)
        assert subsystem.l2_hits == 0

    def test_write_occupies_l2_slot(self):
        subsystem = MemorySubsystem(CFG)
        stride = CFG.line_bytes * CFG.n_mem_channels
        for i in range(20):
            subsystem.write(0, i * stride)
        # The slice's next-free time advanced: a read arriving at 0
        # now queues behind the stores.
        contended = subsystem.read(0, 0)
        fresh = MemorySubsystem(CFG).read(0, 0)
        assert contended > fresh


class TestLocality:
    def test_sequential_stream_gets_row_hits(self):
        subsystem = MemorySubsystem(CFG)
        stride = CFG.line_bytes * CFG.n_mem_channels
        for i in range(64):
            subsystem.read(i, i * stride)
        assert subsystem.dram_row_hits > 16
