"""Tests for the fault-injection campaign runner."""

import pytest

from repro.errors import ConfigError
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.outcomes import Outcome
from repro.faults.selection import hot_selection, uniform_selection
from repro.kernels.registry import create_app


def make_campaign(app_name="A-Laplacian", scheme="baseline",
                  protected=(), selection_pool="hot", runs=10,
                  n_bits=2, n_blocks=1, **kwargs):
    app = create_app(app_name, scale="small")
    memory = app.fresh_memory()
    if selection_pool == "hot":
        pool = [
            a for n in app.hot_object_names
            for a in memory.object(n).block_addrs()
        ]
    else:
        pool = [
            a for o in memory.objects for a in o.block_addrs()
        ]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protected,
        config=CampaignConfig(runs=runs, n_blocks=n_blocks,
                              n_bits=n_bits, seed=77),
        **kwargs,
    )


class TestConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignConfig(runs=0)
        with pytest.raises(ConfigError):
            CampaignConfig(n_blocks=0)
        with pytest.raises(ConfigError):
            CampaignConfig(n_bits=0)
        with pytest.raises(ConfigError):
            CampaignConfig(n_bits=40)


class TestBaselineCampaign:
    def test_outcome_counts_sum_to_runs(self):
        result = make_campaign(runs=12).run()
        assert result.n_runs == 12
        assert sum(result.counts.values()) == 12

    def test_hot_faults_cause_bad_outcomes(self):
        """Faults uniformly in laplacian's hot blocks (filter + bounds)
        frequently produce SDC or crash under no protection."""
        result = make_campaign(runs=40).run()
        bad = result.sdc_count + result.count(Outcome.CRASH)
        assert bad > 10
        assert result.count(Outcome.DETECTED) == 0
        assert result.count(Outcome.CORRECTED) == 0

    def test_reproducible(self):
        a = make_campaign(runs=15).run()
        b = make_campaign(runs=15).run()
        assert a.counts == b.counts

    def test_seed_changes_outcomes(self):
        app = create_app("A-Laplacian", scale="small")
        memory = app.fresh_memory()
        pool = [
            a for n in app.hot_object_names
            for a in memory.object(n).block_addrs()
        ]
        runs = []
        for seed in (1, 2):
            campaign = Campaign(
                app, uniform_selection(pool),
                config=CampaignConfig(runs=20, seed=seed),
                keep_runs=True,
            )
            runs.append([r.outcome for r in campaign.run().runs])
        assert runs[0] != runs[1]

    def test_keep_runs_records_details(self):
        campaign = make_campaign(runs=5, keep_runs=True)
        result = campaign.run()
        assert len(result.runs) == 5
        assert [r.run_index for r in result.runs] == list(range(5))


class TestDetectionCampaign:
    def test_hot_faults_get_detected(self):
        result = make_campaign(
            scheme="detection",
            protected=("Filter", "Filter_Height", "Filter_Width"),
            runs=40,
        ).run()
        assert result.count(Outcome.DETECTED) > 10
        assert result.sdc_count == 0
        assert result.count(Outcome.CRASH) == 0

    def test_masked_when_stuck_matches_data(self):
        # Some stuck-at values equal the stored bits: no mismatch, no
        # detection, clean output.
        result = make_campaign(
            scheme="detection",
            protected=("Filter", "Filter_Height", "Filter_Width"),
            runs=40,
        ).run()
        assert result.count(Outcome.MASKED) > 0


class TestCorrectionCampaign:
    def test_hot_faults_get_corrected(self):
        result = make_campaign(
            scheme="correction",
            protected=("Filter", "Filter_Height", "Filter_Width"),
            runs=40,
        ).run()
        assert result.count(Outcome.CORRECTED) > 10
        assert result.sdc_count == 0
        assert result.count(Outcome.CRASH) == 0

    def test_corrected_outputs_match_golden(self):
        campaign = make_campaign(
            scheme="correction",
            protected=("Filter", "Filter_Height", "Filter_Width"),
            runs=20, keep_runs=True,
        )
        result = campaign.run()
        for run in result.runs:
            assert run.outcome in (Outcome.CORRECTED, Outcome.MASKED)
            assert run.error == 0.0


class TestUnprotectedSpace:
    def test_faults_outside_protection_still_hurt(self):
        """Protecting the hot objects does nothing for faults injected
        into the rest of memory (but those rarely exceed thresholds)."""
        result = make_campaign(
            scheme="correction",
            protected=("Filter", "Filter_Height", "Filter_Width"),
            selection_pool="all",
            runs=40, n_bits=4, n_blocks=5,
        ).run()
        # Runs exist where nothing was corrected (fault hit image/output
        # space only).
        assert result.count(Outcome.MASKED) + result.sdc_count > 0


class TestRunMemoization:
    def test_live_words_memo_matches_direct(self):
        from repro.faults.model import live_words

        campaign = make_campaign(runs=5)
        addr = campaign._pristine.object("Filter").base_addr
        direct = live_words(campaign._pristine.object_at(addr), addr)
        assert campaign._live_words_for(addr) == direct
        # Second lookup must come from the memo, not a recomputation.
        assert campaign._live_words_for(addr) is \
            campaign._live_words_for(addr)

    def test_memoized_campaign_reproduces_fresh_one(self):
        first = make_campaign(runs=15, keep_runs=True)
        warmed = first.run()  # memo populated across the 15 runs
        fresh = make_campaign(runs=15, keep_runs=True).run()
        assert [r.outcome for r in warmed.runs] == \
            [r.outcome for r in fresh.runs]

    def test_secded_cow_matches_full_clone(self):
        def tallies(clone_mode):
            app = create_app("A-Laplacian", scale="small")
            memory = app.fresh_memory()
            pool = [
                a for n in app.hot_object_names
                for a in memory.object(n).block_addrs()
            ]
            return Campaign(
                app, uniform_selection(pool),
                config=CampaignConfig(runs=25, seed=77, secded=True),
                clone_mode=clone_mode, keep_runs=True,
            ).run()

        full, cow = tallies("full"), tallies("cow")
        assert full.counts == cow.counts
        assert [(r.run_index, r.outcome) for r in full.runs] == \
            [(r.run_index, r.outcome) for r in cow.runs]


class TestMultiBlockMultiBit:
    def test_more_faults_more_damage(self):
        # The hot pool has only 3 blocks, so the 5-block configuration
        # samples the whole application space instead.
        weak = make_campaign(runs=40, n_bits=2, n_blocks=1,
                             selection_pool="all").run()
        strong = make_campaign(runs=40, n_bits=4, n_blocks=5,
                               selection_pool="all").run()
        bad_weak = weak.sdc_count + weak.count(Outcome.CRASH)
        bad_strong = strong.sdc_count + strong.count(Outcome.CRASH)
        assert bad_strong >= bad_weak

    def test_summary_and_interval(self):
        result = make_campaign(runs=25).run()
        text = result.summary()
        assert "A-Laplacian" in text
        assert result.sdc_interval().runs == 25
