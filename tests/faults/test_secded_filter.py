"""Tests for SECDED-in-the-loop fault filtering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address_space import DeviceMemory
from repro.arch.ecc import SecdedCodec
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.model import FaultSpec
from repro.faults.outcomes import Outcome
from repro.faults.secded_filter import (
    EccVerdict,
    apply_filtered_faults,
    filter_fault,
)
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app

codec = SecdedCodec()


@pytest.fixture()
def mem():
    memory = DeviceMemory(4096)
    obj = memory.alloc("o", (64,), np.int32)
    memory.write_object(
        obj, np.arange(64, dtype=np.int32) * 0x01010101)
    return memory, obj


class TestFilterVerdicts:
    def test_matching_stuck_levels_are_clean(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 0, (3, 9), (0, 0))
        assert filter_fault(memory, fault, codec).verdict is \
            EccVerdict.CLEAN

    def test_single_flipped_bit_corrected(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 0, (5,), (1,))
        filtered = filter_fault(memory, fault, codec)
        assert filtered.verdict is EccVerdict.CORRECTED
        assert filtered.delivered_bits == ()

    def test_two_flipped_bits_are_due(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 0, (5, 17), (1, 1))
        assert filter_fault(memory, fault, codec).verdict is \
            EccVerdict.DUE

    def test_two_stuck_bits_one_matching_corrects(self, mem):
        """A 2-bit stuck cluster where one level matches stored data
        flips only one bit: SECDED repairs it."""
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 0, (5, 17), (1, 0))
        assert filter_fault(memory, fault, codec).verdict is \
            EccVerdict.CORRECTED

    def test_three_flipped_bits_deliver_wrong_data(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 0, (3, 7, 11), (1, 1, 1))
        filtered = filter_fault(memory, fault, codec)
        assert filtered.verdict in (
            EccVerdict.MISCORRECTED, EccVerdict.ESCAPED)
        assert filtered.delivered_bits

    def test_fault_in_second_word_of_ecc_pair(self, mem):
        """Words at odd offsets share their ECC word with the previous
        32-bit word — positions must map into bits 32..63."""
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        fault = FaultSpec(obj.base_addr, 1, (0,), (1,))
        filtered = filter_fault(memory, fault, codec)
        assert filtered.verdict is EccVerdict.CORRECTED


class TestApplyFiltered:
    def test_corrected_fault_leaves_memory_clean(self, mem):
        memory, obj = mem
        pristine = memory.read_pristine(obj).copy()
        faults = [FaultSpec(obj.base_addr, 2, (9,), (1 - (
            (int(pristine[2]) >> 9) & 1),))]
        verdicts, due = apply_filtered_faults(memory, faults)
        assert verdicts == [EccVerdict.CORRECTED]
        assert not due
        np.testing.assert_array_equal(memory.read_object(obj), pristine)

    def test_miscorrection_changes_observed_data(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        faults = [FaultSpec(obj.base_addr, 0, (3, 7, 11), (1, 1, 1))]
        verdicts, due = apply_filtered_faults(memory, faults)
        assert not due
        observed = memory.read_object(obj)
        assert (observed[:2] != 0).any()

    def test_due_reported(self, mem):
        memory, obj = mem
        memory.write_object(obj, np.zeros(64, dtype=np.int32))
        faults = [FaultSpec(obj.base_addr, 0, (3, 7), (1, 1))]
        _verdicts, due = apply_filtered_faults(memory, faults)
        assert due


class TestCampaignIntegration:
    def _campaign(self, n_bits, secded, runs=30):
        app = create_app("A-Laplacian", scale="small")
        memory = app.fresh_memory()
        pool = [
            a for n in app.hot_object_names
            for a in memory.object(n).block_addrs()
        ]
        return Campaign(
            app, uniform_selection(pool),
            config=CampaignConfig(runs=runs, n_bits=n_bits, seed=5,
                                  secded=secded),
        ).run()

    def test_single_bit_faults_fully_corrected(self):
        result = self._campaign(n_bits=1, secded=True)
        assert result.sdc_count == 0
        assert result.count(Outcome.CRASH) == 0
        assert result.count(Outcome.MASKED) == result.n_runs

    def test_double_bit_faults_loud_or_masked(self):
        result = self._campaign(n_bits=2, secded=True)
        assert result.sdc_count == 0
        assert result.count(Outcome.CRASH) == 0
        # Flipping patterns raise DUEs; level-matching ones are clean
        # or single-flip-corrected.
        assert result.count(Outcome.DETECTED) > 0

    def test_multibit_faults_defeat_secded(self):
        with_ecc = self._campaign(n_bits=4, secded=True)
        bad = with_ecc.sdc_count + with_ecc.count(Outcome.CRASH)
        assert bad > 0  # the paper's premise, quantified

    def test_without_secded_single_bit_can_hurt(self):
        result = self._campaign(n_bits=1, secded=False, runs=60)
        bad = result.sdc_count + result.count(Outcome.CRASH)
        assert bad > 0


@settings(max_examples=25)
@given(st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=1))
def test_filter_single_bit_never_delivers_damage(bit, polarity):
    memory = DeviceMemory(1024)
    obj = memory.alloc("o", (32,), np.int32)
    memory.write_object(
        obj, np.full(32, 0x5A5A5A5A, dtype=np.int32))
    fault = FaultSpec(obj.base_addr, 0, (bit,), (polarity,))
    filtered = filter_fault(memory, fault, codec)
    assert filtered.verdict in (EccVerdict.CLEAN, EccVerdict.CORRECTED)
    assert filtered.delivered_bits == ()
