"""Tests for the fault model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.faults.injector import apply_faults
from repro.faults.model import (
    WORDS_PER_BLOCK,
    FaultSpec,
    live_words,
    sample_word_fault,
)
from repro.utils.rng import RngStream


class TestFaultSpec:
    def test_valid_spec(self):
        spec = FaultSpec(256, 3, (0, 5), (1, 0))
        assert spec.n_bits == 2
        assert spec.word_addr == 256 + 12

    def test_byte_level_expansion(self):
        spec = FaultSpec(0, 0, (0, 9, 31), (1, 0, 1))
        triples = spec.byte_level_faults()
        assert triples == [(0, 0, 1), (1, 1, 0), (3, 7, 1)]

    def test_unaligned_block_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(100, 0, (0,), (1,))

    def test_word_index_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(0, WORDS_PER_BLOCK, (0,), (1,))

    def test_duplicate_bits_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, (3, 3), (1, 1))

    def test_bit_position_bounds(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, (32,), (1,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, (1, 2), (1,))

    def test_bad_stuck_value(self):
        with pytest.raises(ValueError):
            FaultSpec(0, 0, (1,), (2,))


class TestSampling:
    def test_sample_is_reproducible(self):
        a = sample_word_fault(RngStream(7), 1280, 3)
        b = sample_word_fault(RngStream(7), 1280, 3)
        assert a == b

    def test_sample_n_bits(self):
        for n_bits in (2, 3, 4):
            spec = sample_word_fault(RngStream(1), 0, n_bits)
            assert spec.n_bits == n_bits

    def test_sample_respects_candidates(self):
        for seed in range(20):
            spec = sample_word_fault(
                RngStream(seed), 0, 2, word_candidates=[5, 6])
            assert spec.word_index in (5, 6)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            sample_word_fault(RngStream(1), 0, 2, word_candidates=[])

    def test_bad_n_bits(self):
        with pytest.raises(ValueError):
            sample_word_fault(RngStream(1), 0, 0)
        with pytest.raises(ValueError):
            sample_word_fault(RngStream(1), 0, 33)

    def test_polarity_varies(self):
        values = set()
        for seed in range(30):
            spec = sample_word_fault(RngStream(seed), 0, 2)
            values.update(spec.stuck_values)
        assert values == {0, 1}


class TestLiveWords:
    def test_full_block(self):
        mem = DeviceMemory(1024)
        obj = mem.alloc("o", (64,), np.float32)  # 2 full blocks
        assert live_words(obj, obj.base_addr) == list(range(32))

    def test_tiny_object_limits_words(self):
        mem = DeviceMemory(1024)
        obj = mem.alloc("o", (9,), np.float32)  # 36 bytes -> 9 words
        assert live_words(obj, obj.base_addr) == list(range(9))

    def test_partial_last_block(self):
        mem = DeviceMemory(1024)
        obj = mem.alloc("o", (40,), np.float32)  # 160B: 32 + 8 words
        second = obj.base_addr + BLOCK_BYTES
        assert live_words(obj, second) == list(range(8))

    def test_block_outside_object_rejected(self):
        mem = DeviceMemory(1024)
        obj = mem.alloc("o", (4,), np.float32)
        with pytest.raises(ValueError):
            live_words(obj, obj.base_addr + BLOCK_BYTES)


class TestInjector:
    def test_apply_returns_bit_count(self, memory):
        obj = memory.alloc("o", (64,), np.float32)
        faults = [
            sample_word_fault(RngStream(1), obj.base_addr, 3),
            sample_word_fault(RngStream(2), obj.base_addr + 128, 2),
        ]
        assert apply_faults(memory, faults) == 5
        assert memory.fault_count == 5

    def test_injected_fault_visible(self, memory):
        obj = memory.alloc("o", (32,), np.int32)
        memory.write_object(obj, np.zeros(32, dtype=np.int32))
        spec = FaultSpec(obj.base_addr, 4, (0, 7), (1, 1))
        apply_faults(memory, [spec])
        value = memory.read_object(obj)[4]
        assert value == (1 << 0) | (1 << 7)


@given(st.integers(min_value=0, max_value=1000),
       st.integers(min_value=1, max_value=8))
def test_sampled_faults_always_valid(seed, n_bits):
    spec = sample_word_fault(RngStream(seed), 1280, n_bits)
    assert spec.block_addr == 1280
    assert len(set(spec.bit_positions)) == n_bits
    assert all(v in (0, 1) for v in spec.stuck_values)
