"""Tests for fault-site selection policies."""

import pytest

from repro.errors import ConfigError
from repro.faults.selection import (
    access_weighted_selection,
    hot_selection,
    miss_weighted_selection,
    rest_selection,
    uniform_selection,
)
from repro.utils.rng import RngStream

BLOCKS = [i * 128 for i in range(20)]


class TestUniform:
    def test_picks_from_pool(self):
        sel = uniform_selection(BLOCKS)
        picks = sel.pick(RngStream(1), 5)
        assert len(picks) == 5
        assert set(picks) <= set(BLOCKS)
        assert len(set(picks)) == 5

    def test_reproducible(self):
        sel = uniform_selection(BLOCKS)
        assert sel.pick(RngStream(9), 3) == sel.pick(RngStream(9), 3)

    def test_population(self):
        assert uniform_selection(BLOCKS).population == 20

    def test_deduplicates_pool(self):
        sel = uniform_selection([0, 0, 128])
        assert sel.population == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError):
            uniform_selection([])

    def test_oversized_request_clamps_to_population(self):
        picks = uniform_selection(BLOCKS[:3]).pick(RngStream(1), 4)
        assert sorted(picks) == sorted(BLOCKS[:3])

    def test_zero_blocks_rejected(self):
        with pytest.raises(ConfigError):
            uniform_selection(BLOCKS).pick(RngStream(1), 0)


class TestNamedArms:
    def test_hot_and_rest_names(self):
        assert hot_selection(BLOCKS).name == "hot-blocks"
        assert rest_selection(BLOCKS).name == "rest-blocks"


class TestWeighted:
    def test_zero_weight_blocks_excluded(self):
        sel = access_weighted_selection({0: 0, 128: 10, 256: 10})
        assert sel.population == 2
        for seed in range(20):
            assert 0 not in sel.pick(RngStream(seed), 1)

    def test_heavy_block_dominates(self):
        sel = access_weighted_selection({0: 1, 128: 10_000})
        picks = [sel.pick(RngStream(s), 1)[0] for s in range(50)]
        assert picks.count(128) >= 45

    def test_miss_weighted_same_mechanics(self):
        sel = miss_weighted_selection({0: 5, 128: 5})
        assert sel.name == "miss-weighted"
        assert sel.population == 2

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ConfigError):
            access_weighted_selection({0: 0})

    def test_distinct_picks(self):
        sel = access_weighted_selection({i * 128: i + 1 for i in range(10)})
        picks = sel.pick(RngStream(3), 5)
        assert len(set(picks)) == 5
