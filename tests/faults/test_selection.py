"""Tests for fault-site selection policies."""

import pytest

from repro.errors import ConfigError
from repro.faults.selection import (
    access_weighted_selection,
    hot_selection,
    miss_weighted_selection,
    rest_selection,
    uniform_selection,
)
from repro.utils.rng import RngStream

BLOCKS = [i * 128 for i in range(20)]


class TestUniform:
    def test_picks_from_pool(self):
        sel = uniform_selection(BLOCKS)
        picks = sel.pick(RngStream(1), 5)
        assert len(picks) == 5
        assert set(picks) <= set(BLOCKS)
        assert len(set(picks)) == 5

    def test_reproducible(self):
        sel = uniform_selection(BLOCKS)
        assert sel.pick(RngStream(9), 3) == sel.pick(RngStream(9), 3)

    def test_population(self):
        assert uniform_selection(BLOCKS).population == 20

    def test_deduplicates_pool(self):
        sel = uniform_selection([0, 0, 128])
        assert sel.population == 2

    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigError):
            uniform_selection([])

    def test_oversized_request_clamps_to_population(self):
        picks = uniform_selection(BLOCKS[:3]).pick(RngStream(1), 4)
        assert sorted(picks) == sorted(BLOCKS[:3])

    def test_zero_blocks_rejected(self):
        with pytest.raises(ConfigError):
            uniform_selection(BLOCKS).pick(RngStream(1), 0)


class TestNamedArms:
    def test_hot_and_rest_names(self):
        assert hot_selection(BLOCKS).name == "hot-blocks"
        assert rest_selection(BLOCKS).name == "rest-blocks"


class TestWeighted:
    def test_zero_weight_blocks_excluded(self):
        sel = access_weighted_selection({0: 0, 128: 10, 256: 10})
        assert sel.population == 2
        for seed in range(20):
            assert 0 not in sel.pick(RngStream(seed), 1)

    def test_heavy_block_dominates(self):
        sel = access_weighted_selection({0: 1, 128: 10_000})
        picks = [sel.pick(RngStream(s), 1)[0] for s in range(50)]
        assert picks.count(128) >= 45

    def test_miss_weighted_same_mechanics(self):
        sel = miss_weighted_selection({0: 5, 128: 5})
        assert sel.name == "miss-weighted"
        assert sel.population == 2

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ConfigError):
            access_weighted_selection({0: 0})

    def test_distinct_picks(self):
        sel = access_weighted_selection({i * 128: i + 1 for i in range(10)})
        picks = sel.pick(RngStream(3), 5)
        assert len(set(picks)) == 5


class TestStratifiedSampling:
    def make_strata(self):
        from repro.faults.selection import Stratum

        return [
            Stratum("low", 1.0, uniform_selection(BLOCKS[:8], "low")),
            Stratum("high", 3.0,
                    uniform_selection(BLOCKS[8:20], "high")),
        ]

    def test_compose_and_pick(self):
        from repro.faults.selection import stratified_selection

        sel = stratified_selection(self.make_strata())
        assert sel.population == 20
        picks = sel.pick(RngStream(5), 6)
        assert len(picks) == len(set(picks)) == 6
        assert set(picks) <= set(BLOCKS)

    def test_deterministic_and_picklable(self):
        import pickle

        from repro.faults.selection import stratified_selection

        sel = stratified_selection(self.make_strata())
        clone = pickle.loads(pickle.dumps(sel))
        assert clone.pick(RngStream(11), 5) \
            == sel.pick(RngStream(11), 5)

    def test_stratum_of_resolves_every_pool_block(self):
        from repro.faults.selection import stratified_selection

        sel = stratified_selection(self.make_strata())
        assert all(sel.stratum_of(a) == 0 for a in BLOCKS[:8])
        assert all(sel.stratum_of(a) == 1 for a in BLOCKS[8:20])
        with pytest.raises(ConfigError):
            sel.stratum_of(99 * 128)

    def test_capacity_exhaustion_spills_to_other_strata(self):
        from repro.faults.selection import (
            Stratum,
            stratified_selection,
        )

        tiny = stratified_selection([
            Stratum("one", 100.0, uniform_selection(BLOCKS[:1], "one")),
            Stratum("rest", 1.0, uniform_selection(BLOCKS[1:5],
                                                   "rest")),
        ])
        picks = tiny.pick(RngStream(3), 4)
        assert len(set(picks)) == 4  # the 1-block stratum cannot repeat

    def test_overlapping_pools_rejected(self):
        from repro.faults.selection import (
            Stratum,
            stratified_selection,
        )

        with pytest.raises(ConfigError):
            stratified_selection([
                Stratum("a", 1.0, uniform_selection(BLOCKS[:5], "a")),
                Stratum("b", 1.0, uniform_selection(BLOCKS[4:9], "b")),
            ])

    def test_degenerate_strata_rejected(self):
        from repro.faults.selection import (
            Stratum,
            stratified_selection,
        )

        with pytest.raises(ConfigError):
            stratified_selection([])
        with pytest.raises(ConfigError):
            stratified_selection([
                Stratum("z", 0.0, uniform_selection(BLOCKS[:2], "z")),
            ])
        with pytest.raises(ConfigError):
            stratified_selection([
                Stratum("n", -1.0, uniform_selection(BLOCKS[:2], "n")),
            ])


class TestStratifyBuilders:
    class FakeObject:
        def __init__(self, name, base_addr, n_blocks):
            self.name = name
            self.base_addr = base_addr
            self.n_blocks = n_blocks

    def setup_method(self):
        self.objects = [
            self.FakeObject("A", 0, 8),
            self.FakeObject("x", 8 * 128, 4),
            self.FakeObject("pad", 12 * 128, 4),  # never read
        ]
        self.read_counts = {a: 10 for a in BLOCKS[:8]}
        self.read_counts.update({a: 30 for a in BLOCKS[8:12]})

    def test_stratify_by_object(self):
        from repro.faults.selection import stratify_by_object

        sel = stratify_by_object(self.read_counts, self.objects)
        assert [s.name for s in sel.strata] == ["A", "x"]
        assert sel.strata[0].weight == pytest.approx(80.0)
        assert sel.strata[1].weight == pytest.approx(120.0)
        picks = sel.pick(RngStream(2), 3)
        assert len(set(picks)) == 3

    def test_stratify_by_read_count_bins(self):
        from repro.faults.selection import stratify_by_read_count

        sel = stratify_by_read_count(self.read_counts, bins=2)
        assert len(sel.strata) == 2
        assert sel.population == 12
        # bins partition the pool disjointly
        pools = [set(s.selection.sampler.pool) for s in sel.strata]
        assert not pools[0] & pools[1]

    def test_stratify_by_liveness_windows(self):
        from repro.faults.selection import stratify_by_liveness

        class Digest:
            def __init__(self, window):
                self.window = window

        liveness = {"A": Digest("input"), "x": Digest("working"),
                    "pad": Digest("dead")}
        sel = stratify_by_liveness(self.read_counts, self.objects,
                                   liveness)
        assert sorted(s.name for s in sel.strata) \
            == ["input", "working"]

    def test_no_weighted_blocks_rejected(self):
        from repro.faults.selection import stratify_by_object

        with pytest.raises(ConfigError):
            stratify_by_object({}, self.objects)
