"""Determinism regression: batched campaigns ≡ the scalar loop.

The batched engine (:mod:`repro.faults.batch`) is an execution
strategy, not a semantic variant — for any (app, scheme, protect,
seed, runs) cell it must produce the same outcome tallies and
byte-identical RunRecord JSONL as ``run_one`` at every batch size and
worker count.  These tests pin that contract on both an
analytic-heavy cell (read-only protected objects) and cells with
writable-object faults that force the real-execution fallback.
"""

from __future__ import annotations

import pytest

from repro.faults.batch import BatchEngine
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.injector import (
    apply_faults,
    apply_faults_merged,
    merge_fault_masks,
)
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app


def make_campaign(app_name, scheme, protect, runs=24, batch=1, jobs=1,
                  seed=20210621):
    app = create_app(app_name, scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protect,
        config=CampaignConfig(runs=runs, n_blocks=2, n_bits=2,
                              seed=seed),
        keep_runs=True,
        collect_records=True,
        batch=batch,
        jobs=jobs,
    )


def records_jsonl(result) -> str:
    return "\n".join(r.to_json() for r in result.records)


CELLS = [
    # Analytic-heavy: read-only protected inputs.
    ("P-BICG", "detection", ("A",)),
    ("P-BICG", "correction", ("A", "r")),
    # Writable outputs in the pool force exec-lane fallback paths.
    ("P-ATAX", "detection", ("A", "x")),
    ("P-GESUMMV", "correction", ("A", "B")),
]


class TestBatchedEqualsSerial:
    @pytest.mark.parametrize("app_name,scheme,protect", CELLS)
    @pytest.mark.parametrize("batch", [8, 64])
    def test_batch_sizes_match_serial(self, app_name, scheme, protect,
                                      batch):
        serial = make_campaign(app_name, scheme, protect).run()
        batched = make_campaign(
            app_name, scheme, protect, batch=batch
        ).run()
        assert batched.counts == serial.counts
        assert [r.outcome for r in batched.runs] \
            == [r.outcome for r in serial.runs]
        assert records_jsonl(batched) == records_jsonl(serial)

    def test_batch_of_one_is_identity(self):
        serial = make_campaign("P-BICG", "detection", ("A",)).run()
        batched = make_campaign(
            "P-BICG", "detection", ("A",), batch=1
        ).run()
        assert records_jsonl(batched) == records_jsonl(serial)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_parallel_batched_matches_serial(self, jobs):
        serial = make_campaign("P-BICG", "detection", ("A",)).run()
        batched = make_campaign(
            "P-BICG", "detection", ("A",), batch=8, jobs=jobs
        ).run()
        assert batched.counts == serial.counts
        assert records_jsonl(batched) == records_jsonl(serial)


class TestPlanningEquivalence:
    def test_fast_plan_matches_reference(self):
        campaign = make_campaign("P-BICG", "detection", ("A",))
        engine = BatchEngine(campaign)
        engine._prepare()
        fast = engine._plan(0, 16)
        reference = [engine._plan_reference(i) for i in range(16)]
        assert [(l.run_index, l.seed, l.faults) for l in fast] \
            == [(l.run_index, l.seed, l.faults) for l in reference]

    def test_cross_check_demotion_stays_correct(self):
        """With the fast path forced off, planning falls back to the
        reference derivation and results are unchanged."""
        campaign = make_campaign("P-BICG", "detection", ("A",), runs=8,
                                 batch=8)
        engine = BatchEngine(campaign)
        engine._fast = False
        campaign._batch_engine = engine
        batched = campaign.run()
        serial = make_campaign("P-BICG", "detection", ("A",),
                               runs=8).run()
        assert records_jsonl(batched) == records_jsonl(serial)


class TestMergedInjection:
    def test_merged_masks_equal_sequential_overlays(self):
        """apply_faults_merged installs the exact overlays sequential
        apply_faults would, for every lane of a planned batch."""
        campaign = make_campaign("P-BICG", "detection", ("A",))
        engine = BatchEngine(campaign)
        engine._prepare()
        for lane in engine._plan(0, 12):
            serial_mem = campaign._run_memory()
            merged_mem = campaign._run_memory()
            n_serial = apply_faults(serial_mem, lane.faults)
            masks = merge_fault_masks(lane.faults)
            n_merged = apply_faults_merged(merged_mem, masks)
            assert n_serial == n_merged
            assert serial_mem._overlays == merged_mem._overlays


class TestEquivalencePruning:
    """Outcome-equivalence pruning: lanes classified MASKED from the
    golden timeline alone, without execution — and without perturbing
    the scalar-identical results contract checked above."""

    def test_agrees_prunes_fire_and_results_stay_identical(self):
        serial = make_campaign("P-ATAX", "detection", ("A", "x"),
                               runs=96).run()
        batched = make_campaign("P-ATAX", "detection", ("A", "x"),
                                runs=96, batch=32)
        result = batched.run()
        assert records_jsonl(result) == records_jsonl(serial)
        counters = result.metrics_snapshot["counters"]
        assert counters.get("campaign.batch.pruned.agrees", 0) > 0
        assert counters["campaign.batch.analytic_lanes"] \
            + counters["campaign.batch.exec_lanes"] == 96

    def test_writable_verdict_classes(self):
        campaign = make_campaign("P-BICG", "detection", ("A",))
        engine = BatchEngine(campaign)
        engine._prepare()
        timeline = engine._timeline
        # dead: a name on no read path at all
        assert engine._writable_verdict("__not_read__", {0: (1, 0)}) \
            == "dead"
        # agrees / must-exec against a real snapshotted object
        name = next(n for n in timeline.read_values
                    if timeline.read_values[n])
        snap = timeline.read_values[name][0]
        raw = snap[0]
        agreeing = ((raw & 1), (~raw) & 1)  # or/and masks matching bit 0
        assert engine._writable_verdict(name, {0: agreeing}) == "agrees"
        flipping = (((~raw) & 1), (raw & 1))  # stuck opposite to bit 0
        assert engine._writable_verdict(name, {0: flipping}) is None

    def test_unsnapshotted_read_paths_force_execution(self):
        campaign = make_campaign("P-BICG", "detection", ("A",))
        engine = BatchEngine(campaign)
        engine._prepare()
        name = next(iter(engine._timeline.read_values))
        engine._timeline.read_values[name] = []
        assert engine._writable_verdict(name, {0: (0, 0)}) is None
