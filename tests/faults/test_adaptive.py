"""Tests for CI-driven adaptive campaigns (repro.faults.adaptive)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SpecError
from repro.faults.adaptive import (
    AdaptiveConfig,
    StopDecision,
    _plan_spans,
    run_adaptive,
    should_stop,
    stratified_estimate,
)
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import stratify_by_object, uniform_selection
from repro.kernels.registry import create_app
from repro.utils.stats import confidence_interval, zero_run_interval


def make_campaign(app_name="P-BICG", scheme="detection", protect=("A",),
                  runs=400, seed=20210621, **kwargs):
    app = create_app(app_name, scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protect,
        config=CampaignConfig(runs=runs, seed=seed),
        **kwargs,
    )


class TestAdaptiveConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveConfig(target_margin=0.0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(target_margin=1.0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(target_margin=0.05, check_every=0)
        with pytest.raises(ConfigError):
            AdaptiveConfig(target_margin=0.05, min_runs=-1)
        with pytest.raises(ValueError):
            AdaptiveConfig(target_margin=0.05, level=0.8)

    def test_to_dict_is_stable(self):
        cfg = AdaptiveConfig(target_margin=0.03)
        assert cfg.to_dict() == {
            "target_margin": 0.03, "level": 0.95,
            "check_every": 64, "min_runs": 0,
        }

    def test_target_margin_shorthand(self):
        campaign = make_campaign(target_margin=0.05)
        assert campaign.adaptive == AdaptiveConfig(target_margin=0.05)

    def test_shorthand_conflicts_with_explicit_config(self):
        with pytest.raises(ConfigError):
            make_campaign(target_margin=0.05,
                          adaptive=AdaptiveConfig(target_margin=0.05))


class TestStoppingRule:
    def test_zero_runs_never_stops(self):
        stop, interval = should_stop(0, 0, target_margin=0.5)
        assert not stop
        assert interval == zero_run_interval()

    def test_wilson_margin_drives_the_rule(self):
        # The degenerate-CI regression this PR fixes: one MASKED run
        # under the normal approximation has margin 0 and would stop
        # instantly; Wilson keeps the campaign honest.
        stop, interval = should_stop(0, 1, target_margin=0.03)
        assert not stop
        assert interval.margin > 0.5

    def test_stops_once_margin_met(self):
        stop, interval = should_stop(0, 200, target_margin=0.03)
        assert stop
        assert interval.margin <= 0.03

    def test_plan_spans_covers_budget_exactly(self):
        spans = _plan_spans(100, 32)
        assert spans == [(0, 32), (32, 64), (64, 96), (96, 100)]


class TestAdaptiveCampaign:
    def test_converges_before_budget(self):
        campaign = make_campaign(target_margin=0.05, batch=16)
        result = campaign.run()
        adaptive = campaign.adaptive_result
        assert adaptive.converged
        assert adaptive.stopped_at == result.n_runs < 400
        assert adaptive.interval.margin <= 0.05
        # decisions evaluate at every committed chunk boundary and
        # only the last one stops
        assert [d.stop for d in adaptive.decisions] \
            == [False] * (len(adaptive.decisions) - 1) + [True]
        assert adaptive.decisions[-1].committed == adaptive.stopped_at

    def test_budget_exhaustion_reports_unconverged(self):
        campaign = make_campaign(runs=64,
                                 adaptive=AdaptiveConfig(
                                     target_margin=0.001, check_every=32))
        result = campaign.run()
        adaptive = campaign.adaptive_result
        assert not adaptive.converged
        assert result.n_runs == adaptive.budget == 64

    def test_min_runs_floor_delays_the_stop(self):
        eager = make_campaign(
            adaptive=AdaptiveConfig(target_margin=0.05, check_every=64))
        eager.run()
        floored = make_campaign(
            adaptive=AdaptiveConfig(target_margin=0.05, check_every=64,
                                    min_runs=256))
        floored.run()
        assert floored.adaptive_result.stopped_at >= 256 \
            > eager.adaptive_result.stopped_at

    def test_run_adaptive_requires_a_config(self):
        campaign = make_campaign()
        with pytest.raises(ConfigError):
            campaign.run_adaptive()

    def test_simulated_run_accounting(self):
        campaign = make_campaign(target_margin=0.05, batch=16)
        campaign.run()
        adaptive = campaign.adaptive_result
        assert adaptive.simulated_runs + adaptive.analytic_runs \
            == adaptive.stopped_at
        assert adaptive.analytic_runs > 0  # pruning/analytic lanes fire

    def test_spec_identity_gains_adaptive_key_only_when_enabled(self):
        plain = make_campaign()
        adaptive = make_campaign(target_margin=0.05)
        assert "adaptive" not in plain.spec_identity()
        assert adaptive.spec_identity()["adaptive"] \
            == AdaptiveConfig(target_margin=0.05).to_dict()
        # everything else is unchanged
        stripped = dict(adaptive.spec_identity())
        del stripped["adaptive"]
        assert stripped == plain.spec_identity()


class TestDeterminism:
    """The committed result is byte-identical at any jobs/batch."""

    @pytest.mark.parametrize("jobs,batch", [(1, 1), (1, 8), (2, 1),
                                            (2, 8)])
    def test_jobs_and_batch_invariance(self, jobs, batch):
        reference = make_campaign(target_margin=0.05,
                                  collect_records=True)
        ref_result = reference.run()
        campaign = make_campaign(target_margin=0.05, jobs=jobs,
                                 batch=batch, collect_records=True)
        result = campaign.run()
        assert result.to_dict() == ref_result.to_dict()
        assert [d.to_dict() for d in campaign.adaptive_result.decisions] \
            == [d.to_dict()
                for d in reference.adaptive_result.decisions]

    def test_pool_failure_falls_back_to_serial(self, monkeypatch):
        import repro.runtime.executor as executor

        monkeypatch.setattr(
            executor.SpanPool, "__enter__",
            lambda self: (_ for _ in ()).throw(
                executor._PoolUnavailable("forced")),
        )
        reference = make_campaign(target_margin=0.05)
        ref_result = reference.run()
        campaign = make_campaign(target_margin=0.05, jobs=4)
        result = campaign.run()
        assert result.to_dict() == ref_result.to_dict()


class TestStratifiedEstimate:
    def make_stratified(self, **kwargs):
        app = create_app("A-Laplacian", scale="small")
        manager_memory = app.fresh_memory()
        from repro.core.manager import ReliabilityManager

        manager = ReliabilityManager(app)
        selection = stratify_by_object(
            manager.profile.block_reads, manager_memory.objects)
        return Campaign(
            app, selection,
            config=CampaignConfig(runs=64, seed=7),
            collect_records=True, **kwargs,
        ), selection

    def test_recombines_per_stratum_tallies(self):
        campaign, selection = self.make_stratified()
        result = campaign.run()
        interval = stratified_estimate(result, selection)
        assert 0.0 <= interval.low <= interval.high <= 1.0
        assert interval.runs == result.n_runs
        assert interval.margin > 0

    def test_rejects_flat_selections_and_missing_records(self):
        campaign = make_campaign(runs=4, collect_records=True)
        result = campaign.run()
        with pytest.raises(SpecError):
            stratified_estimate(result, campaign.selection)
        stratified, selection = self.make_stratified()
        bare = Campaign(
            stratified.app, selection,
            config=CampaignConfig(runs=4, seed=7),
        ).run()
        with pytest.raises(SpecError):
            stratified_estimate(bare, selection)


class TestDecisionRecords:
    def test_round_trip_through_jsonl(self, tmp_path):
        from repro.obs.records import read_decisions, write_decisions

        campaign = make_campaign(target_margin=0.05, batch=16)
        campaign.run()
        path = tmp_path / "decisions.jsonl"
        n = write_decisions(str(path), campaign.adaptive_result.decisions)
        loaded = read_decisions(str(path))
        assert n == len(loaded) \
            == len(campaign.adaptive_result.decisions)
        for decision, image in zip(campaign.adaptive_result.decisions,
                                   loaded):
            expected = {"version": 1}
            expected.update(decision.to_dict())
            assert image == expected

    def test_malformed_decisions_rejected(self, tmp_path):
        from repro.errors import TelemetryError
        from repro.obs.records import read_decisions

        path = tmp_path / "bad.jsonl"
        path.write_text('{"version":1,"committed":0,"sdc":0,'
                        '"stop":false,"interval":{}}\n')
        with pytest.raises(TelemetryError):
            read_decisions(str(path))

    def test_decision_to_dict_embeds_interval_bounds(self):
        interval = confidence_interval(1, 64)
        decision = StopDecision(committed=64, sdc=1, interval=interval,
                                stop=False)
        image = decision.to_dict()
        assert image["interval"]["low"] == interval.low
        assert image["interval"]["high"] == interval.high
