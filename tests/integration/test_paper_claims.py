"""Shape tests against the paper's headline claims.

These run at default scale (the contrasts need headroom) and check
directions and rough magnitudes, not absolute numbers — see
EXPERIMENTS.md for the full paper-vs-measured record.
"""

import numpy as np
import pytest

from repro.analysis.figures import fig3_series, fig4_series
from repro.faults.outcomes import Outcome


class TestObservation1:
    """A small number of blocks absorbs a very high number of reads."""

    def test_bicg_top_blocks_dominate(self, bicg_manager):
        series = fig3_series(bicg_manager)
        assert series.max_min_ratio > 8
        assert series.tail_share(0.01) > 0.04

    def test_laplacian_extreme_concentration(self, laplacian_manager):
        series = fig3_series(laplacian_manager)
        assert series.max_min_ratio > 50
        # 3 blocks of ~290 absorb nearly half of all accesses.
        assert series.tail_share(0.02) > 0.4


class TestObservation2:
    """Hot blocks are shared across (nearly) all active warps."""

    def test_bicg_hot_fully_shared(self, bicg_manager):
        series = fig4_series(bicg_manager)
        assert series.hot_mean_share > 95.0
        assert series.rest_mean_share < 25.0

    def test_cnn_hot_highly_but_not_fully_shared(self, cnn_manager):
        """The paper singles out C-NN (Fig 4(c)): the most-accessed
        blocks are shared by many warps — but, unlike P-BICG, not by
        all of them."""
        import numpy as np

        from repro.profiling.warp_sharing import warp_sharing_curve

        curve = warp_sharing_curve(cnn_manager.profile)
        top = curve[-5:].mean()  # the Layer1_Weights blocks
        assert 10.0 < top < 95.0
        assert top > 10 * np.median(curve)


class TestObservation3:
    """Faults in hot blocks are far more likely to end badly."""

    @pytest.mark.parametrize("fixture_name",
                             ["bicg_manager", "laplacian_manager"])
    def test_hot_vs_rest_vulnerability(self, fixture_name, request):
        manager = request.getfixturevalue(fixture_name)
        hot = manager.motivation("hot", runs=40, n_bits=3)
        rest = manager.motivation("rest", runs=40, n_bits=3)
        bad_hot = hot.sdc_count + hot.count(Outcome.CRASH)
        bad_rest = rest.sdc_count + rest.count(Outcome.CRASH)
        assert bad_hot >= 3 * max(bad_rest, 1)

    def test_more_bits_more_sdc(self, bicg_manager):
        counts = [
            bicg_manager.motivation("hot", runs=40, n_bits=b).sdc_count
            for b in (2, 4)
        ]
        assert counts[1] >= counts[0]

    def test_more_blocks_more_sdc(self, bicg_manager):
        one = bicg_manager.motivation("hot", runs=40, n_blocks=1,
                                      n_bits=2)
        five = bicg_manager.motivation("hot", runs=40, n_blocks=5,
                                       n_bits=2)
        assert five.sdc_count >= one.sdc_count


class TestObservation4:
    """Hot objects: tiny footprint, identifiable offline."""

    def test_footprints_under_paper_bound(self, bicg_manager,
                                          laplacian_manager,
                                          cnn_manager):
        # The paper's worst case is C-NN at 2.15% (batch-dependent);
        # all stay far below 10%.
        for manager in (bicg_manager, laplacian_manager, cnn_manager):
            assert manager.table3().hot_footprint_pct < 10.0

    def test_offline_discovery_works(self, bicg_manager):
        assert bicg_manager.discover_hot_objects().matches_declaration


class TestHeadlineResults:
    """The abstract's numbers: ~99% SDC drop at ~1-3% slowdown."""

    def test_sdc_drop_with_hot_protection(self, laplacian_manager):
        m = laplacian_manager
        base = m.evaluate(scheme="baseline", protect="none", runs=60,
                          n_bits=3)
        corr = m.evaluate(scheme="correction", protect="hot", runs=60,
                          n_bits=3)
        bad_base = base.sdc_count + base.count(Outcome.CRASH)
        bad_corr = corr.sdc_count + corr.count(Outcome.CRASH)
        assert bad_base >= 10
        drop = 100.0 * (bad_base - bad_corr) / bad_base
        assert drop > 90.0

    def test_hot_protection_overhead_is_small(self, bicg_manager):
        base = bicg_manager.simulate_performance("baseline", "none")
        det = bicg_manager.simulate_performance("detection", "hot")
        corr = bicg_manager.simulate_performance("correction", "hot")
        # Paper: 1.2% / 3.4% average; individual apps jitter around 0.
        assert det.slowdown_vs(base) < 1.10
        assert corr.slowdown_vs(base) < 1.10

    def test_full_protection_overhead_is_large(self, bicg_manager):
        base = bicg_manager.simulate_performance("baseline", "none")
        det = bicg_manager.simulate_performance("detection", "all")
        corr = bicg_manager.simulate_performance("correction", "all")
        # Paper: 40.65% / 74.24% average across apps.
        assert det.slowdown_vs(base) > 1.15
        assert corr.slowdown_vs(base) > det.slowdown_vs(base)

    def test_missed_accesses_scale_with_replication(self, bicg_manager):
        base = bicg_manager.simulate_performance("baseline", "none")
        det = bicg_manager.simulate_performance("detection", "all")
        corr = bicg_manager.simulate_performance("correction", "all")
        assert 1.5 < det.missed_accesses_vs(base) < 2.2
        assert 2.5 < corr.missed_accesses_vs(base) < 4.0
