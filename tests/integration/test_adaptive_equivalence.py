"""A/B equivalence: adaptive campaigns vs exhaustive fixed budgets.

The adaptive driver (CI-driven early stopping + analytic equivalence
pruning) is only admissible if it changes *cost*, never *statistics*:
the committed prefix is byte-identical to the same prefix of the
exhaustive campaign, and the early-stopped estimate must agree with
the exhaustive answer within its own confidence interval.  These
tests pin both properties on two seed apps, including configurations
with nonzero SDC rates so the agreement checks are not vacuous.
"""

import pytest

from repro.core.manager import ReliabilityManager
from repro.kernels.registry import create_app

BUDGET = 1000
TARGET = 0.03


def manager_for(app_name):
    return ReliabilityManager(create_app(app_name, scale="small"))


class TestAdaptiveMatchesExhaustive:
    """The acceptance bar: +/-3% margin, >=10x fewer simulated runs."""

    @pytest.mark.parametrize("app_name", ["P-BICG", "A-Laplacian"])
    def test_protected_evaluation(self, app_name):
        manager = manager_for(app_name)
        adaptive = manager.evaluate_adaptive(
            target_margin=TARGET, scheme="correction", protect="hot",
            runs=BUDGET, batch=64)
        exhaustive = manager.evaluate(
            scheme="correction", protect="hot", runs=BUDGET, batch=64)

        assert adaptive.converged
        assert adaptive.interval.margin <= TARGET
        # the headline cost win: >=10x fewer *simulated* runs than the
        # paper's fixed-1000 protocol (analytic lanes are free)
        assert adaptive.simulated_runs * 10 <= BUDGET
        # statistical identity: each estimate inside the other's CI
        exhaustive_ci = exhaustive.sdc_interval()
        assert exhaustive_ci.low <= adaptive.interval.proportion \
            <= exhaustive_ci.high
        assert adaptive.interval.low <= exhaustive.sdc_rate \
            <= adaptive.interval.high

    @pytest.mark.parametrize("app_name,scheme,protect", [
        ("P-BICG", "detection", 1),
        ("A-Laplacian", "baseline", "none"),
    ])
    def test_nonzero_sdc_configurations(self, app_name, scheme,
                                        protect):
        # Unprotected / partially protected arms have real SDC rates,
        # so agreement here is a live check, not 0 == 0.
        manager = manager_for(app_name)
        adaptive = manager.evaluate_adaptive(
            target_margin=TARGET, scheme=scheme, protect=protect,
            runs=BUDGET, batch=64)
        exhaustive = manager.evaluate(
            scheme=scheme, protect=protect, runs=BUDGET, batch=64)

        assert adaptive.converged
        assert exhaustive.sdc_count > 0
        assert adaptive.result.sdc_count > 0
        exhaustive_ci = exhaustive.sdc_interval()
        assert exhaustive_ci.low <= adaptive.interval.proportion \
            <= exhaustive_ci.high
        assert adaptive.interval.low <= exhaustive.sdc_rate \
            <= adaptive.interval.high

    def test_committed_prefix_is_the_exhaustive_prefix(self):
        # Early stopping truncates, never resamples: the committed
        # runs are byte-identical to the first stopped_at runs of the
        # exhaustive campaign.
        manager = manager_for("P-BICG")
        adaptive = manager.evaluate_adaptive(
            target_margin=TARGET, scheme="correction", protect="hot",
            runs=BUDGET, batch=64)
        prefix = manager.evaluate(
            scheme="correction", protect="hot",
            runs=adaptive.stopped_at, batch=64)
        committed, reference = (adaptive.result.to_dict(),
                                prefix.to_dict())
        # the specs differ only in how many runs they *budgeted*
        assert committed["config"].pop("runs") == BUDGET
        assert reference["config"].pop("runs") == adaptive.stopped_at
        assert committed == reference


class TestStopReproducibility:
    def test_stop_decisions_are_execution_plan_invariant(self):
        manager = manager_for("A-Laplacian")
        trails = []
        for jobs, batch in ((1, 64), (2, 16)):
            adaptive = manager.evaluate_adaptive(
                target_margin=TARGET, scheme="correction",
                protect="hot", runs=BUDGET, jobs=jobs, batch=batch)
            trails.append((
                adaptive.result.to_dict(),
                [d.to_dict() for d in adaptive.decisions],
            ))
        assert trails[0] == trails[1]
