"""End-to-end sweep guarantees: byte-identity across parallelism,
worker failures, and interrupt/resume cycles.

The contract under test: a sweep's merged results and telemetry are a
pure function of its :class:`SweepSpec` — the same bytes at any
``jobs`` setting, after any number of worker crashes within the retry
budget, and across any interrupt/resume split.
"""

import multiprocessing as mp
import os
import time

import pytest

import repro.runtime.session as session_mod
from repro.errors import SessionInterrupted
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.session import Session, SessionConfig, SweepSpec
from repro.utils.canonical import canonical_json

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="worker tests pin the fork start method",
)

SPEC = SweepSpec(
    apps=("A-Laplacian",),
    schemes=("baseline", "correction"),
    protects=("hot",),
    runs=6,
    chunk_runs=3,
    scale="small",
    seed=77,
)


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted serial sweep every variant must reproduce."""
    sweep = Session(SPEC).run()
    return canonical_json(sweep.to_dict())


def telemetry_bytes(sweep, path) -> bytes:
    sweep.write_telemetry(str(path))
    return path.read_bytes()


def pool_config(**overrides) -> SessionConfig:
    kwargs = dict(jobs=4, start_method="fork")
    kwargs.update(overrides)
    return SessionConfig(**kwargs)


@pytest.fixture()
def chaos(monkeypatch):
    """Install a worker-side chaos hook (inherited by forked workers)."""
    def install(hook):
        monkeypatch.setattr(session_mod, "_chaos_hook", hook)
    yield install


def fail_once(marker: str, exc_factory):
    """A hook that misbehaves exactly once across all workers."""
    def hook(_token, _span):
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        raise exc_factory()
    return hook


@needs_fork
class TestParallelIdentity:
    def test_jobs_4_matches_serial(self, reference, tmp_path):
        sweep = Session(SPEC, config=pool_config()).run()
        assert canonical_json(sweep.to_dict()) == reference

    def test_telemetry_identical_across_jobs(self, tmp_path):
        serial = Session(SPEC).run()
        parallel = Session(SPEC, config=pool_config()).run()
        assert telemetry_bytes(serial, tmp_path / "serial.jsonl") \
            == telemetry_bytes(parallel, tmp_path / "parallel.jsonl")


@needs_fork
class TestWorkerFailures:
    def test_worker_exception_is_retried(self, reference, tmp_path,
                                         chaos):
        chaos(fail_once(str(tmp_path / "marker"),
                        lambda: RuntimeError("injected worker fault")))
        session = Session(SPEC, config=pool_config(),
                          sleep=lambda _s: None)
        sweep = session.run()
        assert canonical_json(sweep.to_dict()) == reference
        counters = session.metrics.snapshot()["counters"]
        assert counters["session.retries"] == 1

    def test_worker_death_restarts_pool(self, reference, tmp_path,
                                        chaos):
        def die():
            os._exit(13)

        chaos(fail_once(str(tmp_path / "marker"), die))
        session = Session(SPEC, config=pool_config(),
                          sleep=lambda _s: None)
        sweep = session.run()
        assert canonical_json(sweep.to_dict()) == reference
        counters = session.metrics.snapshot()["counters"]
        assert counters["session.pool_restarts"] >= 1

    def test_chunk_timeout_reruns_elsewhere(self, reference, tmp_path,
                                            chaos):
        def hook(_token, _span):
            try:
                fd = os.open(str(tmp_path / "marker"),
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return
            os.close(fd)
            time.sleep(3.0)

        chaos(hook)
        session = Session(
            SPEC, config=pool_config(chunk_timeout_s=1.0),
            sleep=lambda _s: None,
        )
        sweep = session.run()
        assert canonical_json(sweep.to_dict()) == reference
        counters = session.metrics.snapshot()["counters"]
        assert counters["session.timeouts"] >= 1


class TestInterruptResume:
    @pytest.mark.parametrize("resume_jobs", [
        1,
        pytest.param(4, marks=needs_fork),
    ])
    def test_budget_stop_then_resume(self, reference, tmp_path,
                                     resume_jobs):
        store = tmp_path / "ckpt"
        first = Session(SPEC, store=store,
                        config=SessionConfig(stop_after_chunks=2))
        with pytest.raises(SessionInterrupted) as info:
            first.run()
        assert info.value.done == 2
        assert info.value.total == 4

        config = SessionConfig(jobs=resume_jobs,
                               start_method="fork"
                               if resume_jobs > 1 else None)
        resumed = Session(SPEC, store=store, config=config)
        sweep = resumed.run(resume=True)
        assert canonical_json(sweep.to_dict()) == reference
        counters = resumed.metrics.snapshot()["counters"]
        assert counters["session.chunks.resumed"] == 2
        assert counters["session.chunks.executed"] == 2

    def test_sigint_mid_sweep_then_resume(self, reference, tmp_path,
                                          monkeypatch):
        store = CheckpointStore(tmp_path / "ckpt")
        saves = []
        real = CheckpointStore.save_chunk

        def interrupted_save(self, cell, start, stop, payload):
            if len(saves) == 2:
                raise KeyboardInterrupt
            saves.append((start, stop))
            return real(self, cell, start, stop, payload)

        monkeypatch.setattr(CheckpointStore, "save_chunk",
                            interrupted_save)
        with pytest.raises(SessionInterrupted) as info:
            Session(SPEC, store=store).run()
        assert info.value.reason == "interrupted"
        monkeypatch.setattr(CheckpointStore, "save_chunk", real)

        sweep = Session(SPEC, store=store).run(resume=True)
        assert canonical_json(sweep.to_dict()) == reference

    def test_telemetry_identical_after_resume(self, tmp_path):
        uninterrupted = Session(SPEC).run()
        store = tmp_path / "ckpt"
        with pytest.raises(SessionInterrupted):
            Session(SPEC, store=store,
                    config=SessionConfig(stop_after_chunks=3)).run()
        resumed = Session(SPEC, store=store).run(resume=True)
        assert telemetry_bytes(uninterrupted, tmp_path / "a.jsonl") \
            == telemetry_bytes(resumed, tmp_path / "b.jsonl")
