"""End-to-end pipeline tests on small-scale applications."""

import pytest

from repro.core.manager import ReliabilityManager
from repro.faults.outcomes import Outcome
from repro.kernels.registry import APPLICATIONS, create_app

RUNS = 25


@pytest.mark.parametrize("name", list(APPLICATIONS))
def test_full_pipeline_runs_for_every_app(name):
    """Profile -> discover -> protect -> campaign, for all 8 apps."""
    manager = ReliabilityManager(create_app(name, scale="small"))
    assert manager.profile.total_reads > 0
    assert manager.table3().hot_footprint_pct < 15.0
    result = manager.evaluate(
        scheme="correction", protect="hot", runs=10, n_bits=2)
    assert result.n_runs == 10


@pytest.mark.parametrize("name", ["A-Laplacian", "A-Sobel", "P-BICG"])
def test_schemes_eliminate_hot_fault_damage(name):
    """Faults placed in hot blocks: baseline suffers, detection
    terminates, correction repairs."""
    manager = ReliabilityManager(create_app(name, scale="small"))
    base = manager.evaluate(scheme="baseline", protect="none",
                            runs=RUNS, selection="hot")
    det = manager.evaluate(scheme="detection", protect="hot",
                           runs=RUNS, selection="hot")
    corr = manager.evaluate(scheme="correction", protect="hot",
                            runs=RUNS, selection="hot")

    bad_base = base.sdc_count + base.count(Outcome.CRASH)
    assert bad_base > 0, "baseline must be vulnerable in hot blocks"

    assert det.sdc_count == 0
    assert det.count(Outcome.CRASH) == 0
    assert det.count(Outcome.DETECTED) > 0

    assert corr.sdc_count == 0
    assert corr.count(Outcome.CRASH) == 0
    assert corr.count(Outcome.CORRECTED) > 0
    # Correction completes the run instead of terminating it.
    assert corr.count(Outcome.DETECTED) == 0


def test_detection_and_correction_agree_on_fault_sites():
    """Same seeds => same fault sites: every run detection flags is a
    run correction repairs (or both mask)."""
    manager = ReliabilityManager(create_app("A-Laplacian",
                                            scale="small"))
    det = manager.evaluate(scheme="detection", protect="hot",
                           runs=RUNS, selection="hot", keep_runs=True)
    corr = manager.evaluate(scheme="correction", protect="hot",
                            runs=RUNS, selection="hot", keep_runs=True)
    for d_run, c_run in zip(det.runs, corr.runs):
        if d_run.outcome is Outcome.DETECTED:
            assert c_run.outcome is Outcome.CORRECTED
        else:
            assert d_run.outcome is Outcome.MASKED
            assert c_run.outcome is Outcome.MASKED


def test_protection_level_sweep_is_monotone_in_coverage():
    """More protected objects can only widen the detected/corrected
    set under identical fault sites."""
    manager = ReliabilityManager(create_app("A-Laplacian",
                                            scale="small"))
    protected_counts = []
    for level in range(5):
        result = manager.evaluate(
            scheme="correction", protect=level, runs=RUNS,
            selection="uniform",
        )
        protected_counts.append(result.count(Outcome.CORRECTED))
    assert protected_counts[0] == 0
    for earlier, later in zip(protected_counts, protected_counts[1:]):
        assert later >= earlier


def test_timing_and_reliability_share_protection_semantics():
    manager = ReliabilityManager(create_app("P-MVT", scale="small"))
    report = manager.simulate_performance("correction", "hot")
    assert set(report.protected_names) == {"y1", "y2"}
    campaign = manager.evaluate(scheme="correction", protect="hot",
                                runs=5)
    assert campaign.scheme_name == "correction"
