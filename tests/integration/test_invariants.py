"""Property/fuzz tests on cross-cutting invariants.

These exercise the contracts the whole reproduction rests on:

* correction always returns pristine data when at most one copy of
  any block is corrupted;
* detection either raises or returns pristine data — never silently
  wrong data;
* the timing simulator terminates and satisfies basic accounting on
  arbitrary (randomly generated) traces.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.arch.config import fast_config
from repro.core.schemes import CorrectionScheme, DetectionScheme
from repro.errors import FaultDetected
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)
from repro.sim.simulator import simulate_trace

# ----------------------------------------------------------------------
# Scheme invariants
# ----------------------------------------------------------------------
fault_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # byte offset
        st.integers(min_value=0, max_value=7),    # bit
        st.integers(min_value=0, max_value=1),    # stuck level
    ),
    min_size=1,
    max_size=6,
)


def _protected_memory():
    memory = DeviceMemory(1024 * 1024)
    obj = memory.alloc("hot", (64,), np.float32)
    memory.write_object(
        obj, np.linspace(-1.0, 1.0, 64).astype(np.float32))
    return memory, obj


@settings(max_examples=50)
@given(fault_strategy)
def test_correction_always_returns_pristine(faults):
    """Any number of stuck bits confined to the primary copy is
    outvoted: the scheme's read equals the pristine data, always."""
    memory, obj = _protected_memory()
    scheme = CorrectionScheme(memory, [obj])
    for offset, bit, value in faults:
        memory.inject_stuck_at(obj.base_addr + offset, bit, value)
    np.testing.assert_array_equal(
        scheme.read(obj), memory.read_pristine(obj))


@settings(max_examples=50)
@given(fault_strategy)
def test_detection_never_returns_silently_wrong_data(faults):
    """Detection's contract: the returned data is pristine, or the
    read raises — there is no third outcome."""
    memory, obj = _protected_memory()
    scheme = DetectionScheme(memory, [obj])
    for offset, bit, value in faults:
        memory.inject_stuck_at(obj.base_addr + offset, bit, value)
    try:
        data = scheme.read(obj)
    except FaultDetected:
        return
    np.testing.assert_array_equal(data, memory.read_pristine(obj))


@settings(max_examples=30)
@given(fault_strategy, fault_strategy)
def test_correction_with_one_faulty_replica_still_pristine(
    primary_faults, replica_faults
):
    """Faults split across the primary and ONE replica at *distinct
    bit positions*: every bit still has two clean copies, so the vote
    holds.  (The same bit corrupted in two copies defeats the vote —
    the documented limit, which distinct DRAM placements make
    vanishingly unlikely; see test_replication's two-corrupt-copies
    case.)"""
    memory, obj = _protected_memory()
    scheme = CorrectionScheme(memory, [obj])
    replica = scheme.replica_sets["hot"].replicas[0]
    primary_sites = {(offset, bit) for offset, bit, _v in primary_faults}
    for offset, bit, value in primary_faults:
        memory.inject_stuck_at(obj.base_addr + offset, bit, value)
    for offset, bit, value in replica_faults:
        if (offset, bit) in primary_sites:
            continue  # same cell in two copies: out of contract
        memory.inject_stuck_at(replica.base_addr + offset, bit, value)
    np.testing.assert_array_equal(
        scheme.read(obj), memory.read_pristine(obj))


# ----------------------------------------------------------------------
# Simulator fuzzing
# ----------------------------------------------------------------------
def _random_trace(draw_lists):
    """Build an AppTrace from hypothesis-drawn instruction sketches."""
    kernels = []
    warp_id = 0
    for k, cta_sketches in enumerate(draw_lists):
        kernel = KernelTrace(f"k{k}")
        for c, warp_sketches in enumerate(cta_sketches):
            cta = CtaTrace(c)
            for insts_sketch in warp_sketches:
                insts = []
                for kind, a, b in insts_sketch:
                    if kind == 0:
                        insts.append(Compute(1 + a % 8, wait=bool(b % 2)))
                    elif kind == 1:
                        addrs = tuple(
                            ((a + i * (b + 1)) % 512) * BLOCK_BYTES
                            for i in range(1 + b % 4)
                        )
                        insts.append(Load("obj", tuple(sorted(set(addrs)))))
                    else:
                        insts.append(
                            Store("obj", ((a % 512) * BLOCK_BYTES,)))
                if insts:
                    kernel_warp = WarpTrace(warp_id, insts)
                    cta.warps.append(kernel_warp)
                    warp_id += 1
            if cta.warps:
                kernel.ctas.append(cta)
        if kernel.ctas:
            kernels.append(kernel)
    return AppTrace("fuzz", kernels) if kernels else None


inst_sketch = st.tuples(
    st.integers(min_value=0, max_value=2),
    st.integers(min_value=0, max_value=511),
    st.integers(min_value=0, max_value=7),
)
warp_sketch = st.lists(inst_sketch, min_size=1, max_size=12)
cta_sketch = st.lists(warp_sketch, min_size=1, max_size=4)
kernel_sketch = st.lists(cta_sketch, min_size=1, max_size=3)
trace_sketch = st.lists(kernel_sketch, min_size=1, max_size=2)


@settings(max_examples=40, deadline=None)
@given(trace_sketch)
def test_simulator_terminates_and_accounts_on_random_traces(sketch):
    trace = _random_trace(sketch)
    if trace is None:
        return
    trace.validate()
    report = simulate_trace(trace, fast_config())

    expected_insts = 0
    expected_stores = 0
    for kernel in trace.kernels:
        for warp in kernel.iter_warps():
            for inst in warp.insts:
                if isinstance(inst, Compute):
                    expected_insts += inst.count
                elif isinstance(inst, Load):
                    expected_insts += len(inst.addrs)
                else:
                    expected_insts += len(inst.addrs)
                    expected_stores += len(inst.addrs)

    assert report.instructions == expected_insts
    assert report.store_transactions == expected_stores
    assert report.cycles >= 0
    assert report.l1_hits + (report.l1_accesses - report.l1_hits) \
        == report.l1_accesses
    assert report.demand_misses <= report.l1_accesses
    # Every demand miss produced exactly one L2 access; stores add
    # their write-through traffic.
    assert report.l2_accesses == \
        report.demand_misses + report.store_transactions


@settings(max_examples=20, deadline=None)
@given(trace_sketch)
def test_simulator_is_deterministic_on_random_traces(sketch):
    trace = _random_trace(sketch)
    if trace is None:
        return
    first = simulate_trace(trace, fast_config())
    second = simulate_trace(trace, fast_config())
    assert first.cycles == second.cycles
    assert first.demand_misses == second.demand_misses
