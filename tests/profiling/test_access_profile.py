"""Tests for per-block access profiling (Fig 3 machinery)."""

import numpy as np
import pytest

from repro.profiling.access_profile import profile_trace


class TestProfileBasics:
    def test_total_reads_matches_trace(self, small_bicg_manager):
        m = small_bicg_manager
        assert m.profile.total_reads == \
            m.trace.total_load_transactions

    def test_every_read_block_has_an_owner(self, small_bicg_manager):
        p = small_bicg_manager.profile
        for addr in p.block_reads:
            assert addr in p.block_owner

    def test_object_reads_partition_total(self, small_bicg_manager):
        p = small_bicg_manager.profile
        assert sum(p.object_reads.values()) == p.total_reads

    def test_reads_to_unknown_object_is_zero(self, small_bicg_manager):
        assert small_bicg_manager.profile.reads_to("nope") == 0


class TestCurves:
    def test_normalized_curve_sorted_and_max_one(
        self, small_bicg_manager
    ):
        curve = small_bicg_manager.profile.normalized_curve()
        assert curve[-1] == 1.0
        assert (np.diff(curve) >= 0).all()

    def test_sorted_counts_ascending(self, small_bicg_manager):
        counts = [c for _a, c in
                  small_bicg_manager.profile.sorted_counts()]
        assert counts == sorted(counts)

    def test_max_min_ratio_large_at_default_scale(self, bicg_manager):
        # Fig 3(b): r's blocks absorb far more reads than A's.
        assert bicg_manager.profile.max_min_ratio() > 8

    def test_object_share_bicg(self, bicg_manager):
        # Table III: ~5.7% of transactions to r+p.
        share = bicg_manager.profile.object_share(["r", "p"])
        assert 0.05 < share < 0.07


class TestWarpSharing:
    def test_hot_blocks_shared_by_all_warps(self, bicg_manager):
        # Observation II: every warp of kernel 1 reads every r block.
        p = bicg_manager.profile
        r = bicg_manager.memory.object("r")
        for addr in r.block_addrs():
            assert p.warp_share(addr) == pytest.approx(1.0)

    def test_streamed_blocks_shared_by_few(self, bicg_manager):
        p = bicg_manager.profile
        a = bicg_manager.memory.object("A")
        shares = [p.warp_share(addr) for addr in a.block_addrs()]
        assert np.mean(shares) < 0.2

    def test_unread_block_share_zero(self, small_bicg_manager):
        assert small_bicg_manager.profile.warp_share(0xDEAD00) == 0.0


class TestValidation:
    def test_trace_outside_allocations_rejected(self, memory):
        import numpy as np

        from repro.kernels.trace import (
            AppTrace, CtaTrace, KernelTrace, Load, WarpTrace,
        )

        memory.alloc("x", (4,), np.float32)
        rogue = AppTrace("rogue", [KernelTrace("k", [CtaTrace(0, [
            WarpTrace(0, [Load("x", (1 << 20,))])
        ])])])
        with pytest.raises(ValueError):
            profile_trace(rogue, memory)
