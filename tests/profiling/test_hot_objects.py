"""Tests for object ranking and Table III statistics."""

import pytest

from repro.profiling.hot_blocks import classify_hot_blocks
from repro.profiling.hot_objects import (
    discover_hot_objects,
    rank_objects,
    table3_row,
)


class TestRanking:
    def test_read_only_inputs_only_by_default(self, small_bicg_manager):
        m = small_bicg_manager
        names = {s.name for s in rank_objects(m.profile, m.memory)}
        assert names == {"A", "r", "p"}

    def test_intensity_order_puts_hot_first(self, bicg_manager):
        m = bicg_manager
        ranked = rank_objects(m.profile, m.memory)
        assert {ranked[0].name, ranked[1].name} == {"r", "p"}
        assert ranked[2].name == "A"

    def test_include_writable(self, small_bicg_manager):
        m = small_bicg_manager
        names = {
            s.name
            for s in rank_objects(m.profile, m.memory,
                                  read_only_inputs=False)
        }
        assert "s" in names and "q" in names

    def test_reads_per_block(self, bicg_manager):
        m = bicg_manager
        stats = {s.name: s for s in rank_objects(m.profile, m.memory)}
        assert stats["r"].reads_per_block > 8 * stats["A"].reads_per_block


class TestDiscovery:
    @pytest.mark.parametrize(
        "fixture_name",
        ["bicg_manager", "laplacian_manager", "srad_manager",
         "cnn_manager"],
    )
    def test_discovery_matches_declared(self, fixture_name, request):
        manager = request.getfixturevalue(fixture_name)
        result = manager.discover_hot_objects()
        assert result.matches_declaration, (
            manager.app.name, result.hot_objects)

    def test_discovery_function_direct(self, laplacian_manager):
        m = laplacian_manager
        cls = classify_hot_blocks(m.profile)
        hot = discover_hot_objects(m.profile, m.memory, cls)
        assert set(hot) == m.app.hot_object_names


class TestTable3:
    def test_bicg_row(self, bicg_manager):
        row = table3_row(
            bicg_manager.app, bicg_manager.profile, bicg_manager.memory)
        assert row.objects_by_importance == ["p", "r", "A"]
        assert row.hot_objects == ["p", "r"]
        # Paper: 5.7% of accesses; footprint shrinks with N (2/N).
        assert 5.0 < row.hot_access_pct < 7.0
        assert row.hot_footprint_pct < 2.0

    def test_laplacian_row(self, laplacian_manager):
        row = table3_row(
            laplacian_manager.app, laplacian_manager.profile,
            laplacian_manager.memory)
        assert row.hot_objects == [
            "Filter", "Filter_Height", "Filter_Width"]
        assert row.hot_access_pct > 55.0  # paper: 73%
        assert row.hot_footprint_pct < 1.0

    def test_footprint_small_for_all_apps(self, cnn_manager,
                                          srad_manager, mvt_manager):
        for manager in (cnn_manager, srad_manager, mvt_manager):
            row = manager.table3()
            assert row.hot_footprint_pct < 10.0, manager.app.name
