"""Tests for hot-block classification."""

import pytest

from repro.profiling.access_profile import AccessProfile
from repro.profiling.hot_blocks import classify_hot_blocks


def synthetic_profile(counts: dict[int, int]) -> AccessProfile:
    return AccessProfile(
        app_name="synthetic",
        block_reads=dict(counts),
        object_reads={"obj": sum(counts.values())},
        block_owner={a: "obj" for a in counts},
        kernel_block_warps={"k": {a: 1 for a in counts}},
        kernel_warps={"k": 1},
    )


class TestClassification:
    def test_clear_outliers_are_hot(self):
        counts = {i * 128: 10 for i in range(100)}
        counts[100 * 128] = 10_000
        counts[101 * 128] = 9_000
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert cls.hot_addrs == {100 * 128, 101 * 128}

    def test_uniform_profile_has_no_hot_blocks(self):
        counts = {i * 128: 50 for i in range(64)}
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert not cls.has_hot_blocks
        assert len(cls.rest_addrs) == 64

    def test_linear_ramp_has_no_hot_blocks(self):
        # The P-GRAMSCHM shape: counts grow in small steps.
        counts = {i * 128: i + 1 for i in range(200)}
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert not cls.has_hot_blocks

    def test_mid_slope_excluded_by_max_criterion(self):
        # Bulk at 1, a moderately reused band at 9x median, and a
        # dominant block: only the dominant one is hot.
        counts = {i * 128: 1 for i in range(100)}
        for i in range(100, 110):
            counts[i * 128] = 9
        counts[110 * 128] = 1000
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert cls.hot_addrs == {110 * 128}

    def test_empty_profile(self):
        cls = classify_hot_blocks(synthetic_profile({}))
        assert not cls.has_hot_blocks

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            classify_hot_blocks(synthetic_profile({0: 1}),
                                hot_factor=1.0)


class TestDerivedStats:
    def test_partition_is_complete(self):
        counts = {i * 128: (1000 if i == 0 else 1) for i in range(50)}
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert cls.hot_addrs | cls.rest_addrs == set(counts)
        assert not cls.hot_addrs & cls.rest_addrs

    def test_hot_access_share(self):
        counts = {0: 900, 128: 50, 256: 50}
        profile = synthetic_profile(counts)
        cls = classify_hot_blocks(profile)
        assert cls.hot_access_share(profile) == pytest.approx(0.9)

    def test_hot_fraction_of_blocks(self):
        counts = {i * 128: 1 for i in range(99)}
        counts[99 * 128] = 10_000
        cls = classify_hot_blocks(synthetic_profile(counts))
        assert cls.hot_fraction_of_blocks == pytest.approx(0.01)


class TestOnRealApps:
    def test_bicg_hot_blocks_are_r_and_p(self, bicg_manager):
        owners = {
            bicg_manager.profile.block_owner[a]
            for a in bicg_manager.hot_blocks.hot_addrs
        }
        assert owners == {"r", "p"}

    def test_laplacian_hot_blocks_tiny_footprint(
        self, laplacian_manager
    ):
        cls = laplacian_manager.hot_blocks
        assert cls.has_hot_blocks
        assert cls.hot_fraction_of_blocks < 0.05
        # ...yet they absorb most accesses (Observation I).
        assert cls.hot_access_share(laplacian_manager.profile) > 0.5
