"""Tests for warp sharing, temporal locality, L1-miss profiling, and
the instrumentation API."""

import numpy as np
import pytest

from repro.arch.config import fast_config
from repro.kernels.trace import Load
from repro.profiling.instrument import MemoryTracer, discover
from repro.profiling.miss_profile import (
    l1_miss_profile,
    object_miss_counts,
)
from repro.profiling.temporal import summarize_gaps, temporal_locality
from repro.profiling.warp_sharing import (
    hot_vs_rest_sharing,
    warp_sharing_curve,
)


class TestWarpSharing:
    def test_curve_length_matches_blocks(self, small_bicg_manager):
        curve = warp_sharing_curve(small_bicg_manager.profile)
        assert len(curve) == small_bicg_manager.profile.n_blocks

    def test_highly_accessed_blocks_highly_shared(self, bicg_manager):
        """Figure 4(a): the right end of the curve (most-accessed
        blocks) is shared by ~100% of warps."""
        curve = warp_sharing_curve(bicg_manager.profile)
        assert curve[-8:].min() > 95.0
        assert np.mean(curve[: len(curve) // 2]) < 30.0

    def test_hot_vs_rest_summary(self, bicg_manager):
        hot_addrs = {
            a
            for obj in bicg_manager.app.hot_objects(bicg_manager.memory)
            for a in obj.block_addrs()
        }
        hot_mean, rest_mean = hot_vs_rest_sharing(
            bicg_manager.profile, hot_addrs)
        assert hot_mean > 3 * rest_mean  # Observation II


class TestTemporal:
    def test_hot_blocks_have_short_reuse_gaps(self, bicg_manager):
        gaps = temporal_locality(bicg_manager.trace)
        hot = bicg_manager.hot_blocks.hot_addrs
        rest = bicg_manager.hot_blocks.rest_addrs
        hot_stats = summarize_gaps(gaps, hot)
        rest_stats = summarize_gaps(gaps, rest)
        # Observation IV: hot data has much higher temporal locality.
        assert hot_stats.mean_reuse_gap < rest_stats.mean_reuse_gap

    def test_single_access_blocks_have_infinite_gap(self):
        from repro.kernels.registry import create_app

        app = create_app("C-BlackScholes", scale="small")
        memory = app.fresh_memory()
        gaps = temporal_locality(app.build_trace(memory))
        # Every input block is read exactly once: no reuse at all.
        assert all(np.isinf(g) for g in gaps.values())

    def test_summary_of_unreused_blocks(self):
        stats = summarize_gaps({0: float("inf")}, [0])
        assert stats.reuse_count == 0
        assert np.isinf(stats.mean_reuse_gap)


class TestMissProfile:
    def test_every_missed_block_was_accessed(self, small_bicg_manager):
        misses = l1_miss_profile(
            small_bicg_manager.trace, fast_config())
        reads = small_bicg_manager.profile.block_reads
        for addr, count in misses.items():
            assert addr in reads
            assert count <= reads[addr]

    def test_streaming_object_misses_every_access(self, bicg_manager):
        """A is touched once per block per kernel pass: essentially
        every access is a (cold) miss."""
        misses = l1_miss_profile(bicg_manager.trace,
                                 bicg_manager.config)
        per_object = object_miss_counts(
            misses, bicg_manager.profile.block_owner)
        a_reads = bicg_manager.profile.reads_to("A")
        assert per_object["A"] >= 0.8 * a_reads

    def test_hot_object_mostly_hits(self, bicg_manager):
        """r is L1-resident at this scale: misses are a tiny fraction
        of its reads — exactly why hot replication is nearly free."""
        misses = l1_miss_profile(bicg_manager.trace,
                                 bicg_manager.config)
        per_object = object_miss_counts(
            misses, bicg_manager.profile.block_owner)
        r_reads = bicg_manager.profile.reads_to("r")
        assert per_object.get("r", 0) < 0.05 * r_reads


class TestInstrumentation:
    def test_tracer_event_count(self, small_bicg_manager):
        tracer = MemoryTracer()
        events = []
        tracer.register(
            lambda kernel, warp, is_load, obj, addrs:
            events.append((kernel, obj, is_load))
        )
        n = tracer.run(small_bicg_manager.trace)
        assert n == len(events)
        assert any(not is_load for _k, _o, is_load in events)  # stores

    def test_multiple_callbacks_all_fire(self, small_bicg_manager):
        tracer = MemoryTracer()
        counts = [0, 0]
        tracer.register(lambda *a: counts.__setitem__(
            0, counts[0] + 1))
        tracer.register(lambda *a: counts.__setitem__(
            1, counts[1] + 1))
        tracer.run(small_bicg_manager.trace)
        assert counts[0] == counts[1] > 0

    def test_discover_pipeline(self, laplacian_manager):
        result = discover(laplacian_manager.app,
                          laplacian_manager.memory)
        assert result.matches_declaration
        assert result.profile.total_reads > 0
