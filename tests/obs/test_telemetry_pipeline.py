"""End-to-end telemetry: campaign records, executor merge, determinism.

The tentpole guarantee under test: a telemetry file is *byte-identical*
for any worker count, because records capture only deterministic run
facts and the executor merges chunk records back into run-index order.
"""

import pytest

from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.records import TelemetryWriter, read_records
from repro.runtime.cache import cache_info, clear_app_cache


def make_campaign(runs=16, scheme="baseline", protected=(), **kwargs):
    app = create_app("A-Laplacian", scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protected,
        config=CampaignConfig(runs=runs, seed=77),
        collect_records=True,
        **kwargs,
    )


def telemetry_bytes(tmp_path, name, result):
    path = tmp_path / name
    with TelemetryWriter(str(path)) as writer:
        writer.write_result(result)
    return path.read_bytes()


class TestRecordCollection:
    def test_one_record_per_run_in_order(self):
        result = make_campaign(runs=10).run()
        assert len(result.records) == 10
        assert [r.run_index for r in result.records] == list(range(10))

    def test_records_match_outcome_counts(self):
        result = make_campaign(runs=20).run()
        for outcome, n in result.counts.items():
            got = sum(1 for r in result.records
                      if r.outcome == outcome.value)
            assert got == n

    def test_records_off_by_default(self):
        campaign = make_campaign(runs=4)
        campaign.collect_records = False
        assert campaign.run().records == []

    def test_scheme_counters_captured(self):
        result = make_campaign(
            runs=10, scheme="correction",
            protected=("Filter",),
        ).run()
        names = dict(result.records[0].counters)
        assert "corrected_reads" in names


class TestByteIdenticalAcrossJobs:
    @pytest.mark.parametrize("scheme,protected", [
        ("baseline", ()),
        ("correction", ("Filter",)),
    ])
    def test_jobs1_vs_jobs4(self, tmp_path, scheme, protected):
        serial = make_campaign(runs=16, scheme=scheme,
                               protected=protected).run()
        parallel = make_campaign(runs=16, scheme=scheme,
                                 protected=protected, jobs=4).run()
        a = telemetry_bytes(tmp_path, "serial.jsonl", serial)
        b = telemetry_bytes(tmp_path, "parallel.jsonl", parallel)
        assert a == b

    def test_file_is_valid_jsonl(self, tmp_path):
        result = make_campaign(runs=8, jobs=4).run()
        path = tmp_path / "t.jsonl"
        with TelemetryWriter(str(path)) as writer:
            writer.write_result(result)
        loaded = read_records(str(path))
        assert [r["run_index"] for r in loaded] == list(range(8))


class TestMetricsFlow:
    def test_serial_metrics_accumulate(self):
        campaign = make_campaign(runs=6)
        result = campaign.run()
        counters = campaign.metrics.counters
        outcome_total = sum(
            v for k, v in counters.items()
            if k.startswith("campaign.outcome.")
        )
        assert outcome_total == 6
        assert campaign.metrics.histogram("campaign.span_ms").count == 1
        assert result.metrics_snapshot is not None

    def test_parallel_metrics_match_serial_outcomes(self):
        serial = make_campaign(runs=12)
        serial.run()
        parallel = make_campaign(runs=12, jobs=3)
        parallel.run()
        pick = lambda reg: {
            k: v for k, v in reg.counters.items()
            if k.startswith(("campaign.outcome.", "campaign.faults."))
        }
        assert pick(serial.metrics) == pick(parallel.metrics)

    def test_executor_observability_published(self):
        campaign = make_campaign(runs=12, jobs=3)
        campaign.run()
        counters = campaign.metrics.counters
        assert counters["executor.used_jobs"] >= 1
        assert counters["executor.chunks"] >= 1
        assert "runtime.app_cache.entries" in counters
        assert campaign.metrics.histogram("executor.wall_ms").count == 1

    def test_fault_placement_counters(self):
        campaign = make_campaign(runs=8)
        campaign.run()
        placements = {
            k: v for k, v in campaign.metrics.counters.items()
            if k.startswith("campaign.faults.object.")
        }
        assert sum(placements.values()) == 8  # n_blocks=1 per run


class TestAppCacheCounters:
    def test_hits_and_misses_tallied(self):
        clear_app_cache()
        make_campaign(runs=2).run()
        make_campaign(runs=2).run()
        info = cache_info()
        assert info["misses"] >= 1
        assert info["hits"] >= 1
        assert info["entries"] >= 1
