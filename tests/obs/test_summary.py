"""Tests for telemetry summarization (``repro stats``)."""

from repro.faults.model import FaultSpec
from repro.obs.records import RunRecord, TelemetryWriter
from repro.obs.summary import summarize_file, summarize_records


def record(run_index, scheme="baseline", outcome="masked", error=0.0,
           block_addr=4096):
    return RunRecord(
        run_index=run_index,
        seed=run_index * 7,
        app="P-BICG",
        scheme=scheme,
        selection="uniform",
        n_blocks=1,
        n_bits=2,
        outcome=outcome,
        error=error,
        detail="",
        faults=(FaultSpec(block_addr, 0, (1, 2), (1, 0)),),
    )


def write_file(tmp_path, records):
    path = str(tmp_path / "t.jsonl")
    with TelemetryWriter(path) as writer:
        for rec in records:
            writer.write(rec)
    return path


class TestGrouping:
    def test_groups_by_campaign_identity(self, tmp_path):
        path = write_file(tmp_path, [
            record(0, scheme="baseline", outcome="sdc", error=3.0),
            record(1, scheme="baseline"),
            record(0, scheme="correction", outcome="corrected"),
        ])
        summary = summarize_file(path)
        assert summary.n_records == 3
        assert len(summary.groups) == 2
        by_scheme = {g.scheme: g for g in summary.groups}
        assert by_scheme["baseline"].runs == 2
        assert by_scheme["baseline"].sdc_count == 1
        assert by_scheme["correction"].outcome_counts["corrected"] == 1

    def test_error_and_fault_stats(self, tmp_path):
        path = write_file(tmp_path, [
            record(0, outcome="sdc", error=4.0, block_addr=4096),
            record(1, error=2.0, block_addr=8192),
        ])
        group = summarize_file(path).groups[0]
        assert group.mean_error == 3.0
        assert group.error_max == 4.0
        assert group.fault_bits == 4
        assert group.fault_blocks == {4096, 8192}

    def test_sdc_rate_and_interval(self, tmp_path):
        path = write_file(tmp_path, [
            record(i, outcome="sdc" if i < 2 else "masked")
            for i in range(4)
        ])
        group = summarize_file(path).groups[0]
        assert group.sdc_rate == 0.5
        interval = group.sdc_interval()
        assert interval.low <= 0.5 <= interval.high


class TestRender:
    def test_render_mentions_everything(self, tmp_path):
        path = write_file(tmp_path, [record(0, outcome="sdc", error=9.0)])
        text = summarize_file(path).render()
        assert "P-BICG" in text
        assert "1x2b" in text
        assert "SDC" in text
        assert path in text

    def test_summarize_records_empty(self):
        summary = summarize_records("x.jsonl", [])
        assert summary.n_records == 0
        assert summary.groups == []
        assert "0 run record(s)" in summary.render()


class TestZeroRunGroups:
    def test_zero_run_group_reports_vacuous_interval(self):
        from repro.obs.summary import GroupSummary
        from repro.utils.stats import zero_run_interval

        group = GroupSummary(app="P-BICG", scheme="baseline",
                             selection="uniform", n_blocks=1, n_bits=2)
        assert group.runs == 0
        assert group.sdc_rate == 0.0
        interval = group.sdc_interval()
        assert interval == zero_run_interval()
        assert (interval.low, interval.high) == (0.0, 1.0)
        # and it renders without dividing by zero
        assert "[0.0000, 1.0000]" in str(interval)
