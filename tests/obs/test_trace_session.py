"""Tests for the cycle-level trace session core.

Covers the ring buffer's eviction ordering, sampling determinism
under a fixed seed, object attribution (request context vs address
map), the interval time-series bookkeeping, and the metrics bridge.
"""

import pytest

from repro.arch.address_space import DeviceMemory
from repro.errors import ConfigError
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    UNATTRIBUTED,
    ObjectMap,
    TraceConfig,
    TraceSession,
)


def _alloc(memory: DeviceMemory, name: str, nbytes: int):
    # float32 elements; nbytes must be a multiple of 4.
    return memory.alloc(name, nbytes // 4)


class TestTraceConfig:
    def test_defaults_valid(self):
        cfg = TraceConfig()
        assert cfg.max_events > 0
        assert cfg.interval_cycles > 0

    @pytest.mark.parametrize("kwargs", [
        {"max_events": 0},
        {"interval_cycles": 0},
        {"sample_rate": -0.1},
        {"sample_rate": 1.5},
        {"categories": frozenset({"nonsense"})},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            TraceConfig(**kwargs)


class TestRingBuffer:
    def test_eviction_keeps_newest_in_order(self):
        session = TraceSession(TraceConfig(max_events=4))
        for i in range(10):
            session.emit("kernel", f"ev{i}", ts=i, dur=1, pid=1, tid=0)
        assert session.emitted == 10
        assert session.dropped == 6
        assert [e.name for e in session.events] == \
            ["ev6", "ev7", "ev8", "ev9"]
        assert [e.ts for e in session.events] == [6, 7, 8, 9]

    def test_no_drops_below_capacity(self):
        session = TraceSession(TraceConfig(max_events=16))
        for i in range(16):
            session.emit("kernel", "e", ts=i, dur=0, pid=1, tid=0)
        assert session.dropped == 0
        assert len(session.events) == 16

    def test_category_filter_skips_without_counting(self):
        session = TraceSession(
            TraceConfig(categories=frozenset({"dram"}))
        )
        session.emit("cache", "skip", ts=0, dur=1, pid=1, tid=0)
        session.emit("dram", "keep", ts=0, dur=1, pid=1, tid=0)
        assert session.emitted == 1
        assert [e.name for e in session.events] == ["keep"]


class TestSampling:
    def test_rate_one_always_keeps(self):
        session = TraceSession(TraceConfig(sample_rate=1.0))
        assert all(session.sampled() for _ in range(100))

    def test_rate_zero_never_keeps(self):
        session = TraceSession(TraceConfig(sample_rate=0.0))
        assert not any(session.sampled() for _ in range(100))

    def test_fixed_seed_is_deterministic(self):
        flips_a = [
            TraceSession(TraceConfig(sample_rate=0.5, seed=7)).sampled()
            for _ in range(1)
        ]
        a = TraceSession(TraceConfig(sample_rate=0.5, seed=7))
        b = TraceSession(TraceConfig(sample_rate=0.5, seed=7))
        assert [a.sampled() for _ in range(200)] == \
            [b.sampled() for _ in range(200)]
        c = TraceSession(TraceConfig(sample_rate=0.5, seed=8))
        assert [a.sampled() for _ in range(200)] != \
            [c.sampled() for _ in range(200)]
        assert flips_a  # seed consumed exactly per flip

    def test_fractional_rate_thins(self):
        session = TraceSession(TraceConfig(sample_rate=0.25, seed=3))
        kept = sum(session.sampled() for _ in range(2000))
        assert 350 < kept < 650


class TestObjectMap:
    def test_resolves_objects_and_gaps(self, memory):
        a = _alloc(memory, "A", 4096)
        b = _alloc(memory, "B", 256)
        omap = ObjectMap.from_memory(memory)
        assert len(omap) == 2
        assert omap.resolve(a.base_addr) == "A"
        assert omap.resolve(a.base_addr + 4095) == "A"
        assert omap.resolve(b.base_addr) == "B"
        assert omap.resolve(b.base_addr + 10**9) is None
        assert omap.resolve(-1) is None

    def test_session_attribution_precedence(self, memory):
        a = _alloc(memory, "A", 1024)
        session = TraceSession()
        # No map, no context -> unattributed.
        assert session.attribute(a.base_addr) == UNATTRIBUTED
        session.set_object_map(memory)
        assert session.attribute(a.base_addr) == "A"
        # Request context beats the map (replica traffic resolves to
        # the owning object even at replica addresses).
        session.ctx_obj = "B"
        assert session.attribute(a.base_addr) == "B"
        session.ctx_obj = None
        assert session.attribute(a.base_addr) == "A"


class TestIntervalSeries:
    def test_read_bytes_bucket_resets_per_sample(self):
        session = TraceSession()
        session.account_read_bytes("A", 128)
        session.account_read_bytes("A", 128)
        session.account_read_bytes("B", 128)
        session.add_sample(1024, ipc=1.5)
        session.account_read_bytes("B", 256)
        session.add_sample(2048, ipc=0.5)
        assert session.samples[0]["object_read_bytes"] == \
            {"A": 256, "B": 128}
        assert session.samples[1]["object_read_bytes"] == {"B": 256}
        # Whole-run totals are cumulative, not reset.
        assert session.obj("A").read_bytes == 256
        assert session.obj("B").read_bytes == 384

    def test_samples_keep_cycle_and_series(self):
        session = TraceSession()
        session.add_sample(512, ipc=2.0, mshr_occupancy=3)
        (sample,) = session.samples
        assert sample["cycle"] == 512
        assert sample["ipc"] == 2.0
        assert sample["mshr_occupancy"] == 3


class TestOutputs:
    def test_object_summary_sorted_and_complete(self):
        session = TraceSession()
        session.obj("zeta").loads = 5
        session.obj("alpha").dram_reads = 2
        summary = session.object_summary()
        assert list(summary) == ["alpha", "zeta"]
        assert summary["zeta"]["loads"] == 5
        assert summary["alpha"]["dram_reads"] == 2
        assert summary["alpha"]["loads"] == 0

    def test_publish_metrics(self):
        session = TraceSession()
        session.emit("kernel", "k", ts=0, dur=5, pid=1, tid=0)
        session.obj("A").loads = 7
        session.obj("A").read_bytes = 512
        session.add_sample(1024, ipc=1.25, mshr_occupancy=2,
                           row_hit_rate=0.5, dram_requests=4)
        metrics = MetricsRegistry()
        session.publish_metrics(metrics)
        snap = metrics.snapshot()
        assert snap["counters"]["trace.events.emitted"] == 1
        assert snap["counters"]["trace.samples"] == 1
        assert snap["counters"]["trace.object.A.loads"] == 7
        assert snap["counters"]["trace.object.A.read_bytes"] == 512
        assert "trace.interval.ipc" in snap["histograms"]
