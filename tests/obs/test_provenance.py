"""Fault-provenance records: schema, determinism, and attribution.

Pins the provenance contract end to end: the wire schema and its
validator, writer/reader round-trips, the cause taxonomy on real
campaigns (including SECDED), byte-identity of the JSONL stream at
any ``--jobs``/``--batch`` — with analytically-classified runs mixed
in — and the per-object vulnerability aggregation behind
``repro vuln``, up to the paper's hot-object story: protecting the
top SDC-attributed objects removes (nearly) all SDCs.
"""

from __future__ import annotations

import pytest

from repro.errors import TelemetryError
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.outcomes import Outcome
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.provenance import (
    EVIDENCE_KINDS,
    LIVENESS_CLASSES,
    PROVENANCE_CAUSES,
    PROVENANCE_RECORD_VERSION,
    ProvenanceRecord,
    ProvenanceSite,
    ProvenanceWriter,
    REGIONS,
    read_provenance,
    top_sdc_objects,
    validate_provenance,
    vulnerability_profiles,
)


def make_campaign(app_name, scheme, protect, runs=24, batch=1, jobs=1,
                  n_blocks=2, n_bits=2, seed=20210621, secded=False,
                  read_only_pool=False):
    app = create_app(app_name, scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects
            if not read_only_pool or o.read_only
            for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protect,
        config=CampaignConfig(runs=runs, n_blocks=n_blocks,
                              n_bits=n_bits, seed=seed, secded=secded),
        keep_runs=True,
        collect_provenance=True,
        batch=batch,
        jobs=jobs,
    )


def provenance_jsonl(result) -> str:
    return "\n".join(r.to_json() for r in result.provenance)


def sample_record(**overrides) -> dict:
    """A schema-valid record dict to mutate in validator tests."""
    record = ProvenanceRecord(
        run_index=3,
        seed=1234,
        app="P-BICG",
        scheme="detection",
        selection="uniform",
        n_blocks=1,
        n_bits=2,
        outcome="detected",
        evidence="analytic",
        cause="replica-detected",
        sites=(ProvenanceSite(
            object="A", region="hot", liveness="input",
            block_addr=128, word_index=4, byte_offset=16,
            bit_positions=(3, 17), stuck_values=(1, 0), visible=True,
        ),),
        first_corrupted_read=7,
        corrupted_reads=2,
        consumers=(("A", 2),),
        detection=("A", 7),
    ).to_dict()
    record.update(overrides)
    return record


class TestRecordRoundTrip:
    def test_to_dict_validates_and_rebuilds(self):
        data = sample_record()
        validate_provenance(data)
        rebuilt = ProvenanceRecord.from_dict(data)
        assert rebuilt.to_dict() == data

    def test_to_json_is_canonical(self):
        record = ProvenanceRecord.from_dict(sample_record())
        encoded = record.to_json()
        assert "\n" not in encoded
        assert ": " not in encoded  # compact separators
        import json

        keys = list(json.loads(encoded))
        assert keys == sorted(keys)

    def test_version_is_stamped(self):
        assert sample_record()["version"] == PROVENANCE_RECORD_VERSION


class TestValidation:
    @pytest.mark.parametrize("mutation", [
        {"outcome": "melted"},
        {"evidence": "guessed"},
        {"cause": "gremlins"},
        {"version": 99},
        {"run_index": -1},
        {"corrupted_reads": -2},
        {"first_corrupted_read": -5},
        {"seed": "1234"},
        {"sites": "nope"},
        {"consumers": {"A": 0}},
        {"consumers": {"A": True}},
        {"detection": {"object": "A"}},
    ])
    def test_bad_values_rejected(self, mutation):
        with pytest.raises(TelemetryError):
            validate_provenance(sample_record(**mutation))

    @pytest.mark.parametrize("key", [
        "version", "run_index", "outcome", "evidence", "cause",
        "sites", "first_corrupted_read", "corrupted_reads",
        "consumers", "detection",
    ])
    def test_missing_key_rejected(self, key):
        data = sample_record()
        del data[key]
        with pytest.raises(TelemetryError, match="missing"):
            validate_provenance(data)

    def test_propagation_invariant_enforced(self):
        # first_corrupted_read and corrupted_reads must agree on
        # whether any read consumed corrupted bytes.
        with pytest.raises(TelemetryError, match="disagree"):
            validate_provenance(sample_record(
                first_corrupted_read=None, corrupted_reads=1))
        with pytest.raises(TelemetryError, match="disagree"):
            validate_provenance(sample_record(
                first_corrupted_read=0, corrupted_reads=0))

    def test_bad_site_rejected(self):
        site = sample_record()["sites"][0]
        for mutation in ({"region": "warm"}, {"liveness": "zombie"},
                         {"bit_positions": [1, 2, 3]}):
            data = sample_record(sites=[dict(site, **mutation)])
            with pytest.raises(TelemetryError):
                validate_provenance(data)

    def test_non_dict_rejected(self):
        with pytest.raises(TelemetryError):
            validate_provenance([1, 2, 3])


class TestWriterReader:
    def test_round_trip_through_file(self, tmp_path):
        result = make_campaign("P-BICG", "detection", ("A",)).run()
        path = tmp_path / "prov.jsonl"
        with ProvenanceWriter(str(path)) as writer:
            n = writer.write_result(result)
        assert n == len(result.provenance) == result.n_runs
        loaded = read_provenance(str(path))
        assert [ProvenanceRecord.from_dict(d).to_json() for d in loaded] \
            == [r.to_json() for r in result.provenance]

    def test_writer_rejects_empty_result(self, tmp_path):
        campaign = make_campaign("P-BICG", "detection", ("A",), runs=4)
        campaign.collect_provenance = False
        result = campaign.run()
        with ProvenanceWriter(str(tmp_path / "p.jsonl")) as writer:
            with pytest.raises(TelemetryError, match="no provenance"):
                writer.write_result(result)

    def test_reader_flags_corrupt_line(self, tmp_path):
        path = tmp_path / "prov.jsonl"
        path.write_text('{"version": 1}\n', encoding="utf-8")
        with pytest.raises(TelemetryError, match="prov.jsonl:1:"):
            read_provenance(str(path))


class TestCauseTaxonomy:
    def test_records_use_known_vocabulary(self):
        result = make_campaign("P-ATAX", "detection", ("A", "x"),
                               runs=48).run()
        assert len(result.provenance) == result.n_runs
        for record in result.provenance:
            assert record.cause in PROVENANCE_CAUSES
            assert record.evidence in EVIDENCE_KINDS
            for site in record.sites:
                assert site.region in REGIONS
                assert site.liveness in LIVENESS_CLASSES

    def test_outcome_matches_run_stream(self):
        result = make_campaign("P-BICG", "correction", ("A", "r"),
                               runs=32).run()
        assert [r.outcome for r in result.provenance] \
            == [r.outcome.value for r in result.runs]
        assert [r.run_index for r in result.provenance] \
            == list(range(result.n_runs))

    def test_detected_runs_blame_the_scheme(self):
        result = make_campaign("P-BICG", "detection", ("A",),
                               runs=48).run()
        detected = [r for r in result.provenance
                    if r.outcome == Outcome.DETECTED.value]
        assert detected, "cell expected to produce detections"
        assert all(r.cause == "replica-detected" for r in detected)

    def test_sdc_runs_blame_corrupted_output(self):
        result = make_campaign("P-BICG", "baseline", (), runs=64,
                               n_bits=3).run()
        sdcs = [r for r in result.provenance
                if r.outcome == Outcome.SDC.value]
        assert sdcs, "baseline cell expected to produce SDCs"
        for record in sdcs:
            assert record.cause == "output-corrupted"
            assert record.corrupted_reads > 0
            assert record.first_corrupted_read is not None

    def test_masked_runs_carry_masking_cause(self):
        result = make_campaign("P-GESUMMV", "correction", ("A", "B"),
                               runs=48).run()
        masked = [r for r in result.provenance
                  if r.outcome == Outcome.MASKED.value]
        assert masked
        allowed = {"value-agrees", "dead-word",
                   "overwritten-before-read", "tolerated"}
        assert {r.cause for r in masked} <= allowed


class TestSecdedProvenance:
    def test_secded_causes_and_nulled_propagation(self):
        result = make_campaign("P-BICG", "baseline", (), runs=32,
                               secded=True).run()
        assert len(result.provenance) == result.n_runs
        secded_causes = {"secded-corrected", "secded-due",
                         "value-agrees", "tolerated",
                         "output-corrupted", "crash",
                         "replica-detected", "replica-voted"}
        for record in result.provenance:
            # SECDED filters at the memory interface; the golden
            # read-stream propagation story does not apply.
            assert record.evidence == "executed"
            assert record.cause in secded_causes
            assert record.first_corrupted_read is None
            assert record.corrupted_reads == 0
            assert record.consumers == ()

    def test_secded_sees_corrections(self):
        result = make_campaign("P-BICG", "baseline", (), runs=32,
                               secded=True).run()
        causes = {r.cause for r in result.provenance}
        assert causes & {"secded-corrected", "secded-due"}


class TestByteIdentity:
    """The ISSUE's headline guarantee: the provenance stream is
    byte-identical at any --jobs/--batch, including analytically
    classified (pruned) runs."""

    @pytest.mark.parametrize("batch", [1, 16])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_jsonl_identical_across_strategies(self, jobs, batch):
        serial = make_campaign("P-ATAX", "baseline", (), runs=48).run()
        other = make_campaign("P-ATAX", "baseline", (), runs=48,
                              jobs=jobs, batch=batch).run()
        assert provenance_jsonl(other) == provenance_jsonl(serial)

    def test_stream_mixes_analytic_and_executed_evidence(self):
        # The identity above is only meaningful if the batched run
        # actually prunes: this cell must classify some runs
        # analytically and execute others.
        result = make_campaign("P-ATAX", "baseline", (), runs=48,
                               batch=16).run()
        kinds = {r.evidence for r in result.provenance}
        assert kinds == {"analytic", "executed"}

    def test_multi_site_faults_survive_identity(self):
        serial = make_campaign("P-BICG", "detection", ("A",), runs=32,
                               n_blocks=5).run()
        batched = make_campaign("P-BICG", "detection", ("A",), runs=32,
                                n_blocks=5, batch=16, jobs=2).run()
        assert provenance_jsonl(batched) == provenance_jsonl(serial)
        assert any(len(r.sites) > 1 for r in serial.provenance)

    def test_result_dict_round_trip_keeps_provenance(self):
        from repro.faults.campaign import CampaignResult

        result = make_campaign("P-BICG", "detection", ("A",),
                               runs=16).run()
        rebuilt = CampaignResult.from_dict(result.to_dict())
        assert provenance_jsonl(rebuilt) == provenance_jsonl(result)


class TestVulnerabilityProfiles:
    def test_aggregation_counts_and_keys(self):
        result = make_campaign("P-BICG", "detection", ("A",),
                               runs=48).run()
        profiles = vulnerability_profiles(result.provenance)
        assert profiles == sorted(
            profiles, key=lambda p: (p.app, p.scheme, p.object))
        # Every run is attributed to each distinct sited object once.
        sited = sum(
            len({s.object for s in r.sites}) or 0
            for r in result.provenance
        )
        assert sum(p.runs for p in profiles) == sited
        for p in profiles:
            assert sum(p.outcome_counts.values()) == p.runs
            assert sum(p.cause_counts.values()) == p.runs

    def test_accepts_plain_dicts(self, tmp_path):
        result = make_campaign("P-BICG", "detection", ("A",),
                               runs=24).run()
        path = tmp_path / "prov.jsonl"
        with ProvenanceWriter(str(path)) as writer:
            writer.write_result(result)
        from_dicts = vulnerability_profiles(read_provenance(str(path)))
        from_records = vulnerability_profiles(result.provenance)
        assert [p.to_dict() for p in from_dicts] \
            == [p.to_dict() for p in from_records]

    def test_top_sdc_objects_ranking(self):
        result = make_campaign("P-BICG", "baseline", (), runs=64,
                               n_bits=3).run()
        profiles = vulnerability_profiles(result.provenance)
        ranked = top_sdc_objects(profiles)
        counts = [p.sdc_count for p in ranked]
        assert counts == sorted(counts, reverse=True)
        assert top_sdc_objects(profiles, 2) == ranked[:2]

    def test_interval_margin_shrinks_with_runs(self):
        result = make_campaign("P-BICG", "baseline", (), runs=64).run()
        for p in vulnerability_profiles(result.provenance):
            assert 0.0 <= p.sdc_rate <= 1.0
            assert p.sdc_interval().margin <= 1.0


class TestHotObjectStory:
    """Acceptance: the objects `repro vuln` ranks worst are the ones
    whose protection removes (almost) all SDCs — the paper's
    data-centric claim, reproduced from provenance alone."""

    @pytest.mark.parametrize("app_name", ["P-BICG", "A-Laplacian"])
    def test_protecting_top_objects_removes_sdcs(self, app_name):
        # Faults over protectable (read-only) data — the schemes
        # replicate read-only input objects only, so that is the
        # space the attribution's protection advice applies to.
        baseline = make_campaign(app_name, "baseline", (), runs=800,
                                 n_blocks=1, n_bits=4, batch=32,
                                 read_only_pool=True).run()
        assert baseline.sdc_count >= 5, "need a meaningful SDC base"
        profiles = vulnerability_profiles(baseline.provenance)
        ranked = top_sdc_objects(profiles)
        total = sum(p.sdc_count for p in ranked)
        protect, covered = [], 0
        for p in ranked:
            if covered >= 0.95 * total:
                break
            protect.append(p.object)
            covered += p.sdc_count
        protected = make_campaign(
            app_name, "correction", tuple(protect), runs=800,
            n_blocks=1, n_bits=4, batch=32, read_only_pool=True,
        ).run()
        drop = (baseline.sdc_count - protected.sdc_count) \
            / baseline.sdc_count
        assert drop >= 0.95, (
            f"protecting {protect} dropped SDCs only {100 * drop:.1f}%"
        )
