"""Tests for the observability metrics registry."""

import pytest

from repro.errors import MetricsError, ReproError
from repro.obs.metrics import (
    DEFAULT_BUCKET_BOUNDS,
    Counter,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_set(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set(2)
        assert c.value == 2


class TestHistogram:
    def test_observe_tracks_exact_stats(self):
        h = Histogram()
        for v in (1.0, 3.0, 8.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 12.0
        assert h.vmin == 1.0
        assert h.vmax == 8.0
        assert h.mean == pytest.approx(4.0)

    def test_empty_mean_is_zero(self):
        assert Histogram().mean == 0.0

    def test_bucketing_and_overflow(self):
        h = Histogram(bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.counts == [1, 1, 1]

    def test_merge_adds_everything(self):
        a, b = Histogram(), Histogram()
        a.observe(2.0)
        b.observe(100.0)
        a.merge(b)
        assert a.count == 2
        assert a.vmin == 2.0
        assert a.vmax == 100.0
        assert a.total == 102.0

    def test_merge_rejects_bound_mismatch(self):
        a = Histogram(bounds=(1.0, 2.0))
        b = Histogram()
        with pytest.raises(MetricsError):
            a.merge(b)

    def test_merge_mismatch_is_catchable_as_repro_error(self):
        a = Histogram(bounds=(1.0, 2.0))
        with pytest.raises(ReproError):
            a.merge(Histogram())

    def test_merge_with_empty_keeps_extrema(self):
        a, b = Histogram(), Histogram()
        a.observe(7.0)
        a.merge(b)
        assert a.vmin == 7.0 and a.vmax == 7.0


class TestRegistry:
    def test_created_on_first_use(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 3)
        reg.observe("lat", 2.5)
        assert reg.counters == {"a.b": 3}
        assert reg.histogram("lat").count == 1

    def test_counter_identity_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")

    def test_snapshot_roundtrip_is_additive(self):
        a = MetricsRegistry()
        a.inc("n", 2)
        a.observe("lat", 1.0)
        b = MetricsRegistry()
        b.merge_snapshot(a.snapshot())
        b.merge_snapshot(a.snapshot())
        assert b.counters["n"] == 4
        assert b.histogram("lat").count == 2

    def test_merge_snapshot_none_is_noop(self):
        reg = MetricsRegistry()
        reg.merge_snapshot(None)
        assert reg.counters == {}

    def test_merge_snapshot_rejects_bound_mismatch_by_name(self):
        a = MetricsRegistry()
        a.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
        b = MetricsRegistry()
        b.observe("lat", 1.5)  # default bounds: incompatible layout
        with pytest.raises(MetricsError, match="lat"):
            a.merge_snapshot(b.snapshot())
        # Nothing was folded in before the mismatch was caught.
        assert a.histogram("lat").count == 1

    def test_merge_snapshot_adopts_bounds_for_new_names(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
        a.merge_snapshot(b.snapshot())
        assert a.histogram("lat").bounds == (1.0, 2.0)
        assert a.histogram("lat").count == 1

    def test_merge_registries(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n")
        b.inc("n", 9)
        a.merge(b)
        assert a.counters["n"] == 10

    def test_counters_sorted(self):
        reg = MetricsRegistry()
        reg.inc("z")
        reg.inc("a")
        assert list(reg.counters) == ["a", "z"]

    def test_render_mentions_metrics(self):
        reg = MetricsRegistry()
        reg.inc("sim.runs", 2)
        reg.observe("lat_ms", 3.0)
        text = reg.render()
        assert "sim.runs = 2" in text
        assert "lat_ms" in text

    def test_default_bounds_are_powers_of_two(self):
        assert DEFAULT_BUCKET_BOUNDS[0] == 1
        assert DEFAULT_BUCKET_BOUNDS[-1] == 2 ** 20
