"""Tests for the Perfetto/Chrome ``trace_events`` exporter.

Validates the emitted schema (phases, required keys, metadata), the
canonical-serialization byte determinism the golden-trace equivalence
check relies on, the campaign-lifecycle track bridged from campaign
results, and the validator's rejection of malformed documents.
"""

import json

import pytest

from repro.obs.perfetto import (
    TraceExportError,
    campaign_lifecycle_events,
    chrome_trace,
    render_chrome_trace,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.trace import (
    PID_CAMPAIGN,
    PID_COUNTERS,
    PID_TIMELINE,
    TID_CAMPAIGN_DECISIONS,
    TID_CAMPAIGN_RUNS,
    TID_CAMPAIGN_SPANS,
    TID_MAIN,
    TraceConfig,
    TraceSession,
)


def _session() -> TraceSession:
    session = TraceSession(TraceConfig(max_events=64))
    session.register_track(PID_TIMELINE, "timeline", TID_MAIN, "kernels")
    session.emit("kernel", "k0", ts=0, dur=100, pid=PID_TIMELINE,
                 tid=TID_MAIN, obj="A", args={"ctas": 4})
    session.instant("mshr", "full-stall", ts=10, pid=100, tid=3)
    session.counter("mshr", "mshr[100]", ts=12, pid=100,
                    values={"outstanding": 5})
    session.account_read_bytes("A", 256)
    session.add_sample(1024, ipc=1.5, mshr_occupancy=2.0,
                       row_hit_rate=0.75, dram_requests=3)
    return session


class TestChromeTrace:
    def test_document_validates(self):
        doc = chrome_trace(_session(), label="t")
        n = validate_trace_events(doc)
        assert n == len(doc["traceEvents"])

    def test_span_shape(self):
        doc = chrome_trace(_session())
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        (span,) = spans
        assert span["name"] == "k0"
        assert span["ts"] == 0 and span["dur"] == 100
        assert span["args"]["obj"] == "A"
        assert span["args"]["ctas"] == 4

    def test_instant_is_thread_scoped(self):
        doc = chrome_trace(_session())
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["s"] == "t"
        assert instant["ts"] == 10

    def test_counters_include_interval_series(self):
        doc = chrome_trace(_session())
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert {"mshr[100]", "ipc", "mshr_occupancy",
                "row_hit_rate", "object_read_bytes"} <= names
        (obj_bytes,) = [e for e in counters
                        if e["name"] == "object_read_bytes"]
        assert obj_bytes["args"] == {"A": 256}
        assert obj_bytes["pid"] == PID_COUNTERS

    def test_metadata_names_tracks(self):
        doc = chrome_trace(_session())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {(e["name"], e["args"]["name"]) for e in meta}
        assert ("process_name", "timeline") in names
        assert ("thread_name", "kernels") in names
        # The counter process is auto-named when samples exist.
        assert ("process_name", "interval counters") in names

    def test_other_data_carries_session_config(self):
        session = _session()
        doc = chrome_trace(session, label="lbl")
        other = doc["otherData"]
        assert other["label"] == "lbl"
        assert other["clock"] == "gpu-core-cycles"
        assert other["events_emitted"] == session.emitted
        assert other["sample_seed"] == session.config.seed


class TestCanonicalRender:
    def test_identical_sessions_render_identical_bytes(self):
        assert render_chrome_trace(_session()) == \
            render_chrome_trace(_session())

    def test_render_is_loadable_json(self):
        doc = json.loads(render_chrome_trace(_session()))
        assert validate_trace_events(doc) > 0

    def test_write_and_validate_file(self, tmp_path):
        path = str(tmp_path / "s.trace.json")
        n = write_chrome_trace(_session(), path, label="file")
        assert validate_trace_file(path) == n


class TestValidator:
    def test_rejects_non_object(self):
        with pytest.raises(TraceExportError):
            validate_trace_events([1, 2, 3])

    def test_rejects_empty_events(self):
        with pytest.raises(TraceExportError):
            validate_trace_events({"traceEvents": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(TraceExportError, match="phase"):
            validate_trace_events({"traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 0},
            ]})

    def test_rejects_missing_required_key(self):
        with pytest.raises(TraceExportError, match="missing key"):
            validate_trace_events({"traceEvents": [
                {"ph": "X", "name": "x", "cat": "kernel",
                 "ts": 0, "pid": 1, "tid": 0},  # no dur
            ]})

    def test_rejects_negative_timestamp(self):
        with pytest.raises(TraceExportError, match="ts"):
            validate_trace_events({"traceEvents": [
                {"ph": "X", "name": "x", "cat": "kernel", "ts": -1,
                 "dur": 1, "pid": 1, "tid": 0},
            ]})

    def test_rejects_non_numeric_counter(self):
        with pytest.raises(TraceExportError, match="counter"):
            validate_trace_events({"traceEvents": [
                {"ph": "C", "name": "c", "ts": 0, "pid": 1,
                 "args": {"v": "high"}},
            ]})

    def test_rejects_unknown_metadata(self):
        with pytest.raises(TraceExportError, match="metadata"):
            validate_trace_events({"traceEvents": [
                {"ph": "M", "name": "color", "pid": 1,
                 "args": {"name": "red"}},
            ]})

    def test_file_error_paths(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        with pytest.raises(TraceExportError, match="not valid JSON"):
            validate_trace_file(str(bad))

    def test_rejects_foreign_cat_on_campaign_pid(self):
        with pytest.raises(TraceExportError, match="campaign"):
            validate_trace_events({"traceEvents": [
                {"ph": "X", "name": "x", "cat": "kernel", "ts": 0,
                 "dur": 1, "pid": PID_CAMPAIGN,
                 "tid": TID_CAMPAIGN_SPANS},
            ]})

    def test_rejects_unknown_outcome_run_instant(self):
        with pytest.raises(TraceExportError, match="outcome"):
            validate_trace_events({"traceEvents": [
                {"ph": "i", "name": "exploded", "cat": "campaign",
                 "s": "t", "ts": 0, "pid": PID_CAMPAIGN,
                 "tid": TID_CAMPAIGN_RUNS},
            ]})


def _campaign(runs=12, provenance=True, seed=20210621):
    from repro.faults.campaign import Campaign, CampaignConfig
    from repro.faults.selection import uniform_selection
    from repro.kernels.registry import create_app

    app = create_app("P-BICG", scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme="detection",
        protect=("A",),
        config=CampaignConfig(runs=runs, n_blocks=2, n_bits=2,
                              seed=seed),
        collect_records=True,
        collect_provenance=provenance,
    )


def _decisions(result):
    from repro.faults.adaptive import StopDecision, should_stop

    decisions = []
    for committed in (4, 8, result.n_runs):
        sdc = sum(1 for r in result.provenance[:committed]
                  if r.outcome == "sdc")
        stop, interval = should_stop(sdc, committed, 0.5)
        decisions.append(StopDecision(
            committed=committed, sdc=sdc, interval=interval,
            stop=stop or committed == result.n_runs))
    return decisions


class TestCampaignLifecycle:
    def test_events_validate_inside_full_export(self):
        result = _campaign().run()
        extra = campaign_lifecycle_events(result,
                                          decisions=_decisions(result))
        doc = chrome_trace(_session(), label="t", extra_events=extra)
        assert validate_trace_events(doc) == len(doc["traceEvents"])

    def test_campaign_span_clock_is_run_index(self):
        result = _campaign().run()
        events = campaign_lifecycle_events(result)
        (span,) = [e for e in events if e["ph"] == "X"]
        assert span["ts"] == 0 and span["dur"] == result.n_runs
        assert span["name"] == "campaign P-BICG/detection"
        assert span["tid"] == TID_CAMPAIGN_SPANS

    def test_run_instants_carry_provenance_args(self):
        result = _campaign().run()
        events = campaign_lifecycle_events(result)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == result.n_runs
        assert [e["ts"] for e in instants] == list(range(result.n_runs))
        for instant, record in zip(instants, result.provenance):
            assert instant["tid"] == TID_CAMPAIGN_RUNS
            assert instant["name"] == record.outcome
            assert instant["args"]["cause"] == record.cause
            assert instant["args"]["evidence"] == record.evidence

    def test_run_instants_fall_back_to_telemetry(self):
        result = _campaign(provenance=False).run()
        events = campaign_lifecycle_events(result)
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == result.n_runs
        assert all("args" not in e for e in instants)

    def test_decision_track_and_chunk_partition(self):
        result = _campaign().run()
        decisions = _decisions(result)
        events = campaign_lifecycle_events(result, decisions=decisions)
        stops = [e for e in events
                 if e["tid"] == TID_CAMPAIGN_DECISIONS
                 and e["ph"] == "i"]
        assert [e["ts"] for e in stops] == [d.committed
                                            for d in decisions]
        chunks = [e for e in events
                  if e["ph"] == "X" and e["name"] == "chunk"]
        # Chunk spans partition [0, n_runs) at committed boundaries.
        assert [(c["ts"], c["ts"] + c["dur"]) for c in chunks] \
            == [(0, 4), (4, 8), (8, result.n_runs)]

    def test_lifecycle_render_is_deterministic(self):
        renders = []
        for _ in range(2):
            result = _campaign().run()
            extra = campaign_lifecycle_events(
                result, decisions=_decisions(result))
            renders.append(render_chrome_trace(
                _session(), label="t", extra_events=extra))
        assert renders[0] == renders[1]
