"""Tests for the CLI's verbosity-aware structured logger."""

import pytest

from repro.obs import log as log_mod
from repro.obs.log import configure, get_logger


@pytest.fixture(autouse=True)
def _restore_level():
    yield
    configure()  # back to the default (info) for other tests


class TestDefaultLevel:
    def test_info_and_result_on_stdout(self, capsys):
        configure()
        logger = get_logger("t")
        logger.info("progress %d", 7)
        logger.result("table")
        captured = capsys.readouterr()
        assert "progress 7\n" in captured.out
        assert "table\n" in captured.out
        assert captured.err == ""

    def test_debug_suppressed(self, capsys):
        configure()
        get_logger("t").debug("hidden")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""


class TestVerbose:
    def test_debug_on_stderr_with_component(self, capsys):
        configure(verbose=True)
        get_logger("sim").debug("x=%d", 3)
        captured = capsys.readouterr()
        assert captured.err == "[sim] x=3\n"
        assert captured.out == ""


class TestQuiet:
    def test_info_suppressed_results_kept(self, capsys):
        configure(quiet=True)
        logger = get_logger("t")
        logger.info("progress")
        logger.result("table")
        captured = capsys.readouterr()
        assert "progress" not in captured.out
        assert "table\n" in captured.out

    def test_quiet_beats_verbose(self, capsys):
        configure(verbose=True, quiet=True)
        logger = get_logger("t")
        logger.debug("hidden")
        logger.info("hidden too")
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err == ""

    def test_warning_and_error_always_shown(self, capsys):
        configure(quiet=True)
        logger = get_logger("t")
        logger.warning("heads up")
        logger.error("boom")
        captured = capsys.readouterr()
        assert "warning: heads up\n" in captured.err
        assert "error: boom\n" in captured.err

    def test_level_reports_threshold(self):
        configure(quiet=True)
        assert log_mod.level() == log_mod.QUIET
        configure(verbose=True)
        assert log_mod.level() == log_mod.DEBUG
