"""Live progress events: math, rendering, and the no-overhead pact.

Two halves: the :class:`~repro.obs.progress.ProgressEvent` value type
(fractions, rates, ETA, wire dict, TTY rendering) and the driver
integration — progress observes chunk boundaries without perturbing
results, and a disabled sink (``progress=None``) takes the exact
pre-progress code path (structurally asserted, not just timed).
"""

from __future__ import annotations

import io

import pytest

from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.progress import (
    PROGRESS_EVENT_VERSION,
    ProgressEvent,
    TtyProgress,
)
from repro.runtime.executor import CampaignExecutor


def make_campaign(runs=24, progress=None, batch=1, jobs=1):
    app = create_app("A-Laplacian", scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme="baseline",
        protect=(),
        config=CampaignConfig(runs=runs, seed=77),
        collect_records=True,
        batch=batch,
        jobs=jobs,
        progress=progress,
    )


class TestProgressEvent:
    def test_fraction_rate_eta(self):
        event = ProgressEvent(phase="campaign", done=50, total=200,
                              elapsed_s=5.0)
        assert event.fraction == 0.25
        assert event.runs_per_sec == 10.0
        assert event.eta_s == 15.0

    def test_eta_none_when_done_or_stalled(self):
        done = ProgressEvent(phase="campaign", done=8, total=8,
                             elapsed_s=1.0)
        assert done.eta_s is None
        stalled = ProgressEvent(phase="campaign", done=0, total=8,
                                elapsed_s=1.0)
        assert stalled.eta_s is None

    def test_zero_total_fraction(self):
        event = ProgressEvent(phase="campaign", done=0, total=0,
                              elapsed_s=0.0)
        assert event.fraction == 0.0

    def test_to_dict_wire_shape(self):
        event = ProgressEvent(phase="adaptive", done=64, total=512,
                              elapsed_s=2.0, margin=0.041)
        data = event.to_dict()
        assert data["version"] == PROGRESS_EVENT_VERSION
        assert data["phase"] == "adaptive"
        assert data["done"] == 64
        assert data["margin"] == 0.041
        assert data["runs_per_sec"] == 32.0

    def test_render_mentions_the_essentials(self):
        event = ProgressEvent(phase="sweep", done=10, total=40,
                              elapsed_s=1.0,
                              cell="A-Laplacian~correction~hot",
                              margin=0.05)
        text = event.render()
        assert "A-Laplacian~correction~hot" in text
        assert "10/40" in text
        assert "25.0%" in text
        assert "margin" in text

    def test_events_are_frozen(self):
        event = ProgressEvent(phase="campaign", done=1, total=2,
                              elapsed_s=0.1)
        with pytest.raises(AttributeError):
            event.done = 2


class TestTtyProgress:
    def test_pipe_mode_writes_line_per_event(self):
        stream = io.StringIO()
        with TtyProgress(stream=stream) as sink:
            sink(ProgressEvent(phase="campaign", done=4, total=8,
                               elapsed_s=1.0))
            sink(ProgressEvent(phase="campaign", done=8, total=8,
                               elapsed_s=2.0))
        lines = stream.getvalue().splitlines()
        assert len(lines) == 2
        assert sink.n_events == 2
        assert "8/8" in lines[1]

    def test_close_is_idempotent(self):
        sink = TtyProgress(stream=io.StringIO())
        sink.close()
        sink.close()


class TestCampaignProgress:
    def test_serial_progress_monotonic_and_complete(self):
        events = []
        result = make_campaign(runs=24, progress=events.append).run()
        assert result.n_runs == 24
        assert events, "chunked serial path must emit events"
        dones = [e.done for e in events]
        assert dones == sorted(dones)
        assert dones[-1] == 24
        assert all(e.total == 24 for e in events)
        assert all(e.phase == "campaign" for e in events)

    def test_progress_never_perturbs_results(self, tmp_path):
        from repro.obs.records import TelemetryWriter

        streams = []
        for progress in (None, lambda e: None):
            result = make_campaign(runs=24, progress=progress).run()
            path = tmp_path / f"t{len(streams)}.jsonl"
            with TelemetryWriter(str(path)) as writer:
                writer.write_result(result)
            streams.append(path.read_bytes())
        assert streams[0] == streams[1]

    def test_disabled_path_is_single_span(self, monkeypatch):
        """progress=None + jobs=1 must run one unchunked span —
        the exact pre-progress code path."""
        campaign = make_campaign(runs=24, progress=None)
        calls = []
        original = Campaign.run_span

        def spy(self, start, stop):
            calls.append((start, stop))
            return original(self, start, stop)

        monkeypatch.setattr(Campaign, "run_span", spy)
        CampaignExecutor(campaign, jobs=1).run()
        assert calls == [(0, 24)]

    def test_parallel_progress_reaches_total(self):
        events = []
        campaign = make_campaign(runs=24, jobs=2,
                                 progress=events.append)
        result = campaign.run()
        assert result.n_runs == 24
        assert events and events[-1].done == 24

    def test_progress_kwarg_routes_through_run(self):
        events = []
        result = make_campaign(runs=16, progress=events.append).run()
        assert result.n_runs == 16
        assert events[-1].done == 16


class TestAdaptiveProgress:
    def test_adaptive_events_carry_margin(self):
        from repro.faults.adaptive import AdaptiveConfig, run_adaptive

        events = []
        campaign = make_campaign(runs=32, progress=events.append)
        adaptive = run_adaptive(
            campaign, AdaptiveConfig(target_margin=0.2, check_every=8))
        assert adaptive.result.n_runs >= 8
        assert events, "adaptive path must emit events"
        assert all(e.phase == "adaptive" for e in events)
        assert all(e.margin is not None for e in events)
        assert events[-1].done == adaptive.stopped_at


class TestSweepProgress:
    def test_sweep_progress_and_session_mirror(self, tmp_path):
        from repro.obs.session import SessionLog, read_session_events
        from repro.runtime.session import (
            Session,
            SessionConfig,
            SweepSpec,
        )

        spec = SweepSpec(
            apps=("A-Laplacian",), schemes=("baseline",),
            protects=("hot",), runs=8, scale="small", chunk_runs=4)
        log_path = tmp_path / "session.jsonl"
        events = SessionLog(str(log_path))
        seen = []
        session = Session(spec, events=events, progress=seen.append)
        sweep = session.run()
        events.close()
        assert sweep.results
        assert seen and seen[-1].done == 8
        assert all(e.phase == "sweep" for e in seen)
        assert all(e.cell for e in seen)
        mirrored = [e for e in read_session_events(str(log_path))
                    if e["kind"] == "progress"]
        assert len(mirrored) == len(seen)
        assert all("done=" in e["detail"] for e in mirrored)

    def test_sweep_results_identical_with_progress(self):
        from repro.runtime.session import run_sweep, SweepSpec

        spec = SweepSpec(
            apps=("A-Laplacian",), schemes=("baseline",),
            protects=("hot",), runs=8, scale="small", chunk_runs=4)
        quiet = run_sweep(spec)
        loud = run_sweep(spec, progress=lambda e: None)
        assert quiet.to_dict() == loud.to_dict()
