"""Tests for the search-trail JSONL writer and reader."""

import pytest

from repro.errors import TelemetryError
from repro.obs.search import (
    SearchTrailWriter,
    read_search_trail,
    validate_trail_line,
)

HEADER = {"app": "P-BICG", "space": {"objects": ["p"]},
          "strategy": "greedy", "search_seed": 1}
ROUND = {"round": 0, "proposed": 1, "new": 1, "cached": 0,
         "evaluations": [], "front": []}


def write_trail(path, rounds=1):
    with SearchTrailWriter(str(path)) as writer:
        writer.write_header(dict(HEADER))
        for index in range(rounds):
            writer.write_round({**ROUND, "round": index})
    return writer


class TestWriter:
    def test_counts_lines(self, tmp_path):
        writer = write_trail(tmp_path / "t.jsonl", rounds=3)
        assert writer.n_written == 4

    def test_lines_are_canonical_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trail(path)
        raw = path.read_text(encoding="utf-8").splitlines()
        assert raw[0].startswith('{"app":"P-BICG"')
        assert '"type":"search"' in raw[0]
        assert '"version":1' in raw[0]

    def test_close_is_idempotent(self, tmp_path):
        writer = write_trail(tmp_path / "t.jsonl")
        writer.close()
        writer.close()


class TestReader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trail(path, rounds=2)
        lines = read_search_trail(str(path))
        assert [line["type"] for line in lines] == \
            ["search", "round", "round"]

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(TelemetryError, match="empty"):
            read_search_trail(str(path))

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SearchTrailWriter(str(path)) as writer:
            writer.write_round(dict(ROUND))
        with pytest.raises(TelemetryError, match="expected a search"):
            read_search_trail(str(path))

    def test_second_header_rejected(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with SearchTrailWriter(str(path)) as writer:
            writer.write_header(dict(HEADER))
            writer.write_header(dict(HEADER))
        with pytest.raises(TelemetryError, match="expected a round"):
            read_search_trail(str(path))

    def test_non_json_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_trail(path)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("not json\n")
        with pytest.raises(TelemetryError, match=":3"):
            read_search_trail(str(path))


class TestValidation:
    def test_header_requires_keys(self):
        with pytest.raises(TelemetryError, match="missing key"):
            validate_trail_line({"type": "search", "version": 1})

    def test_version_pinned(self):
        doc = {"type": "search", "version": 999, **HEADER}
        with pytest.raises(TelemetryError, match="version"):
            validate_trail_line(doc)

    def test_round_requires_keys(self):
        with pytest.raises(TelemetryError, match="missing key"):
            validate_trail_line({"type": "round", "round": 0})

    def test_unknown_type_rejected(self):
        with pytest.raises(TelemetryError, match="unknown trail"):
            validate_trail_line({"type": "mystery"})

    def test_non_dict_rejected(self):
        with pytest.raises(TelemetryError, match="not a trail"):
            validate_trail_line(["nope"])
