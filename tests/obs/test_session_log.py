"""Tests for the sweep-session JSONL event log."""

import json

import pytest

from repro.errors import TelemetryError
from repro.obs.session import (
    SESSION_EVENT_VERSION,
    SessionEvent,
    SessionLog,
    iter_session_events,
    read_session_events,
    validate_event,
)


def write_log(path, *emits):
    with SessionLog(str(path)) as events:
        for kind, fields in emits:
            events.emit(kind, **fields)
    return events


class TestSessionLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = write_log(
            path,
            ("plan", {"detail": "2 cells, 4 chunks"}),
            ("chunk", {"cell": "abc", "start": 0, "stop": 4,
                       "source": "run"}),
            ("finish", {"detail": "4 chunks"}),
        )
        assert log.n_written == 3
        events = read_session_events(str(path))
        assert [e["kind"] for e in events] == ["plan", "chunk", "finish"]
        assert events[1]["source"] == "run"

    def test_sequence_assigned_in_order(self, tmp_path):
        path = tmp_path / "events.jsonl"
        write_log(path, ("plan", {}), ("finish", {}))
        events = read_session_events(str(path))
        assert [e["seq"] for e in events] == [0, 1]

    def test_emit_rejects_unknown_kind(self, tmp_path):
        with SessionLog(str(tmp_path / "e.jsonl")) as events:
            with pytest.raises(TelemetryError, match="kind"):
                events.emit("reboot")

    def test_emit_rejects_bad_chunk_source(self, tmp_path):
        with SessionLog(str(tmp_path / "e.jsonl")) as events:
            with pytest.raises(TelemetryError, match="source"):
                events.emit("chunk", source="teleport")


class TestReaders:
    def _lines(self, path):
        return path.read_text().splitlines()

    def test_sequence_gap_detected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_log(path, ("plan", {}), ("chunk", {"source": "run"}),
                  ("finish", {}))
        lines = self._lines(path)
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(TelemetryError, match="sequence gap"):
            read_session_events(str(path))

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("{nope\n")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            read_session_events(str(path))

    def test_missing_key(self, tmp_path):
        path = tmp_path / "e.jsonl"
        event = SessionEvent(seq=0, kind="plan").to_dict()
        del event["detail"]
        path.write_text(json.dumps(event) + "\n")
        with pytest.raises(TelemetryError, match="missing key"):
            read_session_events(str(path))

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "e.jsonl"
        event = SessionEvent(seq=0, kind="plan").to_dict()
        event["version"] = SESSION_EVENT_VERSION + 1
        path.write_text(json.dumps(event) + "\n")
        with pytest.raises(TelemetryError, match="version"):
            read_session_events(str(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_log(path, ("plan", {}))
        path.write_text(path.read_text() + "\n\n")
        assert len(read_session_events(str(path))) == 1

    def test_iter_is_lazy_on_error_position(self, tmp_path):
        path = tmp_path / "e.jsonl"
        write_log(path, ("plan", {}))
        path.write_text(path.read_text() + "{bad\n")
        it = iter_session_events(str(path))
        assert next(it)["kind"] == "plan"
        with pytest.raises(TelemetryError):
            next(it)


class TestValidateEvent:
    def test_bool_masquerading_as_int_rejected(self):
        event = SessionEvent(seq=0, kind="plan").to_dict()
        event["start"] = True
        with pytest.raises(TelemetryError, match="type"):
            validate_event(event)

    def test_non_object_rejected(self):
        with pytest.raises(TelemetryError, match="object"):
            validate_event(["not", "an", "object"])
