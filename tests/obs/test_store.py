"""The results warehouse: ingest, dedup, export, and failure modes.

The contract under test: ingest → export reproduces the source
canonical JSONL byte-for-byte; re-ingesting identical content is an
idempotent no-op (row counts unchanged); and every malformed input —
truncated JSONL, corrupt JSON, foreign SQLite files — surfaces as a
typed :class:`~repro.errors.StoreError`, never a traceback.
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.errors import StoreError
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.provenance import ProvenanceWriter
from repro.obs.records import TelemetryWriter, write_decisions
from repro.obs.store import (
    KINDS,
    STORE_SCHEMA_VERSION,
    ResultsStore,
    detect_kind,
    ingest_files,
)


def make_campaign(runs=24, scheme="correction", protect=(),
                  batch=1, jobs=1, adaptive=None):
    app = create_app("A-Laplacian", scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protect,
        config=CampaignConfig(runs=runs, n_blocks=2, n_bits=2,
                              seed=20210621),
        keep_runs=True,
        collect_records=True,
        collect_provenance=True,
        batch=batch,
        jobs=jobs,
        adaptive=adaptive,
    )


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One campaign's telemetry + provenance + decisions on disk."""
    root = tmp_path_factory.mktemp("corpus")
    result = make_campaign().run()
    telemetry = root / "telemetry.jsonl"
    with TelemetryWriter(str(telemetry)) as writer:
        writer.write_result(result)
    provenance = root / "provenance.jsonl"
    with ProvenanceWriter(str(provenance)) as writer:
        writer.write_result(result)
    from repro.faults.adaptive import AdaptiveConfig, run_adaptive

    adaptive = run_adaptive(
        make_campaign(runs=32),
        AdaptiveConfig(target_margin=0.2, check_every=8))
    decisions = root / "decisions.jsonl"
    write_decisions(str(decisions), adaptive.decisions)
    bench = root / "BENCH_demo.json"
    bench.write_text(json.dumps(
        {"throughput": {"runs_per_sec": 123.4}, "samples": [1, 2]}))
    return {"root": root, "telemetry": telemetry,
            "provenance": provenance, "decisions": decisions,
            "bench": bench}


def row_counts(path):
    conn = sqlite3.connect(str(path))
    try:
        tables = ("cells", "runs", "provenance", "decisions",
                  "session_events", "bench")
        return {t: conn.execute(f"SELECT COUNT(*) FROM {t}")
                .fetchone()[0] for t in tables}
    finally:
        conn.close()


class TestDetectKind:
    def test_detects_each_kind(self, corpus):
        assert detect_kind(str(corpus["telemetry"])) == "runs"
        assert detect_kind(str(corpus["provenance"])) == "provenance"
        assert detect_kind(str(corpus["decisions"])) == "decisions"
        assert detect_kind(str(corpus["bench"])) == "bench"

    def test_session_log_detected(self, tmp_path, corpus):
        from repro.obs.session import SessionLog

        path = tmp_path / "session.jsonl"
        log = SessionLog(str(path))
        log.emit("plan", detail="2 cells")
        log.emit("finish", detail="ok")
        log.close()
        assert detect_kind(str(path)) == "session"

    def test_undetectable_raises(self, tmp_path):
        path = tmp_path / "mystery.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(StoreError, match="cannot detect"):
            detect_kind(str(path))

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            detect_kind(str(tmp_path / "absent.jsonl"))


class TestIngestAndExport:
    def test_export_is_byte_identical_to_source(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            for key in ("telemetry", "provenance", "decisions"):
                (receipt,) = store.ingest(str(corpus[key]))
                assert store.export(receipt["digest"]) == \
                    corpus[key].read_text()

    def test_reingest_is_noop(self, corpus, tmp_path):
        db = tmp_path / "w.db"
        paths = [str(corpus[k]) for k in
                 ("telemetry", "provenance", "decisions", "bench")]
        with ResultsStore(str(db)) as store:
            first = ingest_files(store, paths)
        counts = row_counts(db)
        with ResultsStore(str(db)) as store:
            second = ingest_files(store, paths)
        assert row_counts(db) == counts
        assert all(not r["deduped"] for r in first)
        assert all(r["deduped"] for r in second)
        assert [r["digest"] for r in first] == \
            [r["digest"] for r in second]

    def test_digest_invariant_across_batch_and_jobs(self, tmp_path):
        digests = []
        for batch in (1, 8):
            path = tmp_path / f"t{batch}.jsonl"
            with TelemetryWriter(str(path)) as writer:
                writer.write_result(make_campaign(batch=batch).run())
            with ResultsStore(str(tmp_path / f"s{batch}.db")) as store:
                (receipt,) = store.ingest(str(path))
            digests.append(receipt["digest"])
        assert digests[0] == digests[1]

    def test_run_cell_carries_campaign_identity(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            store.ingest(str(corpus["telemetry"]))
            (cell,) = store.cells()
        assert cell["app"] == "A-Laplacian"
        assert cell["scheme"] == "correction"
        assert (cell["n_blocks"], cell["n_bits"]) == (2, 2)
        assert cell["rows"] == 24

    def test_bench_label_strips_prefix(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            (receipt,) = store.ingest(str(corpus["bench"]))
        assert receipt["label"] == "demo"
        assert receipt["kind"] == "bench"

    def test_kind_override_beats_detection(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            (receipt,) = store.ingest(str(corpus["telemetry"]),
                                      kind="runs")
        assert receipt["kind"] == "runs"
        with ResultsStore(str(tmp_path / "w2.db")) as store:
            with pytest.raises(StoreError):
                store.ingest(str(corpus["telemetry"]), kind="nonsense")


class TestQueries:
    def test_query_tallies_and_interval(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            store.ingest(str(corpus["telemetry"]))
            (summary,) = store.query()
        assert summary["runs"] == 24
        assert sum(summary["outcomes"].values()) == 24
        ci = summary["sdc_interval"]
        assert 0.0 <= ci["low"] <= ci["proportion"] <= ci["high"] <= 1.0
        with ResultsStore(str(tmp_path / "w.db")) as store:
            assert len(store.query(app="A-Laplacian")) == 1
            assert store.query(app="NOPE") == []
            assert store.query(scheme="correction")[0]["scheme"] == \
                "correction"

    def test_meta_stamps(self, tmp_path):
        import repro

        with ResultsStore(str(tmp_path / "w.db")) as store:
            meta = store.meta()
        assert meta["store_schema_version"] == str(STORE_SCHEMA_VERSION)
        assert meta["repro_version"] == repro.__version__
        assert meta["run_record_version"] == "1"

    def test_export_unknown_digest_raises(self, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            with pytest.raises(StoreError, match="no cell"):
                store.export("deadbeef")

    def test_decision_trails_and_bench_views(self, corpus, tmp_path):
        with ResultsStore(str(tmp_path / "w.db")) as store:
            store.ingest(str(corpus["decisions"]))
            store.ingest(str(corpus["bench"]))
            (trail,) = store.decision_trails()
            (snapshot,) = store.bench_snapshots()
        assert trail["decisions"][-1]["stop"] in (True, False)
        assert all(d["version"] == 1 for d in trail["decisions"])
        assert snapshot["name"] == "demo"
        assert snapshot["snapshot"]["throughput"]["runs_per_sec"] \
            == 123.4


class TestFailureModes:
    def test_truncated_jsonl_raises_store_error(self, corpus, tmp_path):
        lines = corpus["telemetry"].read_text().splitlines(True)
        broken = tmp_path / "truncated.jsonl"
        broken.write_text("".join(lines[:-1]) + lines[-1][:20])
        with ResultsStore(str(tmp_path / "w.db")) as store:
            with pytest.raises(StoreError, match="truncated.jsonl"):
                store.ingest(str(broken), kind="runs")

    def test_corrupt_json_raises_store_error(self, tmp_path):
        broken = tmp_path / "corrupt.jsonl"
        broken.write_text("this is not json\n")
        with ResultsStore(str(tmp_path / "w.db")) as store:
            with pytest.raises(StoreError, match="not valid JSON"):
                store.ingest(str(broken), kind="runs")

    def test_empty_file_raises(self, tmp_path):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        with ResultsStore(str(tmp_path / "w.db")) as store:
            with pytest.raises(StoreError, match="no records"):
                store.ingest(str(empty), kind="runs")

    def test_foreign_sqlite_file_refused(self, tmp_path):
        foreign = tmp_path / "other.db"
        conn = sqlite3.connect(str(foreign))
        conn.execute("CREATE TABLE unrelated (x INTEGER)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="not a results store"):
            ResultsStore(str(foreign))

    def test_schema_version_mismatch_refused(self, tmp_path):
        db = tmp_path / "w.db"
        ResultsStore(str(db)).close()
        conn = sqlite3.connect(str(db))
        conn.execute("UPDATE meta SET value = '999' "
                     "WHERE key = 'store_schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreError, match="schema version"):
            ResultsStore(str(db))

    def test_errors_are_store_errors_only(self):
        assert len(KINDS) == 5
        from repro.errors import ReproError

        assert issubclass(StoreError, ReproError)
