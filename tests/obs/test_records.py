"""Tests for telemetry run records: schema, writer, reader."""

import json

import pytest

from repro.faults.model import FaultSpec
from repro.obs.records import (
    RUN_RECORD_VERSION,
    RunRecord,
    TelemetryError,
    TelemetryWriter,
    iter_records,
    read_records,
    records_in_order,
    validate_record,
)


def make_record(run_index=0, **overrides):
    kwargs = dict(
        run_index=run_index,
        seed=12345,
        app="P-BICG",
        scheme="correction",
        selection="uniform",
        n_blocks=1,
        n_bits=2,
        outcome="masked",
        error=0.25,
        detail="",
        faults=(FaultSpec(4096, 3, (1, 9), (1, 0)),),
        counters=(("corrected_reads", 0),),
    )
    kwargs.update(overrides)
    return RunRecord(**kwargs)


class TestCanonicalJson:
    def test_single_line_sorted_compact(self):
        text = make_record().to_json()
        assert "\n" not in text
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    def test_same_record_same_bytes(self):
        assert make_record().to_json() == make_record().to_json()

    def test_roundtrip(self):
        rec = make_record()
        again = RunRecord.from_dict(json.loads(rec.to_json()))
        assert again == rec

    def test_version_stamped(self):
        assert json.loads(make_record().to_json())["version"] == \
            RUN_RECORD_VERSION


class TestValidation:
    def test_valid_record_passes(self):
        validate_record(make_record().to_dict())

    def test_missing_key_rejected(self):
        data = make_record().to_dict()
        del data["seed"]
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_wrong_type_rejected(self):
        data = make_record().to_dict()
        data["run_index"] = "zero"
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_bool_is_not_an_int(self):
        data = make_record().to_dict()
        data["n_bits"] = True
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_unknown_outcome_rejected(self):
        data = make_record().to_dict()
        data["outcome"] = "exploded"
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_wrong_version_rejected(self):
        data = make_record().to_dict()
        data["version"] = RUN_RECORD_VERSION + 1
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_negative_run_index_rejected(self):
        data = make_record().to_dict()
        data["run_index"] = -1
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_malformed_fault_rejected(self):
        data = make_record().to_dict()
        data["faults"][0].pop("word_index")
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_fault_bit_value_mismatch_rejected(self):
        data = make_record().to_dict()
        data["faults"][0]["stuck_values"] = [1]
        with pytest.raises(TelemetryError):
            validate_record(data)

    def test_bad_counter_value_rejected(self):
        data = make_record().to_dict()
        data["counters"]["corrected_reads"] = 1.5
        with pytest.raises(TelemetryError):
            validate_record(data)


class TestWriterReader:
    def test_write_then_read(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TelemetryWriter(path) as writer:
            for i in range(3):
                writer.write(make_record(run_index=i))
        assert writer.n_written == 3
        loaded = read_records(path)
        assert [r["run_index"] for r in loaded] == [0, 1, 2]

    def test_reader_rejects_junk_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(make_record().to_json() + "\nnot json\n")
        with pytest.raises(TelemetryError, match="not valid JSON"):
            list(iter_records(str(path)))

    def test_reader_rejects_invalid_record(self, tmp_path):
        data = make_record().to_dict()
        data["outcome"] = "meh"
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(data) + "\n")
        with pytest.raises(TelemetryError, match="outcome"):
            read_records(str(path))

    def test_reader_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("\n" + make_record().to_json() + "\n\n")
        assert len(read_records(str(path))) == 1

    def test_write_result_requires_records(self, tmp_path):
        from repro.faults.campaign import CampaignConfig, CampaignResult

        empty = CampaignResult("A", "baseline", "uniform",
                               CampaignConfig(runs=1))
        with TelemetryWriter(str(tmp_path / "t.jsonl")) as writer:
            with pytest.raises(TelemetryError, match="collect_records"):
                writer.write_result(empty)


class TestOrdering:
    def test_sorts_by_run_index(self):
        recs = [make_record(run_index=i) for i in (2, 0, 1)]
        assert [r.run_index for r in records_in_order(recs)] == [0, 1, 2]

    def test_rejects_duplicates(self):
        recs = [make_record(run_index=1), make_record(run_index=1)]
        with pytest.raises(TelemetryError, match="duplicate"):
            records_in_order(recs)
