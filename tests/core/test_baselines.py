"""Tests for the related-work comparison baselines (DMR, checkpoint)."""

import numpy as np
import pytest

from repro.core.baselines import (
    CheckpointModel,
    classify_dmr_run,
    dmr_slowdown,
    run_dmr,
)
from repro.errors import ConfigError
from repro.faults.model import FaultSpec
from repro.faults.injector import apply_faults
from repro.faults.outcomes import Outcome
from repro.kernels.registry import create_app


@pytest.fixture(scope="module")
def bicg():
    app = create_app("P-BICG", scale="small")
    return app, app.fresh_memory(), app.golden_output()


class TestDmr:
    def test_fault_free_runs_agree(self, bicg):
        app, memory, golden = bicg
        output, agreed = run_dmr(app, memory.clone_with_faults())
        assert agreed
        np.testing.assert_array_equal(output, golden)

    def test_dmr_blind_to_permanent_data_faults(self, bicg):
        """The structural blind spot: both executions read the same
        corrupted memory, agree on the same wrong answer, and the
        fault sails through as an SDC."""
        app, memory, golden = bicg
        faulted = memory.clone_with_faults()
        r = faulted.object("r")
        # Corrupt a hot element hard (high exponent bits).
        apply_faults(faulted, [FaultSpec(
            r.base_addr, 0, (28, 29, 30), (1, 1, 1))])
        result = classify_dmr_run(app, faulted, golden)
        assert result.runs_agreed
        assert result.outcome is Outcome.SDC  # silent despite DMR

    def test_dmr_run_does_not_mutate_input_memory(self, bicg):
        app, memory, _golden = bicg
        snapshot = memory.read_pristine(memory.object("s")).copy()
        run_dmr(app, memory)
        np.testing.assert_array_equal(
            memory.read_pristine(memory.object("s")), snapshot)

    def test_dmr_crash_is_loud(self):
        app = create_app("A-Laplacian", scale="small")
        memory = app.fresh_memory()
        golden = app.golden_output()
        h = memory.object("Filter_Height")
        memory.write_object(h, np.array([1 << 20], dtype=np.int32))
        result = classify_dmr_run(app, memory, golden)
        assert result.outcome is Outcome.CRASH

    def test_dmr_timing_cost(self):
        assert dmr_slowdown(1000) == pytest.approx(2.0)
        assert dmr_slowdown(1000, compare_cycles=100) == \
            pytest.approx(2.1)
        with pytest.raises(ConfigError):
            dmr_slowdown(0)


class TestCheckpointModel:
    def test_cost_and_overhead(self):
        model = CheckpointModel(
            writable_bytes=192_000,
            checkpoint_interval_cycles=10_000,
            effective_bw_bytes_per_cycle=192,
        )
        assert model.checkpoint_cost_cycles == 1000
        assert model.overhead_fraction == pytest.approx(0.1)

    def test_for_app_snapshots_full_memory_by_default(self, bicg):
        app, memory, _golden = bicg
        model = CheckpointModel.for_app(
            memory, total_cycles=100_000, n_checkpoints=10)
        assert model.writable_bytes == memory.bytes_allocated
        assert model.checkpoint_interval_cycles == 10_000

    def test_for_app_idealized_dirty_only(self, bicg):
        app, memory, _golden = bicg
        model = CheckpointModel.for_app(
            memory, total_cycles=100_000, n_checkpoints=10,
            full_memory=False)
        writable = sum(
            o.nbytes for o in memory.objects if not o.read_only)
        assert model.writable_bytes == writable
        full = CheckpointModel.for_app(memory, 100_000, 10)
        assert full.overhead_fraction > model.overhead_fraction

    def test_more_frequent_checkpoints_cost_more(self, bicg):
        app, memory, _golden = bicg
        sparse = CheckpointModel.for_app(memory, 100_000, 5)
        dense = CheckpointModel.for_app(memory, 100_000, 50)
        assert dense.overhead_fraction > sparse.overhead_fraction

    def test_validation(self):
        with pytest.raises(ConfigError):
            CheckpointModel(0, 100)
        with pytest.raises(ConfigError):
            CheckpointModel(100, 0)
