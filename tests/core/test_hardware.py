"""Tests for the Section IV-C hardware budget model."""

import pytest

from repro.arch.config import PAPER_CONFIG
from repro.core.hardware import HardwareBudget
from repro.errors import ConfigError


class TestCapacities:
    def test_paper_detection_capacity(self):
        """128B / (32-bit address) = 32 objects for detection."""
        assert HardwareBudget().max_protected_objects(1) == 32

    def test_paper_correction_capacity(self):
        """Two addresses per object halve the capacity: 16 objects."""
        assert HardwareBudget().max_protected_objects(2) == 16

    def test_paper_load_table_capacity(self):
        assert HardwareBudget().max_tracked_loads == 32

    def test_from_config(self):
        budget = HardwareBudget.from_config(PAPER_CONFIG)
        assert budget.addr_table_bytes == 128
        assert budget.pending_compare_entries == 32

    def test_bad_copies_rejected(self):
        with pytest.raises(ConfigError):
            HardwareBudget().max_protected_objects(0)


class TestChecks:
    def test_paper_apps_fit(self):
        """No evaluated app exceeds 5 objects / 22 load instructions."""
        HardwareBudget().check(5, 22, extra_copies=2)

    def test_too_many_objects_rejected(self):
        with pytest.raises(ConfigError):
            HardwareBudget().check(17, 17, extra_copies=2)

    def test_detection_fits_more(self):
        HardwareBudget().check(30, 30, extra_copies=1)

    def test_too_many_loads_rejected(self):
        with pytest.raises(ConfigError):
            HardwareBudget().check(4, 40, extra_copies=1)


class TestComparator:
    def test_two_way_line_compare(self):
        """A 128B line at 256 bits (32B) per cycle: 4 cycles."""
        assert HardwareBudget().compare_cycles(128, n_way=2) == 4

    def test_three_way_needs_two_passes(self):
        assert HardwareBudget().compare_cycles(128, n_way=3) == 8

    def test_small_compare_rounds_up(self):
        assert HardwareBudget().compare_cycles(4, n_way=2) == 1

    def test_bad_size_rejected(self):
        with pytest.raises(ConfigError):
            HardwareBudget().compare_cycles(0)
