"""Tests for the functional detection/correction schemes."""

import numpy as np
import pytest

from repro.arch.address_space import DeviceMemory
from repro.core.schemes import (
    BaselineScheme,
    CorrectionScheme,
    DetectionScheme,
    make_scheme,
)
from repro.core.replication import replica_name
from repro.errors import ConfigError, FaultDetected


@pytest.fixture()
def setup():
    mem = DeviceMemory(1024 * 1024)
    hot = mem.alloc("hot", (64,), np.float32)
    cold = mem.alloc("cold", (64,), np.float32)
    mem.write_object(hot, np.arange(64, dtype=np.float32))
    mem.write_object(cold, np.ones(64, dtype=np.float32))
    return mem, hot, cold


class TestBaseline:
    def test_reads_pass_through_faults(self, setup):
        mem, hot, _cold = setup
        mem.inject_stuck_at(hot.base_addr, 6, 1)
        scheme = BaselineScheme(mem)
        assert not np.array_equal(
            scheme.read(hot), mem.read_pristine(hot))
        assert scheme.stats.unprotected_reads == 1


class TestDetection:
    def test_clean_read_returns_data(self, setup):
        mem, hot, _cold = setup
        scheme = DetectionScheme(mem, [hot])
        np.testing.assert_array_equal(
            scheme.read(hot), mem.read_pristine(hot))
        assert scheme.stats.comparisons == 1

    def test_fault_in_primary_detected(self, setup):
        mem, hot, _cold = setup
        scheme = DetectionScheme(mem, [hot])
        mem.inject_stuck_at(hot.base_addr + 8, 3, 1)
        with pytest.raises(FaultDetected) as exc:
            scheme.read(hot)
        assert exc.value.object_name == "hot"
        assert exc.value.block_index == 0

    def test_fault_in_replica_also_detected(self, setup):
        mem, hot, _cold = setup
        scheme = DetectionScheme(mem, [hot])
        replica = mem.object(replica_name("hot", 1))
        mem.inject_stuck_at(replica.base_addr, 5, 1)
        with pytest.raises(FaultDetected):
            scheme.read(hot)

    def test_stuck_at_matching_data_not_detected(self, setup):
        mem, hot, _cold = setup
        scheme = DetectionScheme(mem, [hot])
        # Element 0 is 0.0f: stuck-at-0 anywhere in it changes nothing.
        mem.inject_stuck_at(hot.base_addr, 4, 0)
        np.testing.assert_array_equal(
            scheme.read(hot), mem.read_pristine(hot))

    def test_unprotected_object_not_checked(self, setup):
        mem, hot, cold = setup
        scheme = DetectionScheme(mem, [hot])
        mem.inject_stuck_at(cold.base_addr, 7, 1)
        scheme.read(cold)  # no exception: cold is unprotected
        assert scheme.stats.unprotected_reads == 1

    def test_cannot_protect_nothing(self, setup):
        mem, _hot, _cold = setup
        with pytest.raises(ConfigError):
            DetectionScheme(mem, [])


class TestCorrection:
    def test_fault_in_primary_corrected(self, setup):
        mem, hot, _cold = setup
        scheme = CorrectionScheme(mem, [hot])
        mem.inject_stuck_at(hot.base_addr + 12, 6, 1)
        np.testing.assert_array_equal(
            scheme.read(hot), mem.read_pristine(hot))
        assert scheme.stats.corrected_reads == 1
        assert scheme.stats.corrected_bytes >= 1

    def test_fault_in_one_replica_outvoted(self, setup):
        mem, hot, _cold = setup
        scheme = CorrectionScheme(mem, [hot])
        replica = mem.object(replica_name("hot", 2))
        mem.inject_stuck_at(replica.base_addr + 4, 2, 1)
        np.testing.assert_array_equal(
            scheme.read(hot), mem.read_pristine(hot))
        # The primary was already correct: nothing counted as repaired.
        assert scheme.stats.corrected_reads == 0

    def test_multi_bit_fault_corrected(self, setup):
        mem, hot, _cold = setup
        scheme = CorrectionScheme(mem, [hot])
        for bit in (0, 9, 17, 30):
            mem.inject_stuck_at(hot.base_addr + bit // 8, bit % 8, 1)
        np.testing.assert_array_equal(
            scheme.read(hot), mem.read_pristine(hot))

    def test_dtype_and_shape_preserved(self, setup):
        mem, hot, _cold = setup
        scheme = CorrectionScheme(mem, [hot])
        out = scheme.read(hot)
        assert out.dtype == np.float32
        assert out.shape == (64,)


class TestFactory:
    def test_names(self, setup):
        mem, hot, _cold = setup
        assert isinstance(make_scheme("baseline", mem, []),
                          BaselineScheme)
        assert isinstance(make_scheme("detection", mem, [hot]),
                          DetectionScheme)

    def test_empty_protection_degrades_to_baseline(self, setup):
        mem, _hot, _cold = setup
        scheme = make_scheme("correction", mem, [])
        assert isinstance(scheme, BaselineScheme)

    def test_unknown_scheme_rejected(self, setup):
        mem, hot, _cold = setup
        with pytest.raises(ConfigError):
            make_scheme("quadruplication", mem, [hot])

    def test_correction_factory(self, setup):
        mem, hot, _cold = setup
        scheme = make_scheme("correction", mem, [hot])
        assert isinstance(scheme, CorrectionScheme)
        assert scheme.extra_copies == 2
