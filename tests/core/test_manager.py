"""Tests for the ReliabilityManager end-to-end API."""

import pytest

from repro.core.manager import ReliabilityManager
from repro.errors import ConfigError
from repro.faults.outcomes import Outcome
from repro.kernels.registry import create_app


class TestProtectionLevels:
    def test_named_levels(self, laplacian_manager):
        m = laplacian_manager
        assert m.protected_names("none") == ()
        assert m.protected_names("hot") == (
            "Filter", "Filter_Height", "Filter_Width")
        assert m.protected_names("all") == (
            "Filter", "Filter_Height", "Filter_Width", "Image")

    def test_integer_levels_are_cumulative(self, laplacian_manager):
        m = laplacian_manager
        assert m.protected_names(0) == ()
        assert m.protected_names(1) == ("Filter",)
        assert m.protected_names(2) == ("Filter", "Filter_Height")

    def test_out_of_range_rejected(self, laplacian_manager):
        with pytest.raises(ConfigError):
            laplacian_manager.protected_names(9)
        with pytest.raises(ConfigError):
            laplacian_manager.protected_names("everything")


class TestSelections:
    def test_selection_kinds(self, laplacian_manager):
        m = laplacian_manager
        for kind in ("hot", "rest", "access-weighted",
                     "miss-weighted", "uniform"):
            sel = m.selection(kind)
            assert sel.population > 0

    def test_hot_selection_covers_hot_object_blocks(
        self, laplacian_manager
    ):
        m = laplacian_manager
        sel = m.selection("hot")
        assert sel.population == 3  # Filter + Height + Width blocks

    def test_rest_excludes_hot(self, laplacian_manager):
        m = laplacian_manager
        hot = m.selection("hot").population
        rest = m.selection("rest").population
        assert hot + rest == m.profile.n_blocks

    def test_unknown_kind_rejected(self, laplacian_manager):
        with pytest.raises(ConfigError):
            laplacian_manager.selection("lucky-dip")


class TestExperiments:
    def test_evaluate_baseline_vs_protected(self, laplacian_manager):
        m = laplacian_manager
        base = m.evaluate(scheme="baseline", protect="none", runs=30,
                          selection="hot")
        prot = m.evaluate(scheme="correction", protect="hot", runs=30,
                          selection="hot")
        bad_base = base.sdc_count + base.count(Outcome.CRASH)
        bad_prot = prot.sdc_count + prot.count(Outcome.CRASH)
        assert bad_base > 0
        assert bad_prot == 0

    def test_motivation_hot_worse_than_rest(self, laplacian_manager):
        m = laplacian_manager
        hot = m.motivation("hot", runs=30)
        rest = m.motivation("rest", runs=30)
        bad_hot = hot.sdc_count + hot.count(Outcome.CRASH)
        bad_rest = rest.sdc_count + rest.count(Outcome.CRASH)
        assert bad_hot > bad_rest

    def test_motivation_space_validated(self, laplacian_manager):
        with pytest.raises(ConfigError):
            laplacian_manager.motivation("lukewarm", runs=5)

    def test_simulate_performance_baseline(self, laplacian_manager):
        report = laplacian_manager.simulate_performance(
            "baseline", "none")
        assert report.cycles > 0
        assert report.replica_transactions == 0

    def test_simulate_performance_protection_adds_replicas(
        self, laplacian_manager
    ):
        report = laplacian_manager.simulate_performance(
            "correction", "hot")
        assert report.replica_transactions > 0
        assert report.scheme_name == "correction"


class TestCaching:
    def test_artifacts_are_cached(self, laplacian_manager):
        m = laplacian_manager
        assert m.profile is m.profile
        assert m.trace is m.trace
        assert m.hot_blocks is m.hot_blocks

    def test_invalid_declarations_rejected_at_construction(self):
        app = create_app("P-BICG", scale="small")
        app.hot_object_names  # sanity: accessible

        class Broken(type(app)):
            @property
            def hot_object_names(self):
                return {"A"}  # not a prefix of ["p", "r", "A"]

        broken = Broken(nx=32, ny=32)
        with pytest.raises(ConfigError):
            ReliabilityManager(broken)
