"""Tests for replica allocation and majority voting."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.core.replication import (
    create_replicas,
    majority_vote,
    replica_name,
)
from repro.errors import ConfigError


@pytest.fixture()
def mem_with_obj():
    mem = DeviceMemory(1024 * 1024)
    obj = mem.alloc("weights", (100,), np.float32)
    mem.write_object(obj, np.arange(100, dtype=np.float32))
    return mem, obj


class TestCreateReplicas:
    def test_duplication(self, mem_with_obj):
        mem, obj = mem_with_obj
        sets = create_replicas(mem, [obj], extra_copies=1)
        replica_set = sets["weights"]
        assert replica_set.n_copies == 2
        replica = replica_set.replicas[0]
        assert replica.name == replica_name("weights", 1)
        np.testing.assert_array_equal(
            mem.read_object(replica), mem.read_object(obj))

    def test_triplication(self, mem_with_obj):
        mem, obj = mem_with_obj
        sets = create_replicas(mem, [obj], extra_copies=2)
        assert sets["weights"].n_copies == 3
        assert len({r.base_addr for r in sets["weights"].all_copies()}) \
            == 3

    def test_replicas_at_distinct_addresses(self, mem_with_obj):
        mem, obj = mem_with_obj
        sets = create_replicas(mem, [obj], extra_copies=2)
        for replica in sets["weights"].replicas:
            assert replica.base_addr != obj.base_addr
            assert replica.nbytes == obj.nbytes

    def test_coloring_changes_channel_and_bank(self, mem_with_obj):
        """Copy k of a block must map to a different memory channel
        than the primary (6-channel line interleaving)."""
        mem, obj = mem_with_obj
        sets = create_replicas(mem, [obj], extra_copies=2)
        primary_ch = (obj.base_addr // BLOCK_BYTES) % 6
        for replica in sets["weights"].replicas:
            replica_ch = (replica.base_addr // BLOCK_BYTES) % 6
            assert replica_ch != primary_ch

    def test_writable_object_rejected(self):
        mem = DeviceMemory(1024 * 1024)
        rw = mem.alloc("out", (8,), np.float32, read_only=False)
        with pytest.raises(ConfigError):
            create_replicas(mem, [rw], extra_copies=1)

    def test_zero_copies_rejected(self, mem_with_obj):
        mem, obj = mem_with_obj
        with pytest.raises(ConfigError):
            create_replicas(mem, [obj], extra_copies=0)

    def test_replicas_copied_before_faults(self, mem_with_obj):
        """Faults injected after replication leave replicas pristine."""
        mem, obj = mem_with_obj
        sets = create_replicas(mem, [obj], extra_copies=1)
        mem.inject_stuck_at(obj.base_addr, 7, 1)
        replica = sets["weights"].replicas[0]
        np.testing.assert_array_equal(
            mem.read_object(replica), mem.read_pristine(obj))


class TestMajorityVote:
    def test_all_agree(self):
        data = np.arange(64, dtype=np.uint8)
        voted, corrected = majority_vote([data, data.copy(),
                                          data.copy()])
        np.testing.assert_array_equal(voted, data)
        assert corrected == 0

    def test_outvotes_corrupt_primary(self):
        clean = np.arange(64, dtype=np.uint8)
        corrupt = clean.copy()
        corrupt[10] ^= 0xFF
        voted, corrected = majority_vote([corrupt, clean.copy(),
                                          clean.copy()])
        np.testing.assert_array_equal(voted, clean)
        assert corrected == 1

    def test_outvotes_corrupt_replica(self):
        clean = np.arange(64, dtype=np.uint8)
        corrupt = clean.copy()
        corrupt[5] ^= 0x0F
        voted, corrected = majority_vote([clean.copy(), corrupt,
                                          clean.copy()])
        np.testing.assert_array_equal(voted, clean)
        assert corrected == 0  # primary was already right

    def test_two_corrupt_copies_win(self):
        """The documented limit: identical corruption in two copies
        defeats the vote (probability ~0 with distinct locations)."""
        clean = np.zeros(4, dtype=np.uint8)
        corrupt = clean.copy()
        corrupt[0] = 0xAA
        voted, _ = majority_vote([clean.copy(), corrupt, corrupt.copy()])
        assert voted[0] == 0xAA

    def test_wrong_copy_count_rejected(self):
        a = np.zeros(4, dtype=np.uint8)
        with pytest.raises(ConfigError):
            majority_vote([a, a])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            majority_vote([np.zeros(4, dtype=np.uint8),
                           np.zeros(5, dtype=np.uint8),
                           np.zeros(4, dtype=np.uint8)])


@given(st.lists(st.integers(min_value=0, max_value=255),
                min_size=1, max_size=32),
       st.integers(min_value=0, max_value=31),
       st.integers(min_value=0, max_value=255))
def test_single_copy_corruption_always_corrected(data, pos, garbage):
    clean = np.array(data, dtype=np.uint8)
    pos = pos % clean.size
    corrupt = clean.copy()
    corrupt[pos] = garbage
    voted, _ = majority_vote([corrupt, clean.copy(), clean.copy()])
    np.testing.assert_array_equal(voted, clean)
