"""Tests for the unified evaluation request surface."""

import pytest

from repro.core.manager import ReliabilityManager
from repro.core.protection import ProtectionSpec
from repro.core.request import EvaluationRequest
from repro.errors import SpecError
from repro.kernels.registry import create_app
from repro.obs.metrics import MetricsRegistry
from repro.runtime.session import Session, SweepSpec


def manager(app="A-Laplacian"):
    return ReliabilityManager(create_app(app, scale="small"))


class TestValidation:
    def test_app_required(self):
        with pytest.raises(SpecError, match="app"):
            EvaluationRequest(app="")

    def test_runs_positive(self):
        with pytest.raises(SpecError, match="runs"):
            EvaluationRequest(app="P-BICG", runs=0)

    def test_jobs_floor(self):
        with pytest.raises(SpecError, match="jobs"):
            EvaluationRequest(app="P-BICG", jobs=0)

    def test_target_margin_range(self):
        with pytest.raises(SpecError, match="target_margin"):
            EvaluationRequest(app="P-BICG", target_margin=1.5)


class TestIdentity:
    def test_knobs_and_sinks_excluded_from_digest(self):
        plain = EvaluationRequest(app="P-BICG", runs=10)
        knobbed = EvaluationRequest(app="P-BICG", runs=10, jobs=8,
                                    batch=16,
                                    metrics=MetricsRegistry())
        assert plain.digest() == knobbed.digest()

    def test_typed_protection_changes_identity(self):
        spec = ProtectionSpec.parse("p=correction")
        a = EvaluationRequest(app="P-BICG", protect=spec)
        b = EvaluationRequest(app="P-BICG", protect="hot")
        assert a.digest() != b.digest()
        assert a.to_dict()["scheme"] == "spec"
        assert a.to_dict()["protect"] == spec.to_dict()

    def test_equals_string_shorthand_is_typed(self):
        request = EvaluationRequest(app="P-BICG",
                                    protect="p=correction")
        assert request.protection == ProtectionSpec.parse(
            "p=correction")

    def test_contextual_shorthand_stays_downstream(self):
        assert EvaluationRequest(app="P-BICG",
                                 protect="hot").protection is None

    def test_conditional_keys_only_when_set(self):
        doc = EvaluationRequest(app="P-BICG").to_dict()
        assert "secded" not in doc
        assert "target_margin" not in doc
        assert "chunk_runs" not in doc


class TestManagerSurface:
    def test_request_equals_kwargs(self):
        m = manager()
        request = EvaluationRequest(app="A-Laplacian",
                                    scheme="correction", protect="hot",
                                    runs=8, seed=5)
        via_request = m.evaluate(request=request)
        via_kwargs = m.evaluate(scheme="correction", protect="hot",
                                runs=8, seed=5)
        assert via_request.to_dict() == via_kwargs.to_dict()

    def test_request_with_typed_protection(self):
        m = manager()
        hot = m.app.object_importance[0]
        request = EvaluationRequest(
            app="A-Laplacian", runs=8, seed=5,
            protect=ProtectionSpec.parse(f"{hot}=correction"))
        result = m.evaluate(request=request)
        assert result.n_runs == 8

    def test_wrong_app_rejected(self):
        request = EvaluationRequest(app="P-BICG", runs=4)
        with pytest.raises(SpecError, match="P-BICG"):
            manager("A-Laplacian").evaluate(request=request)


class TestSessionSurface:
    def test_session_accepts_a_request(self):
        request = EvaluationRequest(app="A-Laplacian",
                                    scheme="baseline", protect="none",
                                    runs=8, seed=5, scale="small",
                                    batch=4, jobs=1)
        session = Session(request)
        assert session.config.batch == 4
        sweep = session.run()
        assert sweep.entries[0].result.n_runs == 8

    def test_from_request_equals_explicit_spec(self):
        request = EvaluationRequest(app="A-Laplacian",
                                    scheme="baseline", protect="none",
                                    runs=8, seed=5, scale="small",
                                    collect_records=True)
        explicit = SweepSpec(apps=("A-Laplacian",),
                             schemes=("baseline",),
                             protects=("none",), runs=8, seed=5,
                             scale="small")
        assert SweepSpec.from_request(request).digest() == \
            explicit.digest()

    def test_provenance_not_supported_by_sessions(self):
        request = EvaluationRequest(app="A-Laplacian", runs=4,
                                    collect_provenance=True)
        with pytest.raises(SpecError, match="provenance"):
            SweepSpec.from_request(request)
