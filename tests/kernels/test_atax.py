"""Tests for the P-ATAX extension workload."""

import numpy as np
import pytest

from repro.core.manager import ReliabilityManager
from repro.faults.outcomes import Outcome
from repro.kernels.atax import Atax
from repro.kernels.base import PlainReader
from repro.kernels.registry import (
    APPLICATIONS,
    EXTENDED_APPLICATIONS,
    create_app,
)
from repro.kernels.trace import Load


class TestAtaxMath:
    def test_matches_reference(self):
        app = Atax(n=48, seed=11)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("A")).astype(np.float64)
        x = memory.read_pristine(memory.object("x")).astype(np.float64)
        np.testing.assert_allclose(out, a.T @ (a @ x), rtol=1e-3)

    def test_tmp_materialized(self):
        app = Atax(n=32)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("A")).astype(np.float64)
        x = memory.read_pristine(memory.object("x")).astype(np.float64)
        np.testing.assert_allclose(
            memory.read_pristine(memory.object("tmp")), a @ x,
            rtol=1e-4)


class TestAtaxTrace:
    def test_kernel1_uncoalesced_kernel2_coalesced(self):
        app = Atax(n=96)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        k1_a = [i for w in trace.kernels[0].iter_warps()
                for i in w.insts
                if isinstance(i, Load) and i.obj == "A"]
        k2_a = [i for w in trace.kernels[1].iter_warps()
                for i in w.insts
                if isinstance(i, Load) and i.obj == "A"]
        assert all(len(i.addrs) == 32 for i in k1_a)
        assert all(len(i.addrs) == 1 for i in k2_a)


class TestAtaxPipeline:
    def test_registered_as_extension_not_core(self):
        assert "P-ATAX" in EXTENDED_APPLICATIONS
        assert "P-ATAX" not in APPLICATIONS
        assert create_app("P-ATAX", scale="small").n == 96

    def test_discovery_and_protection(self):
        # Discovery needs the default scale: at n=96 the hot/cold
        # per-block contrast compresses below the classifier threshold
        # (same scale effect as P-BICG, see DESIGN.md).
        manager = ReliabilityManager(create_app("P-ATAX"))
        assert manager.discover_hot_objects().matches_declaration
        base = manager.evaluate(scheme="baseline", protect="none",
                                runs=30, selection="hot", n_bits=3)
        corr = manager.evaluate(scheme="correction", protect="hot",
                                runs=30, selection="hot", n_bits=3)
        assert base.sdc_count > 0
        assert corr.sdc_count == 0
        assert corr.count(Outcome.CORRECTED) > 0

    def test_protection_overhead_small(self):
        manager = ReliabilityManager(create_app("P-ATAX",
                                                scale="small"))
        base = manager.simulate_performance("baseline", "none")
        prot = manager.simulate_performance("detection", "hot")
        assert prot.slowdown_vs(base) < 1.1
