"""Tests for the flat-access-profile counter-examples."""

import numpy as np
import pytest

from repro.kernels.base import PlainReader
from repro.kernels.blackscholes import BlackScholes
from repro.kernels.gramschmidt import GramSchmidt
from repro.kernels.trace import Load
from repro.profiling.access_profile import profile_trace


class TestBlackScholesMath:
    def test_put_call_parity(self):
        """C - P = S - X*exp(-rT), the no-arbitrage identity."""
        app = BlackScholes(n_options=128, seed=3)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        n = 128
        call, put = out[:n], out[n:]
        s = memory.read_pristine(memory.object("StockPrice"))
        x = memory.read_pristine(memory.object("OptionStrike"))
        t = memory.read_pristine(memory.object("OptionYears"))
        parity = s - x * np.exp(-0.02 * t)
        np.testing.assert_allclose(call - put, parity, rtol=1e-3,
                                   atol=1e-3)

    def test_call_price_bounds(self):
        app = BlackScholes(n_options=64)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        call = out[:64]
        s = memory.read_pristine(memory.object("StockPrice"))
        assert (call >= -1e-6).all()
        assert (call <= s + 1e-6).all()


class TestBlackScholesProfile:
    def test_every_block_read_exactly_once(self):
        """Figure 3(g): all memory blocks equally accessed."""
        app = BlackScholes(n_options=1024)
        memory = app.fresh_memory()
        profile = profile_trace(app.build_trace(memory), memory)
        counts = set(profile.block_reads.values())
        assert counts == {1}

    def test_no_hot_blocks(self):
        from repro.profiling.hot_blocks import classify_hot_blocks

        app = BlackScholes(n_options=1024)
        memory = app.fresh_memory()
        profile = profile_trace(app.build_trace(memory), memory)
        assert not classify_hot_blocks(profile).has_hot_blocks


class TestGramSchmidtMath:
    def test_q_columns_orthonormal(self):
        app = GramSchmidt(n=24, seed=5)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        q = memory.read_pristine(memory.object("Q")).astype(np.float64)
        np.testing.assert_allclose(q.T @ q, np.eye(24), atol=1e-4)

    def test_qr_reconstructs_input(self):
        app = GramSchmidt(n=24, seed=5)
        memory = app.fresh_memory()
        a_original = memory.read_pristine(memory.object("A")).copy()
        app.execute(memory, PlainReader(memory))
        q = memory.read_pristine(memory.object("Q")).astype(np.float64)
        r = memory.read_pristine(memory.object("R")).astype(np.float64)
        np.testing.assert_allclose(q @ r, a_original, rtol=1e-3,
                                   atol=1e-3)

    def test_r_upper_triangular(self):
        app = GramSchmidt(n=16)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        r = memory.read_pristine(memory.object("R"))
        assert np.allclose(np.tril(r, k=-1), 0.0)


class TestGramSchmidtProfile:
    def test_staircase_profile_no_hot_blocks(self):
        """Figure 3(h): counts rise in small steps, no dominant block."""
        from repro.profiling.hot_blocks import classify_hot_blocks

        app = GramSchmidt(n=64)
        memory = app.fresh_memory()
        profile = profile_trace(app.build_trace(memory), memory)
        assert not classify_hot_blocks(profile).has_hot_blocks
        counts = np.array(
            [c for _a, c in profile.sorted_counts()], dtype=float
        )
        # Gentle ramp: adjacent sorted counts never jump by more than
        # a small factor once past the low tail.
        tail = counts[counts > 4]
        assert (tail[1:] / tail[:-1]).max() < 2.5

    def test_earlier_columns_read_more(self):
        app = GramSchmidt(n=48)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        q = memory.object("Q")
        from collections import Counter

        counts = Counter()
        for kernel in trace.kernels:
            for w in kernel.iter_warps():
                for i in w.insts:
                    if isinstance(i, Load) and i.obj == "Q":
                        for addr in i.addrs:
                            counts[addr] += 1
        # Block of column 0 (row 0) vs a late column's block.
        early = counts[q.base_addr]
        assert early == max(counts.values())
