"""Application-specific tests for the AxBench image filters."""

import numpy as np
import pytest

from repro.errors import KernelCrash
from repro.kernels.base import PlainReader
from repro.kernels.laplacian import LAPLACIAN, Laplacian
from repro.kernels.meanfilter import Meanfilter
from repro.kernels.sobel import SOBEL_GX, SOBEL_GY, Sobel
from repro.kernels.trace import Load


def manual_conv(image, kernel):
    h, w = image.shape
    out = np.zeros((h, w))
    for y in range(h):
        for x in range(w):
            acc = 0.0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    yy, xx = y + dy, x + dx
                    if 0 <= yy < h and 0 <= xx < w:
                        acc += kernel[dy + 1, dx + 1] * image[yy, xx]
            out[y, x] = acc
    return out


class TestLaplacianMath:
    def test_matches_manual_convolution(self):
        app = Laplacian(height=16, width=16, seed=2)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        image = memory.read_pristine(memory.object("Image"))
        expected = np.clip(
            np.abs(manual_conv(image.astype(np.float64), LAPLACIAN)),
            0, 255,
        )
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-3)

    def test_uniform_image_gives_zero_interior(self):
        app = Laplacian(height=8, width=8)
        memory = app.fresh_memory()
        memory.write_object(
            memory.object("Image"),
            np.full((8, 8), 100.0, dtype=np.float32),
        )
        out = app.execute(memory, PlainReader(memory))
        assert np.allclose(out[1:-1, 1:-1], 0.0, atol=1e-3)


class TestSobelMath:
    def test_vertical_edge_detected(self):
        app = Sobel(height=8, width=8)
        memory = app.fresh_memory()
        image = np.zeros((8, 8), dtype=np.float32)
        image[:, 4:] = 200.0
        memory.write_object(memory.object("Image"), image)
        out = app.execute(memory, PlainReader(memory))
        # Gradient magnitude peaks along the edge columns.
        assert out[4, 3] > 100.0
        assert out[4, 1] == pytest.approx(0.0, abs=1e-3)

    def test_filter_object_packs_both_kernels(self):
        app = Sobel(height=8, width=8)
        memory = app.fresh_memory()
        coeffs = memory.read_pristine(memory.object("Filter"))
        np.testing.assert_array_equal(coeffs[:9], SOBEL_GX.ravel())
        np.testing.assert_array_equal(coeffs[9:], SOBEL_GY.ravel())


class TestMeanfilterMath:
    def test_smooths_noise(self):
        app = Meanfilter(height=32, width=32, seed=7)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        image = memory.read_pristine(memory.object("Image"))
        # Interior variance decreases under a box filter.
        assert out[4:-4, 4:-4].std() < image[4:-4, 4:-4].std()

    def test_no_filter_object(self):
        app = Meanfilter(height=8, width=8)
        memory = app.fresh_memory()
        with pytest.raises(Exception):
            memory.object("Filter")


class TestBoundsFaults:
    """Corrupted Filter_Height/Width: truncation (SDC) vs crash."""

    def test_truncated_height_is_silent_corruption(self):
        app = Laplacian(height=16, width=16)
        memory = app.fresh_memory()
        h = memory.object("Filter_Height")
        memory.write_object(h, np.array([8], dtype=np.int32))
        out = app.execute(memory, PlainReader(memory))
        golden = app.golden_output()
        assert (out[8:] == 0).all()  # truncated rows never written
        assert app.error_metric.compare(golden, out).is_sdc

    def test_oversized_height_crashes(self):
        app = Laplacian(height=16, width=16)
        memory = app.fresh_memory()
        memory.write_object(
            memory.object("Filter_Height"),
            np.array([1 << 20], dtype=np.int32),
        )
        with pytest.raises(KernelCrash):
            app.execute(memory, PlainReader(memory))

    def test_negative_height_crashes(self):
        app = Laplacian(height=16, width=16)
        memory = app.fresh_memory()
        memory.write_object(
            memory.object("Filter_Height"),
            np.array([-3], dtype=np.int32),
        )
        with pytest.raises(KernelCrash):
            app.execute(memory, PlainReader(memory))


class TestInputClamping:
    def test_faulted_pixel_damage_is_local(self):
        """uint8 image semantics: a pixel stuck to a huge float clamps
        to 255, so corruption stays in the 3x3 neighbourhood."""
        app = Laplacian(height=32, width=32)
        memory = app.fresh_memory()
        img = memory.object("Image")
        # Stick the exponent byte of pixel (16, 16).
        addr = img.base_addr + (16 * 32 + 16) * 4 + 3
        for bit in range(8):
            memory.inject_stuck_at(addr, bit, 1)
        out = app.execute(memory, PlainReader(memory))
        golden = app.golden_output()
        diff = np.abs(out - golden)
        assert diff.max() > 0
        untouched = diff.copy()
        untouched[14:19, 14:19] = 0
        assert untouched.max() == 0


class TestStencilTraces:
    @pytest.mark.parametrize("cls", [Laplacian, Sobel])
    def test_filter_loads_per_warp(self, cls):
        app = cls(height=16, width=32)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        warp = next(trace.kernels[0].iter_warps())
        filter_loads = [
            i for i in warp.insts
            if isinstance(i, Load) and i.obj == "Filter"
        ]
        assert len(filter_loads) == 9  # one per window tap
        assert all(len(i.addrs) == 1 for i in filter_loads)

    def test_meanfilter_bounds_loads_per_row(self):
        app = Meanfilter(height=16, width=32)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        warp = next(trace.kernels[0].iter_warps())
        h_loads = [
            i for i in warp.insts
            if isinstance(i, Load) and i.obj == "Filter_Height"
        ]
        assert len(h_loads) == 3  # one per window row

    def test_hot_access_share_dominates(self):
        """Table III: Filter/Height/Width absorb most transactions."""
        app = Laplacian()  # default 96x96
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        hot = 0
        total = 0
        for kernel in trace.kernels:
            for w in kernel.iter_warps():
                for i in w.insts:
                    if isinstance(i, Load):
                        total += len(i.addrs)
                        if i.obj in ("Filter", "Filter_Height",
                                     "Filter_Width"):
                            hot += len(i.addrs)
        assert hot / total > 0.55  # paper: 73%
