"""Application-specific tests for A-SRAD."""

import numpy as np
import pytest

from repro.errors import KernelCrash
from repro.kernels.base import PlainReader
from repro.kernels.srad import Srad
from repro.kernels.trace import Load, Store


class TestSradMath:
    def test_output_shape_and_range(self):
        app = Srad(rows=24, cols=24)
        out = app.golden_output()
        assert out.shape == (24, 24)
        # The compressed output is an 8-bit image: log(J)*255 with
        # J = exp(image/255) in [1, e] gives values in [0, 255].
        assert out.min() >= 0.0
        assert out.max() <= 255.0

    def test_diffusion_smooths_speckle(self):
        app = Srad(rows=32, cols=32, seed=4)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        j_after = memory.read_pristine(memory.object("J"))
        j0 = np.exp(
            memory.read_pristine(memory.object("Image")) / 255.0
        )
        # Anisotropic diffusion reduces local variation of J.
        assert np.abs(np.diff(j_after, axis=0)).mean() < \
            np.abs(np.diff(j0, axis=0)).mean()

    def test_uniform_image_is_fixed_point(self):
        app = Srad(rows=16, cols=16)
        memory = app.fresh_memory()
        memory.write_object(
            memory.object("Image"),
            np.full((16, 16), 128.0, dtype=np.float32),
        )
        out = app.execute(memory, PlainReader(memory))
        # J stays exp(128/255); the compressed image is log(J)*255,
        # i.e. exactly 128 everywhere.
        np.testing.assert_allclose(out, 128.0, rtol=1e-5)

    def test_neighbor_indices_initialized_clamped(self):
        app = Srad(rows=16, cols=16)
        memory = app.fresh_memory()
        i_n = memory.read_pristine(memory.object("i_N"))
        i_s = memory.read_pristine(memory.object("i_S"))
        assert i_n[0] == 0  # clamped at the border
        assert i_s[-1] == 15
        np.testing.assert_array_equal(i_n[1:], np.arange(15))


class TestSradFaults:
    def test_out_of_range_index_crashes(self):
        app = Srad(rows=16, cols=16)
        memory = app.fresh_memory()
        i_n = memory.object("i_N")
        memory.inject_stuck_at(i_n.base_addr + 2, 7, 1)  # huge int
        with pytest.raises(KernelCrash):
            app.execute(memory, PlainReader(memory))

    def test_in_range_wrong_index_changes_rows(self):
        app = Srad(rows=16, cols=16)
        memory = app.fresh_memory()
        i_n = memory.object("i_N")
        # Point row 8's north neighbour at row 0 instead of row 7.
        idx = memory.read_pristine(i_n).copy()
        idx[8] = 0
        memory.write_object(i_n, idx)
        out = app.execute(memory, PlainReader(memory))
        golden = app.golden_output()
        diff_rows = np.unique(np.nonzero(out != golden)[0])
        assert 8 in diff_rows
        assert len(diff_rows) <= 3  # damage stays local


class TestSradTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        app = Srad(rows=32, cols=32)
        memory = app.fresh_memory()
        return app.build_trace(memory)

    def test_three_kernels(self, trace):
        assert [k.name for k in trace.kernels] == \
            ["srad_extract", "srad_cuda_1", "srad_cuda_2"]

    def test_extract_reads_image_once_per_block(self, trace):
        image_loads = sum(
            len(i.addrs)
            for w in trace.kernels[0].iter_warps()
            for i in w.insts
            if isinstance(i, Load) and i.obj == "Image"
        )
        assert image_loads == 32 * 32 * 4 // 128  # one per block

    def test_kernel1_loads_all_four_index_arrays(self, trace):
        warp = next(trace.kernels[1].iter_warps())
        loaded = {
            i.obj for i in warp.insts if isinstance(i, Load)
        }
        assert {"i_N", "i_S", "i_E", "i_W", "J"} <= loaded

    def test_kernel1_stores_derivatives_and_coefficient(self, trace):
        warp = next(trace.kernels[1].iter_warps())
        stored = {
            i.obj for i in warp.insts if isinstance(i, Store)
        }
        assert stored == {"dN", "dS", "dW", "dE", "c"}

    def test_kernel2_updates_j(self, trace):
        warp = next(trace.kernels[2].iter_warps())
        stored = {i.obj for i in warp.insts if isinstance(i, Store)}
        assert stored == {"J"}
