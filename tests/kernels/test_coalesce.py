"""Tests for the coalescer — the source of the paper's transaction
counts, so the access-pattern classes must come out exactly."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.errors import TraceError
from repro.kernels.coalesce import (
    broadcast_transaction,
    coalesce_indices,
    strided_transactions,
)


@pytest.fixture()
def mem():
    return DeviceMemory(1024 * 1024)


@pytest.fixture()
def matrix(mem):
    return mem.alloc("A", (256, 256), np.float32)


class TestAccessClasses:
    def test_broadcast_is_one_transaction(self, matrix):
        assert len(broadcast_transaction(matrix, 12345)) == 1

    def test_unit_stride_aligned_is_one_transaction(self, matrix):
        # 32 consecutive 4B elements = exactly one 128B block.
        txns = strided_transactions(matrix, start=0, stride=1, lanes=32)
        assert len(txns) == 1

    def test_unit_stride_misaligned_is_two(self, matrix):
        txns = strided_transactions(matrix, start=16, stride=1, lanes=32)
        assert len(txns) == 2

    def test_stride_two_spans_two_blocks(self, matrix):
        txns = strided_transactions(matrix, start=0, stride=2, lanes=32)
        assert len(txns) == 2

    def test_column_major_degenerates_to_32(self, matrix):
        # Lane stride = one matrix row (256 floats = 1KB >> 128B).
        txns = strided_transactions(matrix, start=0, stride=256, lanes=32)
        assert len(txns) == 32

    def test_duplicate_lane_indices_merge(self, matrix):
        txns = coalesce_indices(matrix, [0, 0, 1, 1, 31, 31])
        assert len(txns) == 1


class TestResults:
    def test_addresses_are_block_aligned(self, matrix):
        txns = strided_transactions(matrix, 100, 3, 32)
        assert all(a % BLOCK_BYTES == 0 for a in txns)

    def test_addresses_sorted_unique(self, matrix):
        txns = coalesce_indices(matrix, [500, 10, 700, 10])
        assert list(txns) == sorted(set(txns))

    def test_addresses_inside_allocation(self, matrix):
        txns = coalesce_indices(matrix, [256 * 256 - 1])
        end = matrix.base_addr + matrix.n_blocks * BLOCK_BYTES
        assert all(matrix.base_addr <= a < end for a in txns)


class TestValidation:
    def test_empty_lanes_rejected(self, matrix):
        with pytest.raises(TraceError):
            coalesce_indices(matrix, [])

    def test_out_of_range_rejected(self, matrix):
        with pytest.raises(TraceError):
            coalesce_indices(matrix, [256 * 256])
        with pytest.raises(TraceError):
            coalesce_indices(matrix, [-1])

    def test_zero_lanes_strided_rejected(self, matrix):
        with pytest.raises(TraceError):
            strided_transactions(matrix, 0, 1, 0)


@given(st.lists(st.integers(min_value=0, max_value=256 * 256 - 1),
                min_size=1, max_size=32))
def test_transaction_count_bounds(lane_indices):
    mem = DeviceMemory(1024 * 1024)
    obj = mem.alloc("A", (256, 256), np.float32)
    txns = coalesce_indices(obj, lane_indices)
    distinct_blocks = {
        (obj.base_addr + i * 4) // BLOCK_BYTES for i in lane_indices
    }
    assert len(txns) == len(distinct_blocks)
    assert 1 <= len(txns) <= len(lane_indices)
