"""Tests for trace-generation helpers."""

import numpy as np
import pytest

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.kernels import common


@pytest.fixture()
def obj():
    mem = DeviceMemory(1024 * 1024)
    mem.alloc("pad", (5,), np.float32)  # shift base off zero
    return mem.alloc("v", (1024,), np.float32)


class TestBlockAddr:
    def test_first_element(self, obj):
        assert common.block_addr(obj, 0) == obj.base_addr

    def test_element_32_next_block(self, obj):
        assert common.block_addr(obj, 32) == obj.base_addr + BLOCK_BYTES

    def test_alignment(self, obj):
        for idx in (0, 1, 31, 32, 100, 1023):
            assert common.block_addr(obj, idx) % BLOCK_BYTES == 0


class TestContiguousBlocks:
    def test_single_block(self, obj):
        assert common.contiguous_blocks(obj, 0, 32) == (obj.base_addr,)

    def test_straddling(self, obj):
        blocks = common.contiguous_blocks(obj, 16, 32)
        assert blocks == (obj.base_addr, obj.base_addr + BLOCK_BYTES)

    def test_single_element(self, obj):
        assert len(common.contiguous_blocks(obj, 77, 1)) == 1

    def test_agrees_with_coalescer(self, obj):
        from repro.kernels.coalesce import coalesce_indices

        for start, n in ((0, 32), (16, 32), (100, 7), (1000, 24)):
            fast = common.contiguous_blocks(obj, start, n)
            slow = coalesce_indices(obj, range(start, start + n))
            assert fast == slow


class TestScatteredBlocks:
    def test_deduplicates(self, obj):
        assert len(common.scattered_blocks(obj, [0, 1, 2])) == 1

    def test_agrees_with_coalescer(self, obj):
        from repro.kernels.coalesce import coalesce_indices

        idx = np.array([0, 33, 999, 34, 512])
        assert common.scattered_blocks(obj, idx) == \
            coalesce_indices(obj, idx)


class TestPartitioning:
    def test_warp_partition_exact(self):
        assert common.warp_partition(64) == [(0, 32), (32, 32)]

    def test_warp_partition_remainder(self):
        assert common.warp_partition(40) == [(0, 32), (32, 8)]

    def test_warp_partition_small(self):
        assert common.warp_partition(5) == [(0, 5)]

    def test_ctas_of_threads(self):
        assert common.ctas_of_threads(600, 256) == \
            [(0, 256), (256, 256), (512, 88)]

    def test_ctas_bad_size(self):
        with pytest.raises(ValueError):
            common.ctas_of_threads(10, 0)
