"""Tests for the application registry."""

import pytest

from repro.errors import ConfigError
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
    resilience_apps,
)


def test_eight_resilience_apps_in_table2_order():
    assert list(APPLICATIONS) == [
        "C-NN", "P-BICG", "P-GESUMMV", "P-MVT",
        "A-Laplacian", "A-Meanfilter", "A-Sobel", "A-SRAD",
    ]


def test_two_flat_apps():
    assert set(FLAT_APPLICATIONS) == {"C-BlackScholes", "P-GRAMSCHM"}


def test_create_by_name_sets_name():
    for name in list(APPLICATIONS) + list(FLAT_APPLICATIONS):
        assert create_app(name, scale="small").name == name


def test_unknown_app_rejected():
    with pytest.raises(ConfigError):
        create_app("X-UNKNOWN")


def test_unknown_scale_rejected():
    with pytest.raises(ConfigError):
        create_app("P-BICG", scale="huge")


def test_small_scale_is_smaller():
    small = create_app("P-BICG", scale="small")
    default = create_app("P-BICG")
    assert small.nx < default.nx


def test_kwargs_override_scale():
    app = create_app("P-BICG", scale="small", nx=17, ny=19)
    assert (app.nx, app.ny) == (17, 19)


def test_seed_passed_through():
    assert create_app("P-MVT", scale="small", seed=99).seed == 99


def test_resilience_apps_constructs_all():
    apps = resilience_apps(scale="small")
    assert [a.name for a in apps] == list(APPLICATIONS)
