"""Tests for the trace representation and validation."""

import pytest

from repro.errors import TraceError
from repro.kernels.trace import (
    AppTrace,
    Compute,
    CtaTrace,
    KernelTrace,
    Load,
    Store,
    WarpTrace,
)


def make_warp(warp_id=0, insts=None):
    return WarpTrace(warp_id, insts if insts is not None else [
        Compute(2),
        Load("obj", (0, 128)),
        Compute(1, wait=True),
        Store("out", (256,)),
    ])


class TestWarpTrace:
    def test_valid_warp_passes(self):
        make_warp().validate()

    def test_load_transaction_count(self):
        assert make_warp().n_load_transactions == 2

    def test_zero_compute_rejected(self):
        warp = make_warp(insts=[Compute(0)])
        with pytest.raises(TraceError):
            warp.validate()

    def test_empty_load_rejected(self):
        warp = make_warp(insts=[Load("o", ())])
        with pytest.raises(TraceError):
            warp.validate()

    def test_negative_address_rejected(self):
        warp = make_warp(insts=[Load("o", (-128,))])
        with pytest.raises(TraceError):
            warp.validate()

    def test_unknown_kind_rejected(self):
        warp = make_warp(insts=["bogus"])
        with pytest.raises(TraceError):
            warp.validate()


class TestKernelTrace:
    def test_warp_count(self):
        kernel = KernelTrace("k", [
            CtaTrace(0, [make_warp(0), make_warp(1)]),
            CtaTrace(1, [make_warp(2)]),
        ])
        assert kernel.n_warps == 3
        assert [w.warp_id for w in kernel.iter_warps()] == [0, 1, 2]

    def test_duplicate_warp_ids_rejected(self):
        kernel = KernelTrace("k", [
            CtaTrace(0, [make_warp(0), make_warp(0)]),
        ])
        with pytest.raises(TraceError):
            kernel.validate()


class TestAppTrace:
    def test_empty_app_rejected(self):
        with pytest.raises(TraceError):
            AppTrace("app", []).validate()

    def test_total_transactions(self):
        app = AppTrace("app", [
            KernelTrace("k1", [CtaTrace(0, [make_warp(0)])]),
            KernelTrace("k2", [CtaTrace(0, [make_warp(0)])]),
        ])
        assert app.total_load_transactions == 4

    def test_iter_loads_yields_kernel_and_warp(self):
        app = AppTrace("app", [
            KernelTrace("k1", [CtaTrace(0, [make_warp(7)])]),
        ])
        loads = list(app.iter_loads())
        assert len(loads) == 1
        kernel_name, warp_id, load = loads[0]
        assert kernel_name == "k1"
        assert warp_id == 7
        assert load.obj == "obj"


class TestInstructionTypes:
    def test_compute_defaults(self):
        assert Compute(3).wait is False

    def test_namedtuple_equality(self):
        assert Load("a", (0,)) == Load("a", (0,))
        assert Load("a", (0,)) != Load("a", (128,))
        # NamedTuples compare by contents, so kind is distinguished by
        # isinstance checks (as the simulator does), not equality.
        assert isinstance(Store("a", (0,)), Store)
        assert not isinstance(Store("a", (0,)), Load)
