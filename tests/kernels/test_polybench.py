"""Application-specific tests for the Polybench workloads."""

import numpy as np
import pytest

from repro.kernels.base import PlainReader
from repro.kernels.bicg import Bicg
from repro.kernels.gesummv import ALPHA, BETA, Gesummv
from repro.kernels.mvt import Mvt
from repro.kernels.trace import Load


def _load_counts(trace, obj_name):
    total = 0
    for kernel in trace.kernels:
        for warp in kernel.iter_warps():
            for inst in warp.insts:
                if isinstance(inst, Load) and inst.obj == obj_name:
                    total += len(inst.addrs)
    return total


class TestBicgMath:
    def test_matches_reference(self):
        app = Bicg(nx=64, ny=64, seed=5)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("A"))
        r = memory.read_pristine(memory.object("r"))
        p = memory.read_pristine(memory.object("p"))
        expected = np.concatenate([a.T @ r, a @ p]).astype(np.float32)
        np.testing.assert_allclose(out, expected, rtol=1e-5)

    def test_output_length(self):
        app = Bicg(nx=32, ny=48)
        assert app.golden_output().shape == (48 + 32,)


class TestBicgTrace:
    """The Listing 1 access structure: r broadcasts, A streams."""

    @pytest.fixture(scope="class")
    def bundle(self):
        app = Bicg(nx=128, ny=128)
        memory = app.fresh_memory()
        return app, memory, app.build_trace(memory)

    def test_kernel_count(self, bundle):
        _app, _m, trace = bundle
        assert [k.name for k in trace.kernels] == \
            ["bicg_kernel1", "bicg_kernel2"]

    def test_r_transactions_equal_a_transactions_in_k1(self, bundle):
        # Per warp per row: one coalesced A transaction and one r
        # broadcast -> equal totals within kernel 1.
        _app, _m, trace = bundle
        k1 = trace.kernels[0]
        a = sum(len(i.addrs) for w in k1.iter_warps()
                for i in w.insts if isinstance(i, Load) and i.obj == "A")
        r = sum(len(i.addrs) for w in k1.iter_warps()
                for i in w.insts if isinstance(i, Load) and i.obj == "r")
        assert a == r == 128 * (128 // 32)

    def test_k2_a_loads_are_32_way_uncoalesced(self, bundle):
        _app, _m, trace = bundle
        k2 = trace.kernels[1]
        a_loads = [i for w in k2.iter_warps() for i in w.insts
                   if isinstance(i, Load) and i.obj == "A"]
        assert all(len(i.addrs) == 32 for i in a_loads)

    def test_hot_share_near_paper_value(self):
        """Table III reports 5.7% of transactions to r+p at NX=NY=3072;
        the ratio is scale-free for NX=NY."""
        app = Bicg()  # default scale
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        hot = _load_counts(trace, "r") + _load_counts(trace, "p")
        total = sum(
            _load_counts(trace, o)
            for o in ("A", "r", "p", "s", "q", "tmp") if o != "tmp"
        )
        assert 0.05 <= hot / total <= 0.065


class TestGesummv:
    def test_matches_reference(self):
        app = Gesummv(n=64, seed=3)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("A"))
        b = memory.read_pristine(memory.object("B"))
        x = memory.read_pristine(memory.object("x"))
        expected = ALPHA * (a @ x) + BETA * (b @ x)
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_tmp_written_to_memory(self):
        app = Gesummv(n=64)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("A"))
        x = memory.read_pristine(memory.object("x"))
        np.testing.assert_allclose(
            memory.read_pristine(memory.object("tmp")), a @ x, rtol=1e-4)

    def test_fault_in_tmp_propagates_to_y(self):
        app = Gesummv(n=64)
        memory = app.fresh_memory()
        tmp = memory.object("tmp")
        memory.inject_stuck_at(tmp.base_addr + 3, 6, 1)  # high exponent
        out = app.execute(memory, PlainReader(memory))
        golden = app.golden_output()
        assert abs(out[0] - golden[0]) > 1.0
        np.testing.assert_allclose(out[1:], golden[1:], rtol=1e-5)

    def test_both_matrices_uncoalesced(self):
        app = Gesummv(n=96)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        for obj in ("A", "B"):
            loads = [
                i for k in trace.kernels for w in k.iter_warps()
                for i in w.insts
                if isinstance(i, Load) and i.obj == obj
            ]
            assert all(len(i.addrs) == 32 for i in loads)


class TestMvt:
    def test_matches_reference(self):
        app = Mvt(n=64, seed=9)
        memory = app.fresh_memory()
        out = app.execute(memory, PlainReader(memory))
        a = memory.read_pristine(memory.object("a"))
        y1 = memory.read_pristine(memory.object("y1"))
        y2 = memory.read_pristine(memory.object("y2"))
        x1 = memory.read_pristine(memory.object("x1"))
        x2 = memory.read_pristine(memory.object("x2"))
        # x1/x2 in memory were overwritten by execute; recompute inputs
        # from a fresh instance instead.
        fresh = Mvt(n=64, seed=9).fresh_memory()
        x1_init = fresh.read_pristine(fresh.object("x1"))
        x2_init = fresh.read_pristine(fresh.object("x2"))
        expected = np.concatenate([
            x1_init + a @ y1, x2_init + a.T @ y2
        ])
        np.testing.assert_allclose(out, expected, rtol=1e-4)

    def test_kernel1_uncoalesced_kernel2_coalesced(self):
        app = Mvt(n=96)
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        k1_loads = [
            i for w in trace.kernels[0].iter_warps() for i in w.insts
            if isinstance(i, Load) and i.obj == "a"
        ]
        k2_loads = [
            i for w in trace.kernels[1].iter_warps() for i in w.insts
            if isinstance(i, Load) and i.obj == "a"
        ]
        assert all(len(i.addrs) == 32 for i in k1_loads)
        assert all(len(i.addrs) == 1 for i in k2_loads)

    def test_hot_share_near_paper_value(self):
        app = Mvt()
        memory = app.fresh_memory()
        trace = app.build_trace(memory)
        hot = _load_counts(trace, "y1") + _load_counts(trace, "y2")
        total = hot + _load_counts(trace, "a") \
            + _load_counts(trace, "x1") + _load_counts(trace, "x2")
        assert 0.045 <= hot / total <= 0.075  # paper: 5.8%
