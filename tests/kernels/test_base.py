"""Tests for the application base class and trace builder."""

import numpy as np
import pytest

from repro.arch.address_space import DeviceMemory
from repro.errors import ConfigError, TraceError
from repro.kernels.base import GpuApplication, PlainReader, TraceBuilder
from repro.kernels.trace import Compute, Load, Store
from repro.metrics.vector import VectorDeviationMetric


class _Toy(GpuApplication):
    """Minimal concrete app for base-class tests."""

    name = "toy"
    suite = "test"

    def __init__(self, importance=("a", "b"), hot=("a",), seed=1):
        self._importance = list(importance)
        self._hot = set(hot)
        super().__init__(seed)

    def _make_metric(self):
        return VectorDeviationMetric()

    @property
    def object_importance(self):
        return list(self._importance)

    @property
    def hot_object_names(self):
        return set(self._hot)

    def setup(self, memory):
        a = memory.alloc("a", (8,), np.float32)
        b = memory.alloc("b", (8,), np.float32)
        memory.alloc("out", (8,), np.float32, read_only=False)
        rng = self.rng(0)
        memory.write_object(a, rng.uniform(size=8))
        memory.write_object(b, rng.uniform(size=8))

    def execute(self, memory, reader):
        a = reader.read(memory.object("a"))
        b = reader.read(memory.object("b"))
        memory.write_object(memory.object("out"), a + b)
        return memory.read_object(memory.object("out"))

    def build_trace(self, memory):
        from repro.kernels.trace import AppTrace, CtaTrace, KernelTrace

        builder = TraceBuilder(0)
        builder.load_indices(memory.object("a"), range(8))
        builder.load_indices(memory.object("b"), range(8))
        builder.compute(2, wait=True)
        builder.store_indices(memory.object("out"), range(8))
        return AppTrace(self.name, [
            KernelTrace("k", [CtaTrace(0, [builder.build()])])
        ])


class TestGpuApplication:
    def test_fresh_memory_sets_up(self):
        app = _Toy()
        mem = app.fresh_memory()
        assert mem.object("a").read_only
        assert not mem.object("out").read_only

    def test_golden_is_cached_and_deterministic(self):
        app = _Toy()
        first = app.golden_output()
        assert app.golden_output() is first
        np.testing.assert_array_equal(first, _Toy().golden_output())

    def test_seed_changes_golden(self):
        a = _Toy(seed=1).golden_output()
        b = _Toy(seed=2).golden_output()
        assert not np.array_equal(a, b)

    def test_hot_objects_selects_importance_order(self):
        app = _Toy(importance=("a", "b"), hot=("a",))
        mem = app.fresh_memory()
        assert [o.name for o in app.hot_objects(mem)] == ["a"]
        assert [o.name for o in app.input_objects(mem)] == ["a", "b"]

    def test_validate_rejects_duplicate_importance(self):
        app = _Toy(importance=("a", "a"), hot=("a",))
        with pytest.raises(ConfigError):
            app.validate_declarations()

    def test_validate_rejects_unknown_hot(self):
        app = _Toy(importance=("a", "b"), hot=("zzz",))
        with pytest.raises(ConfigError):
            app.validate_declarations()

    def test_validate_rejects_non_prefix_hot(self):
        app = _Toy(importance=("a", "b"), hot=("b",))
        with pytest.raises(ConfigError):
            app.validate_declarations()

    def test_plain_reader_reads_faults(self):
        app = _Toy()
        mem = app.fresh_memory()
        obj = mem.object("a")
        mem.inject_stuck_at(obj.base_addr + 3, 6, 1)
        reader = PlainReader(mem)
        assert not np.array_equal(reader.read(obj),
                                  mem.read_pristine(obj))


class TestTraceBuilder:
    def test_merges_adjacent_computes(self):
        warp = TraceBuilder(0).compute(2).compute(3).build()
        assert warp.insts == [Compute(5, False)]

    def test_wait_breaks_merge(self):
        warp = TraceBuilder(0).compute(2).compute(1, wait=True).build()
        assert warp.insts == [Compute(2, False), Compute(1, True)]

    def test_load_store_shapes(self):
        mem = DeviceMemory(1024 * 1024)
        obj = mem.alloc("o", (64,), np.float32)
        warp = (
            TraceBuilder(3)
            .load_broadcast(obj, 5)
            .load_strided(obj, 0, 1, 32)
            .store_indices(obj, [0, 40])
            .build()
        )
        assert warp.warp_id == 3
        assert isinstance(warp.insts[0], Load)
        assert len(warp.insts[0].addrs) == 1
        assert isinstance(warp.insts[2], Store)
        assert len(warp.insts[2].addrs) == 2

    def test_zero_compute_rejected(self):
        with pytest.raises(TraceError):
            TraceBuilder(0).compute(0)
