"""Application-specific tests for C-NN."""

import numpy as np
import pytest

from repro.kernels.base import PlainReader
from repro.kernels.cnn import (
    CLASSES,
    FC_HIDDEN,
    FC_IN,
    L1_MAPS,
    L1_OUT,
    L2_MAPS,
    Cnn,
    activation,
)
from repro.kernels.trace import Load


class TestNetworkStructure:
    def test_layer_dimensions(self):
        assert FC_IN == L2_MAPS * 5 * 5 == 1250
        assert L1_OUT == 13  # (29-5)/2 + 1, matching the CUDA grid

    def test_weight_layouts_match_listing2(self):
        app = Cnn(batch=2)
        memory = app.fresh_memory()
        # Listing 2: weightBegin = blockID * 26 (bias + 25 weights).
        assert memory.object("Layer1_Weights").nbytes == \
            L1_MAPS * 26 * 4
        assert memory.object("Layer2_Weights").nbytes == \
            L2_MAPS * L1_MAPS * 26 * 4

    def test_activation_is_listing2_tanh(self):
        x = np.array([0.0, 1.0, -2.0])
        np.testing.assert_allclose(
            activation(x), 1.7159 * np.tanh(0.66666667 * x))

    def test_activation_saturates(self):
        assert abs(activation(np.array([1e30]))[0]) <= 1.7159 + 1e-9


class TestForwardPass:
    def test_labels_shape_and_range(self):
        app = Cnn(batch=6)
        labels = app.golden_output()
        assert labels.shape == (6,)
        assert ((labels >= 0) & (labels < CLASSES)).all()

    def test_intermediates_written_to_memory(self):
        app = Cnn(batch=2)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        l2n = memory.read_pristine(memory.object("Layer2_Neurons"))
        scores = memory.read_pristine(memory.object("Out"))
        assert l2n.shape == (2, L1_MAPS, L1_OUT, L1_OUT)
        assert np.abs(l2n).max() <= 1.7159 + 1e-6  # post-activation
        assert scores.shape == (2, CLASSES)

    def test_scores_depend_on_images(self):
        app = Cnn(batch=4, seed=1)
        memory = app.fresh_memory()
        app.execute(memory, PlainReader(memory))
        scores = memory.read_pristine(memory.object("Out"))
        # Different images produce different score vectors.
        assert not np.allclose(scores[0], scores[1])


class TestWeightFaults:
    def test_huge_layer1_weight_flips_labels(self):
        app = Cnn(batch=8)
        memory = app.fresh_memory()
        w1 = memory.object("Layer1_Weights")
        # Stick the top exponent bits of several map-0 weights.
        for word in range(1, 6):
            memory.inject_stuck_at(w1.base_addr + word * 4 + 3, 6, 1)
            memory.inject_stuck_at(w1.base_addr + word * 4 + 3, 5, 1)
        out = app.execute(memory, PlainReader(memory))
        golden = app.golden_output()
        assert app.error_metric.error(golden, out) > 0

    def test_nan_scores_classify_as_negative_one(self):
        app = Cnn(batch=2)
        memory = app.fresh_memory()
        out_obj = memory.object("Out")
        # Plant a NaN directly in the score block of image 0.
        scores = np.zeros((2, CLASSES), dtype=np.float32)
        app.execute(memory, PlainReader(memory))
        corrupted = memory.read_pristine(out_obj)
        corrupted[0, 0] = np.nan
        memory.write_object(out_obj, corrupted)
        read_back = memory.read_object(out_obj)
        labels = np.where(
            np.isfinite(read_back).all(axis=1),
            np.argmax(np.nan_to_num(read_back, nan=-np.inf), axis=1),
            -1,
        )
        assert labels[0] == -1
        assert labels[1] >= 0


class TestCnnTrace:
    @pytest.fixture(scope="class")
    def bundle(self):
        app = Cnn(batch=8)
        memory = app.fresh_memory()
        return app, memory, app.build_trace(memory)

    def test_four_kernels(self, bundle):
        _a, _m, trace = bundle
        assert [k.name for k in trace.kernels] == \
            ["FirstLayer", "SecondLayer", "ThirdLayer", "FourthLayer"]

    def test_layer1_grid_is_maps_times_batch(self, bundle):
        _a, _m, trace = bundle
        assert len(trace.kernels[0].ctas) == L1_MAPS * 8

    def test_layer1_weight_loads_are_broadcasts(self, bundle):
        _a, _m, trace = bundle
        warp = next(trace.kernels[0].iter_warps())
        w_loads = [
            i for i in warp.insts
            if isinstance(i, Load) and i.obj == "Layer1_Weights"
        ]
        assert len(w_loads) == 26  # bias + 25 taps (Listing 2)
        assert all(len(i.addrs) == 1 for i in w_loads)

    def test_weights_hotter_per_block_than_images(self, bundle):
        _a, memory, trace = bundle
        from collections import Counter

        counts = Counter()
        for kernel in trace.kernels:
            for w in kernel.iter_warps():
                for i in w.insts:
                    if isinstance(i, Load):
                        for addr in i.addrs:
                            counts[addr] += 1
        def per_block(name):
            obj = memory.object(name)
            vals = [counts.get(a, 0) for a in obj.block_addrs()]
            return sum(vals) / len(vals)

        assert per_block("Layer1_Weights") > 5 * per_block("Images")
        assert per_block("Layer2_Weights") > per_block("Images")
        assert per_block("Layer1_Weights") > \
            50 * per_block("Layer3_Weights")

    def test_fc_weight_loads_coalesced(self, bundle):
        _a, _m, trace = bundle
        warp = next(trace.kernels[2].iter_warps())
        w_loads = [
            i for i in warp.insts
            if isinstance(i, Load) and i.obj == "Layer3_Weights"
        ]
        # 32-lane chunks over a contiguous weight row: 1-2 blocks each.
        assert all(len(i.addrs) <= 2 for i in w_loads)

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            Cnn(batch=0)
