"""Contract tests every application must satisfy.

These run at small scale and cover: declaration consistency, golden
determinism, trace well-formedness, address containment, and that a
heavy fault in the top hot object actually disturbs the output (the
premise of the whole paper).
"""

import numpy as np
import pytest

from repro.arch.address_space import BLOCK_BYTES
from repro.errors import FaultDetected, KernelCrash
from repro.kernels.base import PlainReader
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
)
from repro.kernels.trace import Load, Store

ALL_APPS = list(APPLICATIONS) + list(FLAT_APPLICATIONS)


@pytest.fixture(scope="module")
def app_bundle():
    """(app, memory, trace) per app name, built once for the module."""
    cache = {}

    def get(name):
        if name not in cache:
            app = create_app(name, scale="small")
            memory = app.fresh_memory()
            trace = app.build_trace(memory)
            cache[name] = (app, memory, trace)
        return cache[name]

    return get


@pytest.mark.parametrize("name", ALL_APPS)
class TestDeclarations:
    def test_declarations_consistent(self, name, app_bundle):
        app, _memory, _trace = app_bundle(name)
        app.validate_declarations()

    def test_importance_objects_allocated_and_read_only(
        self, name, app_bundle
    ):
        app, memory, _trace = app_bundle(name)
        for obj_name in app.object_importance:
            assert memory.object(obj_name).read_only, obj_name

    def test_hot_footprint_is_small(self, name, app_bundle):
        app, memory, _trace = app_bundle(name)
        if not app.hot_object_names:
            pytest.skip("flat app")
        hot_bytes = sum(
            memory.object(n).nbytes for n in app.hot_object_names
        )
        total = sum(o.nbytes for o in memory.objects)
        # Observation IV: at most a few percent of application memory.
        assert hot_bytes / total < 0.10


@pytest.mark.parametrize("name", ALL_APPS)
class TestGolden:
    def test_golden_deterministic_across_instances(self, name):
        a = create_app(name, scale="small").golden_output()
        b = create_app(name, scale="small").golden_output()
        np.testing.assert_array_equal(a, b)

    def test_golden_finite(self, name, app_bundle):
        app, _m, _t = app_bundle(name)
        golden = app.golden_output()
        assert np.isfinite(np.asarray(golden, dtype=np.float64)).all()

    def test_fault_free_run_is_not_sdc(self, name, app_bundle):
        app, _m, _t = app_bundle(name)
        memory = app.fresh_memory()
        output = app.execute(memory, PlainReader(memory))
        result = app.error_metric.compare(app.golden_output(), output)
        assert not result.is_sdc


@pytest.mark.parametrize("name", ALL_APPS)
class TestTraces:
    def test_trace_validates(self, name, app_bundle):
        _app, _memory, trace = app_bundle(name)
        trace.validate()

    def test_addresses_within_named_objects(self, name, app_bundle):
        _app, memory, trace = app_bundle(name)
        bounds = {
            obj.name: (obj.base_addr,
                       obj.base_addr + obj.n_blocks * BLOCK_BYTES)
            for obj in memory.objects
        }
        for kernel in trace.kernels:
            for warp in kernel.iter_warps():
                for inst in warp.insts:
                    if isinstance(inst, (Load, Store)):
                        low, high = bounds[inst.obj]
                        for addr in inst.addrs:
                            assert low <= addr < high, (
                                kernel.name, inst.obj, hex(addr))

    def test_every_importance_object_is_loaded(self, name, app_bundle):
        app, _memory, trace = app_bundle(name)
        loaded = {
            inst.obj
            for kernel in trace.kernels
            for warp in kernel.iter_warps()
            for inst in warp.insts
            if isinstance(inst, Load)
        }
        for obj_name in app.object_importance:
            assert obj_name in loaded

    def test_trace_is_deterministic(self, name, app_bundle):
        app, memory, trace = app_bundle(name)
        again = app.build_trace(memory)
        assert again.total_load_transactions == \
            trace.total_load_transactions


@pytest.mark.parametrize("name", ALL_APPS)
def test_heavy_fault_in_top_object_disturbs_output(name, app_bundle):
    """Stick the sign+high-exponent bits of the first words of the most
    important object: the output must change, crash, or the app  must
    consume it some other observable way."""
    app, _m, _t = app_bundle(name)
    memory = app.fresh_memory()
    target = memory.object(app.object_importance[0])
    for word in range(min(4, target.nbytes // 4)):
        for bit in (30, 29, 28, 27):
            memory.inject_stuck_at(
                target.base_addr + word * 4 + bit // 8, bit % 8, 1)
    try:
        output = app.execute(memory, PlainReader(memory))
    except KernelCrash:
        return  # loud failure is an acceptable disturbance
    golden = app.golden_output()
    assert app.error_metric.error(golden, output) > 0
