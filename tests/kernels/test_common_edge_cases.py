"""Edge-case tests for trace-generation helpers (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.address_space import BLOCK_BYTES, DeviceMemory
from repro.kernels import common


def make_obj(n_elements=4096, dtype=np.float32):
    mem = DeviceMemory(4 * 1024 * 1024)
    mem.reserve_blocks(3)  # non-zero base
    return mem.alloc("v", (n_elements,), dtype)


@settings(max_examples=50)
@given(st.integers(min_value=0, max_value=4000),
       st.integers(min_value=1, max_value=64))
def test_contiguous_blocks_cover_exactly_the_span(start, n):
    obj = make_obj()
    n = min(n, 4096 - start)
    if n <= 0:
        return
    blocks = common.contiguous_blocks(obj, start, n)
    first_byte = obj.base_addr + start * 4
    last_byte = obj.base_addr + (start + n) * 4 - 1
    assert blocks[0] <= first_byte < blocks[0] + BLOCK_BYTES
    assert blocks[-1] <= last_byte < blocks[-1] + BLOCK_BYTES
    # Contiguous, block-aligned, no gaps.
    assert all(b % BLOCK_BYTES == 0 for b in blocks)
    assert all(b2 - b1 == BLOCK_BYTES
               for b1, b2 in zip(blocks, blocks[1:]))


@settings(max_examples=50)
@given(st.lists(st.integers(min_value=0, max_value=4095),
                min_size=1, max_size=40))
def test_scattered_blocks_match_manual_set(indices):
    obj = make_obj()
    blocks = common.scattered_blocks(obj, indices)
    expected = sorted({
        (obj.base_addr + i * 4) // BLOCK_BYTES * BLOCK_BYTES
        for i in indices
    })
    assert list(blocks) == expected


@settings(max_examples=50)
@given(st.integers(min_value=0, max_value=4095))
def test_block_addr_contains_element(index):
    obj = make_obj()
    addr = common.block_addr(obj, index)
    byte = obj.base_addr + index * 4
    assert addr <= byte < addr + BLOCK_BYTES


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=5000))
def test_warp_partition_covers_all_threads(n_threads):
    parts = common.warp_partition(n_threads)
    assert sum(lanes for _first, lanes in parts) == n_threads
    assert all(1 <= lanes <= common.WARP_SIZE for _f, lanes in parts)
    cursor = 0
    for first, lanes in parts:
        assert first == cursor
        cursor += lanes


@settings(max_examples=50)
@given(st.integers(min_value=1, max_value=5000),
       st.integers(min_value=1, max_value=512))
def test_ctas_cover_all_threads(n_threads, cta_size):
    ctas = common.ctas_of_threads(n_threads, cta_size)
    assert sum(size for _f, size in ctas) == n_threads
    assert all(size <= cta_size for _f, size in ctas)


def test_int32_itemsize_respected():
    mem = DeviceMemory(1024 * 1024)
    obj = mem.alloc("i", (256,), np.int32)
    # 32 consecutive int32 = 128B = one block when aligned.
    assert len(common.contiguous_blocks(obj, 0, 32)) == 1
    assert len(common.contiguous_blocks(obj, 16, 32)) == 2
