"""Tests for the renamed-keyword compatibility shims."""

import warnings

import pytest

from repro._compat import UNSET, reset_warnings, resolve_renamed
from repro.errors import SpecError
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app


@pytest.fixture(autouse=True)
def fresh_warning_registry():
    reset_warnings()
    yield
    reset_warnings()


def make_campaign(**kwargs):
    app = create_app("A-Laplacian", scale="small")
    memory = app.fresh_memory()
    hot = tuple(app.hot_object_names)
    pool = [
        a for n in hot for a in memory.object(n).block_addrs()
    ]
    kwargs = {
        key: (hot if value is HOT else value)
        for key, value in kwargs.items()
    }
    return Campaign(app, uniform_selection(pool),
                    config=CampaignConfig(runs=4, seed=9), **kwargs)


#: Placeholder resolved to the app's real hot-object names.
HOT = object()


class TestResolveRenamed:
    def test_new_spelling_passes_through_silently(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            value = resolve_renamed("F", "old", "new", UNSET, 42)
        assert value == 42

    def test_old_spelling_warns_and_wins(self):
        with pytest.warns(DeprecationWarning, match="'old'.*'new'"):
            value = resolve_renamed("F", "old", "new", 7, UNSET)
        assert value == 7

    def test_warns_exactly_once_per_process(self):
        with pytest.warns(DeprecationWarning):
            resolve_renamed("F", "old", "new", 1, UNSET)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            resolve_renamed("F", "old", "new", 2, UNSET)

    def test_distinct_keywords_each_warn(self):
        with pytest.warns(DeprecationWarning):
            resolve_renamed("F", "old_a", "new_a", 1, UNSET)
        with pytest.warns(DeprecationWarning):
            resolve_renamed("F", "old_b", "new_b", 1, UNSET)

    def test_both_spellings_rejected(self):
        with pytest.raises(SpecError, match="both"):
            resolve_renamed("F", "old", "new", 1, 2)


class TestCampaignShims:
    def test_scheme_name_still_works(self):
        with pytest.warns(DeprecationWarning, match="scheme_name"):
            campaign = make_campaign(scheme_name="detection",
                                     protect=HOT)
        assert campaign.scheme == "detection"
        assert campaign.scheme_name == "detection"

    def test_protected_names_still_works(self):
        with pytest.warns(DeprecationWarning, match="protected_names"):
            campaign = make_campaign(protected_names=HOT)
        assert campaign.protect == campaign.protected_names
        assert len(campaign.protect) > 0

    def test_old_and_new_spellings_agree(self):
        with pytest.warns(DeprecationWarning):
            old = make_campaign(scheme_name="correction",
                                protected_names=HOT)
        new = make_campaign(scheme="correction", protect=HOT)
        assert old.run().to_dict() == new.run().to_dict()

    def test_both_spellings_at_once_rejected(self):
        with pytest.raises(SpecError, match="scheme"):
            make_campaign(scheme="baseline", scheme_name="baseline")

    def test_canonical_spelling_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            make_campaign(scheme="baseline")


class TestRunSweepShim:
    SPEC_KW = dict(apps=("A-Laplacian",), schemes=("baseline",),
                   protects=("none",), runs=4, seed=9, scale="small")

    def test_checkpoint_dir_still_works(self, tmp_path):
        from repro.runtime.session import SweepSpec, run_sweep

        spec = SweepSpec(**self.SPEC_KW)
        with pytest.warns(DeprecationWarning, match="checkpoint_dir"):
            old = run_sweep(spec, checkpoint_dir=str(tmp_path / "a"))
        new = run_sweep(spec, store=str(tmp_path / "b"))
        assert old.to_dict() == new.to_dict()

    def test_both_spellings_rejected(self, tmp_path):
        from repro.runtime.session import SweepSpec, run_sweep

        spec = SweepSpec(**self.SPEC_KW)
        with pytest.raises(SpecError, match="both"):
            run_sweep(spec, store=str(tmp_path / "a"),
                      checkpoint_dir=str(tmp_path / "b"))

    def test_store_spelling_never_warns(self, tmp_path):
        from repro.runtime.session import SweepSpec, run_sweep

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_sweep(SweepSpec(**self.SPEC_KW),
                      store=str(tmp_path / "s"))
