"""Documentation contract: every public item carries a docstring.

The deliverable includes doc comments on every public API item; this
test walks the installed package and enforces it, so documentation
rot fails CI rather than accumulating.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

EXEMPT_MODULES = {"repro.__main__"}


def _walk_modules():
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return [n for n in names if n not in EXEMPT_MODULES]


MODULES = _walk_modules()


@pytest.mark.parametrize("module_name", MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip(), module_name


@pytest.mark.parametrize("module_name", MODULES)
def test_public_classes_and_functions_documented(module_name):
    module = importlib.import_module(module_name)
    missing = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its definition site
        if not (inspect.getdoc(obj) or "").strip():
            missing.append(name)
            continue
        if inspect.isclass(obj):
            for meth_name, meth in vars(obj).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                # getattr + getdoc resolves docstrings inherited from
                # a documented base-class contract (e.g. the abstract
                # GpuApplication.setup/execute/build_trace).
                bound = getattr(obj, meth_name, meth)
                if not (inspect.getdoc(bound) or "").strip():
                    missing.append(f"{name}.{meth_name}")
    assert not missing, (
        f"{module_name}: public items without docstrings: {missing}"
    )


def test_every_subpackage_is_imported_by_walk():
    packages = {n for n in MODULES if "." not in n.removeprefix("repro.")}
    for expected in ("repro.arch", "repro.sim", "repro.kernels",
                     "repro.profiling", "repro.faults", "repro.core",
                     "repro.metrics", "repro.analysis", "repro.utils",
                     "repro.data"):
        assert expected in MODULES, expected
