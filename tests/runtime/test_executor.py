"""Tests for the parallel campaign execution engine.

The engine's contract is bit-reproducibility: any worker count, chunk
size and clone mode must produce the exact serial reference result,
because each run derives solely from (campaign seed, run index).
"""

import pickle

import pytest

from repro.errors import ConfigError
from repro.faults.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    merge_sorted_runs,
)
from repro.faults.outcomes import Outcome, RunResult
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.runtime import (
    CampaignExecutor,
    CampaignSpec,
    app_cache_key,
    app_context,
    plan_chunks,
)


def make_campaign(app_name="A-Laplacian", scheme="baseline",
                  runs=12, **kwargs):
    app = create_app(app_name, scale="small")
    memory = app.fresh_memory()
    protected = kwargs.pop("protected", None)
    if protected is None and scheme != "baseline":
        protected = tuple(app.hot_object_names)
    pool = [
        a for n in app.hot_object_names
        for a in memory.object(n).block_addrs()
    ]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme=scheme,
        protect=protected or (),
        config=CampaignConfig(runs=runs, seed=77),
        **kwargs,
    )


def run_signature(result):
    return [
        (r.run_index, r.outcome, r.error, r.detail) for r in result.runs
    ]


class TestPlanChunks:
    def test_covers_index_space_exactly(self):
        spans = plan_chunks(100, 4)
        assert spans[0][0] == 0
        assert spans[-1][1] == 100
        for (_, stop), (start, _) in zip(spans, spans[1:]):
            assert start == stop

    def test_chunk_size_override(self):
        assert plan_chunks(10, 4, chunk_size=3) == [
            (0, 3), (3, 6), (6, 9), (9, 10)]

    def test_degenerate_cases(self):
        assert plan_chunks(0, 4) == []
        assert plan_chunks(1, 8) == [(0, 1)]

    def test_bad_chunk_size(self):
        with pytest.raises(ConfigError):
            plan_chunks(10, 2, chunk_size=0)


class TestMerge:
    def _result(self, indices):
        res = CampaignResult(
            app_name="app", scheme_name="baseline",
            selection_name="uniform", config=CampaignConfig(runs=4),
        )
        for i in indices:
            res.counts[Outcome.MASKED] += 1
            res.runs.append(RunResult(i, Outcome.MASKED, 0.0))
        return res

    def test_merge_restores_run_order(self):
        merged = CampaignResult.merge(
            [self._result([2, 3]), self._result([0, 1])])
        assert [r.run_index for r in merged.runs] == [0, 1, 2, 3]
        assert merged.counts[Outcome.MASKED] == 4

    def test_merge_rejects_duplicates(self):
        with pytest.raises(ConfigError):
            merge_sorted_runs([[RunResult(1, Outcome.MASKED, 0.0)],
                               [RunResult(1, Outcome.MASKED, 0.0)]])

    def test_merge_rejects_mixed_campaigns(self):
        other = self._result([0])
        other.scheme_name = "correction"
        with pytest.raises(ConfigError):
            CampaignResult.merge([self._result([1]), other])

    def test_merge_rejects_empty(self):
        with pytest.raises(ConfigError):
            CampaignResult.merge([])

    def test_validate_catches_disorder(self):
        res = self._result([1])
        res.runs.insert(0, RunResult(5, Outcome.MASKED, 0.0))
        res.counts[Outcome.MASKED] += 1
        with pytest.raises(ConfigError):
            res.validate()


class TestCampaignValidation:
    def test_bad_clone_mode(self):
        with pytest.raises(ConfigError):
            make_campaign(clone_mode="magic")

    def test_bad_jobs(self):
        with pytest.raises(ConfigError):
            make_campaign(jobs=0)


@pytest.mark.parametrize("app_name", ["A-Laplacian", "P-BICG"])
@pytest.mark.parametrize("scheme", ["detection", "correction"])
class TestParallelDeterminism:
    def test_jobs4_matches_serial(self, app_name, scheme):
        serial = make_campaign(app_name, scheme, runs=16,
                               keep_runs=True).run()
        parallel = make_campaign(app_name, scheme, runs=16,
                                 keep_runs=True, jobs=4).run()
        assert parallel.counts == serial.counts
        assert run_signature(parallel) == run_signature(serial)

    def test_cow_matches_full_clone(self, app_name, scheme):
        full = make_campaign(app_name, scheme, runs=16, keep_runs=True,
                             clone_mode="full").run()
        cow = make_campaign(app_name, scheme, runs=16, keep_runs=True,
                            clone_mode="cow").run()
        assert cow.counts == full.counts
        assert run_signature(cow) == run_signature(full)


class TestParallelBaseline:
    def test_jobs4_matches_serial(self):
        serial = make_campaign(runs=16, keep_runs=True).run()
        parallel = make_campaign(runs=16, keep_runs=True, jobs=4).run()
        assert parallel.counts == serial.counts
        assert run_signature(parallel) == run_signature(serial)

    def test_run_jobs_override(self):
        campaign = make_campaign(runs=16, keep_runs=True)
        serial = campaign.run()
        parallel = make_campaign(runs=16, keep_runs=True).run(jobs=3)
        assert run_signature(parallel) == run_signature(serial)


class TestExecutor:
    def test_serial_when_one_job(self):
        executor = CampaignExecutor(make_campaign(runs=6), jobs=1)
        result = executor.run()
        assert result.n_runs == 6
        assert executor.used_jobs == 1
        assert executor.fallback_reason is None

    def test_jobs_capped_by_runs(self):
        campaign = make_campaign(runs=1)
        executor = CampaignExecutor(campaign, jobs=8)
        result = executor.run()
        assert result.n_runs == 1
        assert executor.used_jobs == 1

    def test_explicit_chunk_size(self):
        campaign = make_campaign(runs=10, keep_runs=True)
        reference = make_campaign(runs=10, keep_runs=True).run()
        executor = CampaignExecutor(campaign, jobs=2, chunk_size=3)
        assert run_signature(executor.run()) == run_signature(reference)

    def test_bad_jobs_rejected(self):
        with pytest.raises(ConfigError):
            CampaignExecutor(make_campaign(runs=4), jobs=0)


class TestCampaignSpec:
    def test_pickle_roundtrip_runs_identically(self):
        campaign = make_campaign("A-Laplacian", "correction", runs=8,
                                 keep_runs=True)
        reference = campaign.run()
        spec = CampaignSpec.from_campaign(campaign)
        spec = pickle.loads(pickle.dumps(spec))
        rebuilt = Campaign(
            spec.app, spec.selection, scheme=spec.scheme_name,
            protect=spec.protected_names, config=spec.config,
            keep_runs=spec.keep_runs, clone_mode=spec.clone_mode,
        )
        assert run_signature(rebuilt.run()) == run_signature(reference)

    def test_tokens_unique(self):
        campaign = make_campaign(runs=4)
        a = CampaignSpec.from_campaign(campaign)
        b = CampaignSpec.from_campaign(campaign)
        assert a.token != b.token


class TestAppCache:
    def test_identical_apps_share_context(self):
        a = create_app("A-Laplacian", scale="small")
        b = create_app("A-Laplacian", scale="small")
        assert app_cache_key(a) == app_cache_key(b)
        assert app_context(a) is app_context(b)

    def test_different_scale_distinct(self):
        a = create_app("P-BICG", scale="small")
        b = create_app("P-BICG", scale="default")
        assert app_cache_key(a) != app_cache_key(b)

    def test_campaigns_share_pristine_memory(self):
        first = make_campaign(runs=4)
        second = make_campaign(runs=4)
        assert first._pristine is second._pristine
        assert first._golden is second._golden
