"""Tests for the content-addressed chunk checkpoint store."""

import json

import pytest

from repro.errors import CheckpointError
from repro.runtime.checkpoint import STORE_VERSION, CheckpointStore
from repro.utils.canonical import canonical_digest, canonical_json

SPEC = {"apps": ["A"], "runs": 8, "chunk_runs": 2}
CELL = "a" * 64
PAYLOAD = {"version": 1, "counts": {"masked": 2}, "runs": [1, 2]}


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpt")


class TestManifest:
    def test_fresh_directory_is_stamped(self, store):
        manifest = store.initialize(SPEC)
        assert manifest["version"] == STORE_VERSION
        assert manifest["digest"] == canonical_digest(SPEC)
        assert store.exists()

    def test_reinit_without_resume_refuses(self, store):
        store.initialize(SPEC)
        with pytest.raises(CheckpointError, match="resume"):
            store.initialize(SPEC)

    def test_reinit_with_resume_returns_manifest(self, store):
        store.initialize(SPEC)
        manifest = store.initialize(SPEC, resume=True)
        assert manifest["spec"] == SPEC

    def test_different_sweep_refused_even_with_resume(self, store):
        store.initialize(SPEC)
        other = dict(SPEC, runs=16)
        with pytest.raises(CheckpointError, match="different sweep"):
            store.initialize(other, resume=True)

    def test_corrupt_manifest_digest_detected(self, store):
        store.initialize(SPEC)
        doc = json.loads(store.manifest_path.read_text())
        doc["spec"]["runs"] = 999
        store.manifest_path.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="corrupt manifest"):
            store.initialize(SPEC, resume=True)

    def test_unreadable_manifest(self, store):
        store.initialize(SPEC)
        store.manifest_path.write_text("{not json")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.initialize(SPEC, resume=True)

    def test_future_store_version_refused(self, store):
        store.initialize(SPEC)
        doc = json.loads(store.manifest_path.read_text())
        doc["version"] = STORE_VERSION + 1
        store.manifest_path.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="version"):
            store.initialize(SPEC, resume=True)


class TestChunks:
    def test_roundtrip(self, store):
        store.initialize(SPEC)
        store.save_chunk(CELL, 0, 2, PAYLOAD)
        assert store.load_chunk(CELL, 0, 2) == PAYLOAD

    def test_missing_chunk_is_none(self, store):
        store.initialize(SPEC)
        assert store.load_chunk(CELL, 0, 2) is None

    def test_no_tmp_file_left_behind(self, store):
        store.initialize(SPEC)
        path = store.save_chunk(CELL, 0, 2, PAYLOAD)
        assert not list(path.parent.glob("*.tmp"))

    def test_corrupt_payload_digest_detected(self, store):
        store.initialize(SPEC)
        path = store.save_chunk(CELL, 0, 2, PAYLOAD)
        doc = json.loads(path.read_text())
        doc["payload"]["runs"] = [9, 9]
        path.write_text(canonical_json(doc))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            store.load_chunk(CELL, 0, 2)

    def test_mislabeled_span_detected(self, store):
        store.initialize(SPEC)
        path = store.save_chunk(CELL, 0, 2, PAYLOAD)
        path.rename(store.chunk_path(CELL, 2, 4))
        with pytest.raises(CheckpointError, match="span"):
            store.load_chunk(CELL, 2, 4)

    def test_wrong_cell_detected(self, store):
        store.initialize(SPEC)
        other = "b" * 64
        path = store.save_chunk(CELL, 0, 2, PAYLOAD)
        target = store.chunk_path(other, 0, 2)
        target.parent.mkdir(parents=True)
        path.rename(target)
        with pytest.raises(CheckpointError):
            store.load_chunk(other, 0, 2)

    def test_undecodable_chunk(self, store):
        store.initialize(SPEC)
        path = store.save_chunk(CELL, 0, 2, PAYLOAD)
        path.write_text("garbage")
        with pytest.raises(CheckpointError, match="unreadable"):
            store.load_chunk(CELL, 0, 2)

    def test_save_is_idempotent(self, store):
        store.initialize(SPEC)
        store.save_chunk(CELL, 0, 2, PAYLOAD)
        store.save_chunk(CELL, 0, 2, PAYLOAD)
        assert store.load_chunk(CELL, 0, 2) == PAYLOAD


class TestCompletedSpans:
    def test_empty_for_unknown_cell(self, store):
        store.initialize(SPEC)
        assert store.completed_spans(CELL) == set()

    def test_lists_saved_spans(self, store):
        store.initialize(SPEC)
        store.save_chunk(CELL, 0, 2, PAYLOAD)
        store.save_chunk(CELL, 4, 6, PAYLOAD)
        assert store.completed_spans(CELL) == {(0, 2), (4, 6)}

    def test_unrecognized_filename_raises(self, store):
        store.initialize(SPEC)
        store.save_chunk(CELL, 0, 2, PAYLOAD)
        (store.cell_dir(CELL) / "chunk-zz-zz.json").write_text("{}")
        with pytest.raises(CheckpointError, match="filename"):
            store.completed_spans(CELL)
