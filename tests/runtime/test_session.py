"""Tests for declarative sweep specs and resumable sessions (serial).

Pool-backed execution, crash injection and interrupt/resume
byte-identity live in ``tests/integration/test_sweep_resume.py``;
this file covers the spec/plan/merge machinery and the serial paths.
"""

import pytest

from repro.errors import (
    SessionError,
    SessionInterrupted,
    SpecError,
    UnknownAppError,
    UnknownSchemeError,
)
from repro.faults.campaign import Campaign
from repro.runtime.session import (
    DEFAULT_CHUNKS_PER_CELL,
    Session,
    SessionConfig,
    SweepSpec,
    WorkUnit,
)
from repro.utils.canonical import canonical_json


def small_spec(**overrides) -> SweepSpec:
    kwargs = dict(
        apps=("A-Laplacian",),
        schemes=("baseline",),
        protects=("hot",),
        runs=6,
        chunk_runs=3,
        scale="small",
        seed=77,
    )
    kwargs.update(overrides)
    return SweepSpec(**kwargs)


class TestSweepSpecValidation:
    def test_unknown_app(self):
        with pytest.raises(UnknownAppError):
            small_spec(apps=("NOT-AN-APP",))

    def test_unknown_scheme(self):
        with pytest.raises(UnknownSchemeError):
            small_spec(schemes=("tmr",))

    def test_empty_axis(self):
        with pytest.raises(SpecError, match="empty"):
            small_spec(apps=())

    def test_bad_protect_string(self):
        with pytest.raises(SpecError, match="protect"):
            small_spec(protects=("warm",))

    def test_bool_protect_rejected(self):
        with pytest.raises(SpecError, match="protect"):
            small_spec(protects=(True,))

    def test_nonpositive_runs(self):
        with pytest.raises(SpecError, match="runs"):
            small_spec(runs=0)

    def test_nonpositive_chunk_runs(self):
        with pytest.raises(SpecError, match="chunk_runs"):
            small_spec(chunk_runs=0)

    def test_unknown_scale(self):
        with pytest.raises(SpecError, match="scale"):
            small_spec(scale="huge")

    def test_duplicate_cells(self):
        with pytest.raises(SpecError, match="duplicate"):
            small_spec(apps=("A-Laplacian", "A-Laplacian"))

    def test_lists_coerced_to_tuples(self):
        spec = small_spec(apps=["A-Laplacian"], protects=["hot", 1])
        assert spec.apps == ("A-Laplacian",)
        assert spec.protects == ("hot", 1)


class TestSweepSpecIdentity:
    def test_dict_roundtrip_preserves_digest(self):
        spec = small_spec()
        clone = SweepSpec.from_dict(spec.to_dict())
        assert clone.digest() == spec.digest()

    def test_from_dict_rejects_unknown_keys(self):
        doc = small_spec().to_dict()
        doc["jobs"] = 8
        with pytest.raises(SpecError, match="unknown keys"):
            SweepSpec.from_dict(doc)

    def test_chunking_is_part_of_identity(self):
        assert small_spec(chunk_runs=3).digest() \
            != small_spec(chunk_runs=2).digest()

    def test_default_chunking_resolved_into_identity(self):
        # An explicit chunk_runs equal to the resolved default is the
        # same sweep as the default spelling.
        spec = small_spec(chunk_runs=None)
        explicit = small_spec(chunk_runs=spec.resolved_chunk_runs())
        assert explicit.digest() == spec.digest()

    def test_default_chunk_count(self):
        spec = small_spec(runs=160, chunk_runs=None)
        assert spec.resolved_chunk_runs() == 160 // DEFAULT_CHUNKS_PER_CELL

    def test_cells_enumerate_app_major(self):
        spec = small_spec(schemes=("baseline", "correction"),
                          protects=("hot", "none"))
        keys = [cell.key for cell in spec.cells()]
        assert keys == [
            "A-Laplacian~baseline~hot",
            "A-Laplacian~baseline~none",
            "A-Laplacian~correction~hot",
            "A-Laplacian~correction~none",
        ]


class TestSessionConfig:
    @pytest.mark.parametrize("kwargs", [
        {"jobs": 0},
        {"max_retries": -1},
        {"retry_backoff_s": -0.1},
        {"chunk_timeout_s": 0},
        {"stop_after_chunks": 0},
    ])
    def test_invalid_config(self, kwargs):
        with pytest.raises(SpecError):
            SessionConfig(**kwargs).validate()


class TestPlanning:
    def test_plan_covers_every_run_once(self):
        session = Session(small_spec(runs=7, chunk_runs=3))
        units = session.plan()
        assert units == [
            WorkUnit(0, 0, 3), WorkUnit(0, 3, 6), WorkUnit(0, 6, 7),
        ]

    def test_plan_is_jobs_independent(self):
        spec = small_spec()
        plan1 = Session(spec, config=SessionConfig(jobs=1)).plan()
        plan8 = Session(spec, config=SessionConfig(jobs=8)).plan()
        assert plan1 == plan8


class TestSerialExecution:
    @pytest.fixture(scope="class")
    def spec(self):
        return small_spec()

    @pytest.fixture(scope="class")
    def reference(self, spec):
        return Session(spec).run()

    def test_matches_direct_campaign_run(self, spec, reference):
        direct = spec.cells()[0].build_campaign().run()
        merged = reference.entries[0].result
        assert merged.to_dict() == direct.to_dict()

    def test_result_for(self, reference):
        result = reference.result_for("A-Laplacian", "baseline", "hot")
        assert result.n_runs == 6
        with pytest.raises(SpecError, match="no sweep cell"):
            reference.result_for("A-Laplacian", "baseline", "none")

    def test_checkpointed_equals_storeless(self, spec, reference,
                                           tmp_path):
        sweep = Session(spec, store=str(tmp_path / "ckpt")).run()
        assert canonical_json(sweep.to_dict()) \
            == canonical_json(reference.to_dict())

    def test_stop_budget_interrupts_then_resumes(self, spec, reference,
                                                 tmp_path):
        store = tmp_path / "ckpt"
        session = Session(spec, store=store,
                          config=SessionConfig(stop_after_chunks=1))
        with pytest.raises(SessionInterrupted) as info:
            session.run()
        assert (info.value.done, info.value.total) == (1, 2)

        resumed = Session(spec, store=store)
        sweep = resumed.run(resume=True)
        assert canonical_json(sweep.to_dict()) \
            == canonical_json(reference.to_dict())
        counters = resumed.metrics.snapshot()["counters"]
        assert counters["session.chunks.resumed"] == 1
        assert counters["session.chunks.executed"] == 1


class TestRetries:
    def test_transient_failure_is_retried(self, monkeypatch):
        sleeps = []
        real = Campaign.run_span
        failures = iter([RuntimeError("flaky"), RuntimeError("flaky")])

        def flaky(self, start, stop):
            for exc in failures:
                raise exc
            return real(self, start, stop)

        monkeypatch.setattr(Campaign, "run_span", flaky)
        session = Session(small_spec(), sleep=sleeps.append,
                          config=SessionConfig(retry_backoff_s=0.5))
        sweep = session.run()
        assert sweep.entries[0].result.n_runs == 6
        counters = session.metrics.snapshot()["counters"]
        assert counters["session.retries"] == 2
        assert sleeps == [0.5, 1.0]  # exponential backoff

    def test_retry_budget_exhausted(self, monkeypatch):
        def broken(self, start, stop):
            raise RuntimeError("hard down")

        monkeypatch.setattr(Campaign, "run_span", broken)
        session = Session(small_spec(), sleep=lambda _s: None,
                          config=SessionConfig(max_retries=1))
        with pytest.raises(SessionError, match="2 attempt"):
            session.run()


class TestAdaptiveSweeps:
    """CI-driven early stopping at durable-chunk granularity."""

    def adaptive_spec(self, **overrides):
        return small_spec(runs=96, chunk_runs=16, target_margin=0.2,
                          **overrides)

    def test_target_margin_validation(self):
        with pytest.raises(SpecError, match="target_margin"):
            small_spec(target_margin=0.0)
        with pytest.raises(SpecError, match="target_margin"):
            small_spec(target_margin=1.5)

    def test_identity_gains_key_only_when_enabled(self):
        plain = small_spec()
        assert "target_margin" not in plain.to_dict()
        adaptive = self.adaptive_spec()
        assert adaptive.to_dict()["target_margin"] == 0.2
        clone = SweepSpec.from_dict(adaptive.to_dict())
        assert clone.digest() == adaptive.digest()
        assert clone.digest() != plain.digest()

    def test_early_stop_commits_a_prefix(self):
        session = Session(self.adaptive_spec())
        sweep = session.run()
        result = sweep.entries[0].result
        assert result.n_runs < 96
        assert result.n_runs % 16 == 0  # stops at a chunk boundary
        counters = session.metrics.snapshot()["counters"]
        assert counters["session.chunks.skipped"] > 0
        # the committed prefix already satisfies the margin
        assert result.sdc_interval().margin <= 0.2

    def test_committed_result_is_jobs_invariant(self):
        serial = Session(self.adaptive_spec()).run()
        pooled = Session(self.adaptive_spec(),
                         config=SessionConfig(jobs=2)).run()
        assert canonical_json(pooled.to_dict()) \
            == canonical_json(serial.to_dict())

    def test_interrupt_and_resume_reach_the_same_stop(self, tmp_path):
        reference = Session(self.adaptive_spec()).run()
        store = tmp_path / "ckpt"
        session = Session(self.adaptive_spec(), store=store,
                          config=SessionConfig(stop_after_chunks=1))
        with pytest.raises(SessionInterrupted):
            session.run()
        resumed = Session(self.adaptive_spec(), store=store).run(
            resume=True)
        assert canonical_json(resumed.to_dict()) \
            == canonical_json(reference.to_dict())
