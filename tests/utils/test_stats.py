"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    geometric_mean,
    normalized,
    runs_for_margin,
)


class TestConfidenceInterval:
    def test_paper_margin_at_1000_runs(self):
        # The paper: 1000 runs give 95% CI with ~3% margins.
        ci = confidence_interval(500, 1000)
        assert 0.030 <= ci.margin <= 0.032

    def test_zero_successes(self):
        ci = confidence_interval(0, 100)
        assert ci.proportion == 0.0
        assert ci.margin == 0.0
        assert ci.low == 0.0

    def test_bounds_clamped(self):
        ci = confidence_interval(99, 100)
        assert ci.high <= 1.0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval(5, 0)
        with pytest.raises(ValueError):
            confidence_interval(11, 10)
        with pytest.raises(ValueError):
            confidence_interval(5, 10, level=0.5)

    def test_runs_for_margin_inverse(self):
        runs = runs_for_margin(0.031)
        assert 990 <= runs <= 1010


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestNormalized:
    def test_divides(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.add(v)
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(5.0 / 3.0)
        assert stat.min == 1.0
        assert stat.max == 4.0

    def test_single_sample_zero_variance(self):
        stat = RunningStat()
        stat.add(7.0)
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStat().mean


@given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@given(st.integers(min_value=1, max_value=5_000))
def test_ci_margin_shrinks_with_runs(half_runs):
    runs = 2 * half_runs  # keep the proportion exactly 0.5
    small = confidence_interval(runs // 2, runs)
    bigger = confidence_interval(runs * 2, runs * 4)
    assert bigger.margin <= small.margin + 1e-12


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=2, max_size=50))
def test_running_stat_matches_numpy(values):
    import numpy as np

    stat = RunningStat()
    for v in values:
        stat.add(v)
    assert stat.mean == pytest.approx(float(np.mean(values)), abs=1e-6)
    assert stat.variance == pytest.approx(
        float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6)
