"""Tests for statistics helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import (
    ConfidenceInterval,
    RunningStat,
    confidence_interval,
    geometric_mean,
    normalized,
    runs_for_margin,
    stratified_interval,
    zero_run_interval,
)

LEVELS = (0.90, 0.95, 0.99)
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


class TestConfidenceInterval:
    def test_paper_margin_at_1000_runs(self):
        # The paper: 1000 runs give 95% CI with ~3% margins.  Wilson
        # and the normal approximation agree at p=0.5, n=1000.
        ci = confidence_interval(500, 1000)
        assert 0.030 <= ci.margin <= 0.032
        legacy = confidence_interval(500, 1000, method="normal")
        assert 0.030 <= legacy.margin <= 0.032

    def test_zero_successes_has_nonzero_margin(self):
        # The degenerate-CI bug: the normal approximation collapses to
        # a zero-width interval at p=0; Wilson must not.
        ci = confidence_interval(0, 100)
        assert ci.proportion == 0.0
        assert ci.low == 0.0
        assert ci.margin > 0.0
        # Exact Wilson upper bound at p=0: z^2 / (n + z^2).
        z2 = _Z[0.95] ** 2
        assert ci.high == pytest.approx(z2 / (100 + z2))
        # Rule-of-three sanity: the bound is the right order of 3/n.
        assert 0.0 < ci.high <= 2 * 3.0 / 100

    def test_all_successes_has_nonzero_margin(self):
        ci = confidence_interval(100, 100)
        assert ci.proportion == 1.0
        assert ci.high == pytest.approx(1.0)
        assert ci.margin > 0.0
        z2 = _Z[0.95] ** 2
        assert ci.low == pytest.approx(100 / (100 + z2))

    def test_normal_method_keeps_degenerate_boundary(self):
        # Documented legacy behavior, kept behind method="normal".
        ci = confidence_interval(0, 100, method="normal")
        assert ci.margin == 0.0

    def test_boundary_margins_nonzero_at_all_levels(self):
        for level in LEVELS:
            for successes in (0, 100):
                ci = confidence_interval(successes, 100, level=level)
                assert ci.margin > 0.0, (level, successes)

    def test_asymmetric_bounds_near_boundary(self):
        # Near p=0 the Wilson interval is asymmetric: the upper arm is
        # longer than the lower, and margin is the longer arm.
        ci = confidence_interval(2, 100)
        assert ci.low > 0.0
        assert ci.high - ci.proportion > ci.proportion - ci.low
        assert ci.margin == pytest.approx(ci.high - ci.proportion)

    def test_str_prints_actual_bounds(self):
        ci = confidence_interval(0, 100)
        text = str(ci)
        assert f"[{ci.low:.4f}, {ci.high:.4f}]" in text
        assert "+/-" not in text

    def test_to_dict_includes_bounds(self):
        ci = confidence_interval(3, 50)
        d = ci.to_dict()
        assert d["low"] == ci.low and d["high"] == ci.high
        assert set(d) == {"proportion", "margin", "low", "high",
                          "level", "runs"}

    def test_legacy_two_field_construction_defaults_bounds(self):
        ci = ConfidenceInterval(0.5, 0.1, 0.95, 100)
        assert ci.low == pytest.approx(0.4)
        assert ci.high == pytest.approx(0.6)
        clamped = ConfidenceInterval(0.05, 0.1, 0.95, 10)
        assert clamped.low == 0.0

    def test_bounds_clamped(self):
        ci = confidence_interval(99, 100)
        assert ci.high <= 1.0

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            confidence_interval(5, 0)
        with pytest.raises(ValueError):
            confidence_interval(11, 10)
        with pytest.raises(ValueError):
            confidence_interval(5, 10, level=0.5)
        with pytest.raises(ValueError):
            confidence_interval(5, 10, method="agresti")

    def test_runs_for_margin_inverse(self):
        runs = runs_for_margin(0.031, method="normal")
        assert 990 <= runs <= 1010
        # Wilson needs z^2 (~4) fewer runs for the same p=0.5 margin.
        wilson_runs = runs_for_margin(0.031)
        assert runs - 6 <= wilson_runs < runs
        ci = confidence_interval(wilson_runs // 2, wilson_runs)
        assert ci.margin <= 0.031 + 1e-9

    def test_zero_run_interval(self):
        ci = zero_run_interval()
        assert (ci.low, ci.high) == (0.0, 1.0)
        assert ci.runs == 0 and ci.margin == 1.0
        with pytest.raises(ValueError):
            zero_run_interval(level=0.5)


class TestStratifiedInterval:
    def test_single_stratum_matches_plain_wilson(self):
        plain = confidence_interval(10, 100)
        combined = stratified_interval([(1.0, 10, 100)])
        assert combined.proportion == pytest.approx(plain.proportion)
        assert combined.margin == pytest.approx(plain.margin)

    def test_weighted_mean_of_proportions(self):
        combined = stratified_interval(
            [(0.25, 0, 100), (0.75, 100, 100)])
        assert combined.proportion == pytest.approx(0.75)
        assert combined.runs == 200

    def test_weights_are_normalized(self):
        a = stratified_interval([(1.0, 5, 50), (3.0, 10, 50)])
        b = stratified_interval([(0.25, 5, 50), (0.75, 10, 50)])
        assert a.proportion == pytest.approx(b.proportion)
        assert a.margin == pytest.approx(b.margin)

    def test_empty_stratum_widens_interval(self):
        sampled = stratified_interval([(0.5, 5, 100), (0.5, 5, 100)])
        gapped = stratified_interval([(0.5, 5, 100), (0.5, 0, 0)])
        assert gapped.margin > sampled.margin
        assert gapped.margin >= 0.5  # vacuous stratum at weight 0.5

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            stratified_interval([])
        with pytest.raises(ValueError):
            stratified_interval([(0.0, 0, 0)])
        with pytest.raises(ValueError):
            stratified_interval([(-1.0, 0, 10), (2.0, 0, 10)])


class TestGeometricMean:
    def test_identity(self):
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


class TestNormalized:
    def test_divides(self):
        assert normalized([2.0, 4.0], 2.0) == [1.0, 2.0]

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            normalized([1.0], 0.0)


class TestRunningStat:
    def test_mean_and_variance(self):
        stat = RunningStat()
        for v in (1.0, 2.0, 3.0, 4.0):
            stat.add(v)
        assert stat.mean == pytest.approx(2.5)
        assert stat.variance == pytest.approx(5.0 / 3.0)
        assert stat.min == 1.0
        assert stat.max == 4.0

    def test_single_sample_zero_variance(self):
        stat = RunningStat()
        stat.add(7.0)
        assert stat.variance == 0.0
        assert stat.stdev == 0.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RunningStat().mean


@given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                min_size=1, max_size=20))
def test_geomean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@given(st.integers(min_value=1, max_value=5_000))
def test_ci_margin_shrinks_with_runs(half_runs):
    runs = 2 * half_runs  # keep the proportion exactly 0.5
    small = confidence_interval(runs // 2, runs)
    bigger = confidence_interval(runs * 2, runs * 4)
    assert bigger.margin <= small.margin + 1e-12


@given(st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=200),
       st.sampled_from(LEVELS))
def test_wilson_bounds_contain_estimate(successes, runs, level):
    successes = min(successes, runs)
    ci = confidence_interval(successes, runs, level)
    assert 0.0 <= ci.low <= ci.proportion <= ci.high <= 1.0
    assert ci.margin == pytest.approx(
        max(ci.proportion - ci.low, ci.high - ci.proportion))
    assert ci.margin > 0.0


@given(st.floats(min_value=0.01, max_value=0.2),
       st.sampled_from(LEVELS))
def test_runs_for_margin_round_trip(margin, level):
    # confidence_interval(n/2, runs_for_margin(m)) has margin <= m.
    # (Margins below ~0.2 keep n large enough that p=0.5 really is the
    # Wilson worst case; at tiny n the p=0 arm is wider.)
    runs = runs_for_margin(margin, level)
    ci = confidence_interval(runs // 2, runs, level)
    assert ci.margin <= margin + 1e-9


@given(st.lists(st.tuples(st.floats(min_value=0.1, max_value=10.0),
                          st.integers(min_value=0, max_value=50),
                          st.integers(min_value=1, max_value=50)),
                min_size=1, max_size=6))
def test_stratified_interval_is_convex_combination(strata):
    strata = [(w, min(s, n), n) for w, s, n in strata]
    combined = stratified_interval(strata)
    props = [s / n for _, s, n in strata]
    assert min(props) - 1e-9 <= combined.proportion \
        <= max(props) + 1e-9
    assert 0.0 <= combined.low <= combined.high <= 1.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=2, max_size=50))
def test_running_stat_matches_numpy(values):
    import numpy as np

    stat = RunningStat()
    for v in values:
        stat.add(v)
    assert stat.mean == pytest.approx(float(np.mean(values)), abs=1e-6)
    assert stat.variance == pytest.approx(
        float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6)
