"""Tests for deterministic RNG streams."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import RngStream, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, 1, 2) == derive_seed(42, 1, 2)

    def test_keys_matter(self):
        assert derive_seed(42, 1) != derive_seed(42, 2)

    def test_root_matters(self):
        assert derive_seed(1, 7) != derive_seed(2, 7)

    def test_fits_63_bits(self):
        for k in range(50):
            assert 0 <= derive_seed(99, k) < (1 << 63)


class TestRngStream:
    def test_same_seed_same_sequence(self):
        a = RngStream(7)
        b = RngStream(7)
        assert [a.choice_index(100) for _ in range(20)] == \
            [b.choice_index(100) for _ in range(20)]

    def test_child_streams_independent_of_parent_state(self):
        a = RngStream(7)
        a.choice_index(10)  # consume parent state
        b = RngStream(7)
        assert a.child(3).choice_index(1000) == \
            b.child(3).choice_index(1000)

    def test_choice_index_range(self):
        rng = RngStream(1)
        for _ in range(100):
            assert 0 <= rng.choice_index(5) < 5

    def test_choice_index_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).choice_index(0)

    def test_sample_indices_distinct(self):
        picks = RngStream(3).sample_indices(10, 10)
        assert sorted(picks) == list(range(10))

    def test_sample_too_many_rejected(self):
        with pytest.raises(ValueError):
            RngStream(3).sample_indices(4, 5)

    def test_coin_is_binary(self):
        values = {RngStream(5).coin() for _ in range(1)}
        rng = RngStream(5)
        values = {rng.coin() for _ in range(100)}
        assert values == {0, 1}

    def test_bit_positions_distinct_and_in_range(self):
        rng = RngStream(11)
        positions = rng.bit_positions(32, 4)
        assert len(set(positions)) == 4
        assert all(0 <= p < 32 for p in positions)


class TestWeighted:
    def test_zero_weight_never_selected(self):
        rng = RngStream(13)
        weights = [0.0, 1.0, 0.0, 1.0]
        for _ in range(200):
            assert rng.weighted_index(weights) in (1, 3)

    def test_heavy_weight_dominates(self):
        rng = RngStream(17)
        weights = [1.0, 999.0]
        picks = [rng.weighted_index(weights) for _ in range(300)]
        assert picks.count(1) > 250

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).weighted_index([0.0, 0.0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            RngStream(1).weighted_index([1.0, -1.0])

    def test_weighted_indices_distinct(self):
        rng = RngStream(19)
        picks = rng.weighted_indices([1, 2, 3, 4, 5], 5)
        assert sorted(picks) == [0, 1, 2, 3, 4]

    def test_weighted_indices_respects_nonzero_population(self):
        with pytest.raises(ValueError):
            RngStream(1).weighted_indices([1.0, 0.0], 2)


class TestChildPool:
    def test_matches_individual_children(self):
        a = RngStream(23)
        b = RngStream(23)
        pool = a.child_pool(5)
        assert [c.choice_index(10**6) for c in pool] == \
            [b.child(i).choice_index(10**6) for i in range(5)]

    def test_grows_monotonically(self):
        rng = RngStream(29)
        first = rng.child_pool(2)
        second = rng.child_pool(4)
        assert second[:2] == first
        assert len(second) == 4

    def test_shorter_request_reuses_pool(self):
        rng = RngStream(31)
        four = rng.child_pool(4)
        two = rng.child_pool(2)
        assert two == four[:2]

    def test_independent_of_parent_state(self):
        a = RngStream(37)
        a.choice_index(10)
        b = RngStream(37)
        assert a.child_pool(3)[2].choice_index(1000) == \
            b.child_pool(3)[2].choice_index(1000)


class TestPreparedWeights:
    def test_matches_weighted_indices(self):
        weights = [1.0, 5.0, 0.0, 3.0, 2.0]
        p = np.asarray(weights) / np.sum(weights)
        a = RngStream(41)
        b = RngStream(41)
        assert list(a.prepared_weighted_indices(p, 3)) == \
            list(b.weighted_indices(weights, 3))


@given(st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=100))
def test_derive_seed_stable(root, key):
    assert derive_seed(root, key) == derive_seed(root, key)
