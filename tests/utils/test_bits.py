"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bits import (
    bit_count,
    bits_to_word,
    extract_bits,
    flip_bits,
    hamming_distance,
    set_bits,
    word_to_bits,
)


class TestBitCount:
    def test_zero(self):
        assert bit_count(0) == 0

    def test_all_ones_byte(self):
        assert bit_count(0xFF) == 8

    def test_single_high_bit(self):
        assert bit_count(1 << 63) == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bit_count(-1)


class TestFlipBits:
    def test_flip_one(self):
        assert flip_bits(0b1000, [3]) == 0

    def test_flip_twice_restores(self):
        assert flip_bits(flip_bits(0xABCD, [0, 5, 11]), [0, 5, 11]) \
            == 0xABCD

    def test_flip_sets_cleared_bit(self):
        assert flip_bits(0, [7]) == 128

    def test_negative_position_rejected(self):
        with pytest.raises(ValueError):
            flip_bits(1, [-2])


class TestSetBits:
    def test_stuck_at_one(self):
        assert set_bits(0, [0, 2], 1) == 0b101

    def test_stuck_at_zero(self):
        assert set_bits(0b111, [1], 0) == 0b101

    def test_idempotent(self):
        once = set_bits(0x5A, [3, 4], 1)
        assert set_bits(once, [3, 4], 1) == once

    def test_bad_value_rejected(self):
        with pytest.raises(ValueError):
            set_bits(0, [1], 2)


class TestExtract:
    def test_gather_order(self):
        # bits at positions 4 and 0 of 0b10001 -> 0b11
        assert extract_bits(0b10001, [0, 4]) == 0b11

    def test_empty(self):
        assert extract_bits(0xFFFF, []) == 0


class TestWordRoundtrip:
    def test_roundtrip_small(self):
        assert bits_to_word(word_to_bits(0b1011, 4)) == 0b1011

    def test_width_check(self):
        with pytest.raises(ValueError):
            word_to_bits(16, 4)

    def test_bad_bit_rejected(self):
        with pytest.raises(ValueError):
            bits_to_word([0, 2])


class TestHamming:
    def test_distance_zero(self):
        assert hamming_distance(42, 42) == 0

    def test_distance_counts_differences(self):
        assert hamming_distance(0b1010, 0b0101) == 4


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.sets(st.integers(min_value=0, max_value=63), min_size=1,
               max_size=8))
def test_flip_changes_exactly_those_bits(value, positions):
    flipped = flip_bits(value, positions)
    assert hamming_distance(value, flipped) == len(positions)


@given(st.integers(min_value=0, max_value=(1 << 64) - 1),
       st.sets(st.integers(min_value=0, max_value=63), min_size=1,
               max_size=8),
       st.integers(min_value=0, max_value=1))
def test_stuck_at_forces_level(value, positions, level):
    stuck = set_bits(value, positions, level)
    for pos in positions:
        assert (stuck >> pos) & 1 == level
    # All other bits are untouched.
    mask = 0
    for pos in positions:
        mask |= 1 << pos
    assert stuck & ~mask == value & ~mask


@given(st.integers(min_value=0, max_value=(1 << 32) - 1))
def test_word_bits_roundtrip(value):
    assert bits_to_word(word_to_bits(value, 32)) == value
