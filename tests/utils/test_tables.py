"""Tests for plain-text table rendering."""

import pytest

from repro.utils.tables import TextTable


def test_renders_headers_and_rows():
    t = TextTable(["app", "x"])
    t.add_row(["P-BICG", 1])
    out = t.render()
    lines = out.splitlines()
    assert lines[0].startswith("app")
    assert "---" in lines[1]
    assert "P-BICG" in lines[2]


def test_column_alignment_pads_to_widest():
    t = TextTable(["a"])
    t.add_row(["short"])
    t.add_row(["much-longer-cell"])
    lines = t.render().splitlines()
    assert len(lines[2]) == len(lines[3])


def test_float_formatting():
    t = TextTable(["v"], float_format="{:.2f}")
    t.add_row([1.23456])
    assert "1.23" in t.render()
    assert "1.234" not in t.render()


def test_bool_formatting():
    t = TextTable(["flag"])
    t.add_row([True])
    t.add_row([False])
    out = t.render()
    assert "yes" in out and "no" in out


def test_row_width_mismatch_rejected():
    t = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        t.add_row([1])


def test_empty_headers_rejected():
    with pytest.raises(ValueError):
        TextTable([])


def test_indent():
    t = TextTable(["a"])
    t.add_row([1])
    for line in t.render(indent="  ").splitlines():
        assert line.startswith("  ")


def test_row_count():
    t = TextTable(["a"])
    assert t.row_count == 0
    t.add_row([1])
    assert t.row_count == 1
