"""Shared fixtures.

Expensive artifacts (traces, profiles, managers) are session-scoped:
they are deterministic and read-only, so every test can share them.
Small-scale apps keep the suite fast; a few shape tests use the
default scale where the paper's contrasts need headroom.
"""

from __future__ import annotations

import pytest

from repro.arch.address_space import DeviceMemory
from repro.arch.config import GpuConfig, fast_config
from repro.core.manager import ReliabilityManager
from repro.kernels.registry import create_app


@pytest.fixture()
def memory() -> DeviceMemory:
    return DeviceMemory(4 * 1024 * 1024)


@pytest.fixture(scope="session")
def test_config() -> GpuConfig:
    return fast_config()


def _manager(name: str, scale: str = "small") -> ReliabilityManager:
    return ReliabilityManager(create_app(name, scale=scale))


@pytest.fixture(scope="session")
def bicg_manager() -> ReliabilityManager:
    """Default-scale P-BICG: big enough for hot-block contrast."""
    return _manager("P-BICG", scale="default")


@pytest.fixture(scope="session")
def small_bicg_manager() -> ReliabilityManager:
    return _manager("P-BICG", scale="small")


@pytest.fixture(scope="session")
def laplacian_manager() -> ReliabilityManager:
    """Small A-Laplacian: has hot blocks at any scale."""
    return _manager("A-Laplacian", scale="small")


@pytest.fixture(scope="session")
def srad_manager() -> ReliabilityManager:
    return _manager("A-SRAD", scale="small")


@pytest.fixture(scope="session")
def cnn_manager() -> ReliabilityManager:
    return _manager("C-NN", scale="small")


@pytest.fixture(scope="session")
def mvt_manager() -> ReliabilityManager:
    return _manager("P-MVT", scale="small")
