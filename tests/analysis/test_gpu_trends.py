"""Tests for the Figure 2 survey dataset."""

import pytest

from repro.data.gpu_trends import (
    L2_SIZE_TREND,
    growth_factor,
    trend_for,
)


def test_both_vendors_present():
    vendors = {g.vendor for g in L2_SIZE_TREND}
    assert vendors == {"NVIDIA", "AMD"}


def test_chronological_order():
    years = [g.year for g in L2_SIZE_TREND]
    assert years == sorted(years)


def test_l2_sizes_grow_strongly():
    # The figure's message: both vendors grow L2 by an order of
    # magnitude over the surveyed decade.
    assert growth_factor("NVIDIA") > 10
    assert growth_factor("AMD") > 5


def test_trend_for_filters_vendor():
    nvidia = trend_for("NVIDIA")
    assert all(g.vendor == "NVIDIA" for g in nvidia)
    assert len(nvidia) >= 5


def test_mib_conversion():
    a100 = [g for g in L2_SIZE_TREND if "A100" in g.model][0]
    assert a100.l2_mib == pytest.approx(40.0)


def test_unknown_vendor_rejected():
    with pytest.raises(ValueError):
        growth_factor("Imagination")
