"""Tests for the recovery-strategy expected-runtime models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.recovery import (
    compare_strategies,
    expected_runtime_checkpoint,
    expected_runtime_rerun,
)
from repro.core.baselines import CheckpointModel
from repro.errors import ConfigError


def model(overhead=0.05, total=100_000):
    interval = total // 10
    return CheckpointModel(
        writable_bytes=int(overhead * interval * 192),
        checkpoint_interval_cycles=interval,
    )


class TestRerun:
    def test_no_faults_is_just_the_scheme(self):
        assert expected_runtime_rerun(1.012, 0.0) == \
            pytest.approx(1.012)

    def test_expected_geometric_retries(self):
        # p = 0.5 doubles the expected time.
        assert expected_runtime_rerun(1.0, 0.5) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            expected_runtime_rerun(0.0, 0.1)
        with pytest.raises(ConfigError):
            expected_runtime_rerun(1.0, 1.0)


class TestCheckpoint:
    def test_overhead_always_paid(self):
        t = expected_runtime_checkpoint(1.0, 0.0, model(0.08), 100_000)
        assert t == pytest.approx(1.08, rel=1e-2)

    def test_rollback_cheaper_than_rerun_at_high_fault_rates(self):
        m = model(0.05)
        p = 0.6
        rerun = expected_runtime_rerun(1.012, p)
        ckpt = expected_runtime_checkpoint(1.012, p, m, 100_000)
        assert ckpt < rerun

    def test_rerun_cheaper_at_low_fault_rates(self):
        m = model(0.05)
        p = 0.01
        rerun = expected_runtime_rerun(1.012, p)
        ckpt = expected_runtime_checkpoint(1.012, p, m, 100_000)
        assert rerun < ckpt


class TestComparison:
    def test_winner_changes_with_fault_rate(self):
        m = model(0.05)
        low = compare_strategies(1.012, m, 100_000, 0.01)
        high = compare_strategies(1.012, m, 100_000, 0.6)
        assert low.winner == "detect+rerun"
        assert high.winner == "detect+checkpoint"

    def test_dmr_never_wins_at_sane_rates(self):
        m = model(0.05)
        for p in (0.0, 0.1, 0.3):
            row = compare_strategies(1.012, m, 100_000, p)
            assert row.winner != "dmr"


@given(st.floats(min_value=0.0, max_value=0.9),
       st.floats(min_value=1.0, max_value=1.5))
def test_rerun_monotone_in_fault_rate(p, slowdown):
    low = expected_runtime_rerun(slowdown, p * 0.5)
    high = expected_runtime_rerun(slowdown, p)
    assert high >= low - 1e-12


@given(st.floats(min_value=0.0, max_value=0.9))
def test_checkpoint_bounded_by_rerun_plus_overhead(p):
    m = model(0.05)
    ckpt = expected_runtime_checkpoint(1.0, p, m, 100_000)
    rerun = expected_runtime_rerun(1.0, p)
    # Rolling back at most half an interval per fault cannot exceed
    # full reruns plus the steady-state overhead factor.
    assert ckpt <= rerun * (1.0 + m.overhead_fraction) + 1e-9
