"""Tests for the CSV exporter."""

import csv
from pathlib import Path

import pytest

from repro.analysis.export import (
    export_all,
    export_fig2,
    export_fig3,
    export_fig6,
    export_fig7,
    export_fig9,
    export_table1,
    export_table2,
)


def read_csv(path: Path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestStaticExports:
    def test_table1(self, tmp_path):
        rows = read_csv(export_table1(tmp_path))
        assert rows[0] == ["category", "configuration"]
        assert len(rows) == 7  # header + 6 Table I rows

    def test_fig2(self, tmp_path):
        rows = read_csv(export_fig2(tmp_path))
        assert rows[0] == ["vendor", "model", "year", "l2_mib"]
        assert len(rows) > 10

    def test_table2(self, tmp_path):
        rows = read_csv(export_table2(tmp_path))
        assert len(rows) == 9  # header + 8 apps


class TestPerAppExports:
    def test_fig3_curve(self, laplacian_manager, tmp_path):
        path = export_fig3(laplacian_manager, tmp_path)
        assert path.name == "fig3_a_laplacian.csv"
        rows = read_csv(path)
        assert len(rows) == laplacian_manager.profile.n_blocks + 1
        values = [float(r[1]) for r in rows[1:]]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_fig6_grid(self, laplacian_manager, tmp_path):
        rows = read_csv(export_fig6(laplacian_manager, tmp_path,
                                    runs=5))
        assert len(rows) == 13  # header + 2 spaces x 6 grid cells
        for row in rows[1:]:
            assert int(row[6]) == 5  # runs column

    def test_fig7_sweep(self, laplacian_manager, tmp_path):
        rows = read_csv(export_fig7(laplacian_manager, tmp_path))
        n_objects = len(laplacian_manager.app.object_importance)
        assert len(rows) == 1 + 2 * n_objects

    def test_fig9_grid(self, laplacian_manager, tmp_path):
        rows = read_csv(export_fig9(laplacian_manager, tmp_path,
                                    runs=5))
        assert rows[0][0] == "scheme"
        schemes = {r[0] for r in rows[1:]}
        assert "baseline" in schemes
        assert "correction" in schemes

    def test_export_all_writes_everything(self, laplacian_manager,
                                          tmp_path):
        paths = export_all(laplacian_manager, tmp_path, runs=5)
        assert len(paths) == 8
        for path in paths:
            assert path.exists()
            assert path.stat().st_size > 0
