"""Tests for result reporting helpers."""

import pytest

from repro.analysis.report import (
    campaign_table,
    performance_table,
    sdc_drop_percent,
)
from repro.faults.campaign import CampaignConfig, CampaignResult
from repro.faults.outcomes import Outcome
from repro.sim.metrics import SimReport


def make_result(sdc=0, masked=10, detected=0, corrected=0, crash=0):
    result = CampaignResult(
        app_name="app", scheme_name="detection",
        selection_name="hot-blocks", config=CampaignConfig(runs=10),
    )
    result.counts[Outcome.SDC] = sdc
    result.counts[Outcome.MASKED] = masked
    result.counts[Outcome.DETECTED] = detected
    result.counts[Outcome.CORRECTED] = corrected
    result.counts[Outcome.CRASH] = crash
    return result


def make_sim(cycles=1000, missed=100, name="app", scheme="baseline"):
    return SimReport(
        app_name=name, scheme_name=scheme, protected_names=(),
        cycles=cycles, kernel_cycles={"k": cycles}, instructions=5000,
        demand_misses=missed, replica_transactions=0,
        store_transactions=10, l1_accesses=1000, l1_hits=900,
        l2_accesses=missed, l2_hits=50, dram_requests=50,
        dram_row_hits=40,
    )


class TestSdcDrop:
    def test_full_drop(self):
        assert sdc_drop_percent(make_result(sdc=50),
                                make_result(sdc=0)) == 100.0

    def test_partial_drop(self):
        assert sdc_drop_percent(make_result(sdc=50),
                                make_result(sdc=10)) == 80.0

    def test_zero_baseline_is_zero(self):
        assert sdc_drop_percent(make_result(sdc=0),
                                make_result(sdc=0)) == 0.0

    def test_negative_drop_possible(self):
        assert sdc_drop_percent(make_result(sdc=10),
                                make_result(sdc=20)) == -100.0


class TestTables:
    def test_campaign_table_rows(self):
        table = campaign_table([make_result(sdc=3), make_result()])
        assert table.row_count == 2
        assert "sdc" in table.render()

    def test_performance_table_normalizes(self):
        base = make_sim()
        prot = make_sim(cycles=1100, missed=150, scheme="detection")
        table = performance_table([base, prot], base)
        text = table.render()
        assert "1.100" in text
        assert "1.500" in text


class TestSimReportMath:
    def test_rates(self):
        report = make_sim()
        assert report.l1_hit_rate == pytest.approx(0.9)
        assert report.ipc == pytest.approx(5.0)

    def test_zero_baseline_rejected(self):
        base = make_sim(cycles=0)
        with pytest.raises(ValueError):
            make_sim().slowdown_vs(base)
