"""Additional tests for figure-data helpers."""

import pytest

from repro.analysis.figures import Fig9Cell, average_sdc_drop


def cell(level, n_blocks, n_bits, sdc, crash=0):
    return Fig9Cell(
        app_name="app", scheme="correction", n_protected=level,
        n_blocks=n_blocks, n_bits=n_bits, sdc=sdc, detected=0,
        corrected=0, crash=crash, runs=100,
    )


class TestAverageSdcDrop:
    def grid(self):
        cells = []
        for n_blocks, n_bits in ((1, 2), (1, 3), (1, 4),
                                 (5, 2), (5, 3), (5, 4)):
            cells.append(cell(0, n_blocks, n_bits, sdc=40, crash=20))
            cells.append(cell(2, n_blocks, n_bits, sdc=4, crash=0))
        return cells

    def test_sdc_only_drop(self):
        drop = average_sdc_drop(self.grid(), hot_level=2)
        assert drop == pytest.approx(90.0)

    def test_bad_outcome_drop_includes_crashes(self):
        drop = average_sdc_drop(self.grid(), hot_level=2,
                                include_crashes=True)
        assert drop == pytest.approx(100.0 * (60 - 4) / 60)

    def test_zero_baseline_configs_skipped(self):
        cells = [
            cell(0, 1, 2, sdc=0),
            cell(2, 1, 2, sdc=0),
            cell(0, 1, 3, sdc=10),
            cell(2, 1, 3, sdc=5),
        ]
        assert average_sdc_drop(cells, hot_level=2) == \
            pytest.approx(50.0)

    def test_negative_drop_possible(self):
        cells = [
            cell(0, 1, 2, sdc=5, crash=20),
            cell(2, 1, 2, sdc=10, crash=0),
        ]
        assert average_sdc_drop(cells, hot_level=2) == \
            pytest.approx(-100.0)
        assert average_sdc_drop(cells, hot_level=2,
                                include_crashes=True) == \
            pytest.approx(100.0 * (25 - 10) / 25)

    def test_empty_grid_is_zero(self):
        assert average_sdc_drop([], hot_level=1) == 0.0
