"""Tests for sweep-level aggregation and reporting."""

import pytest

from repro.analysis.sweep import (
    SweepCellSummary,
    sdc_reduction_by_app,
    summarize_sweep,
    sweep_table,
)
from repro.faults.campaign import CampaignConfig, CampaignResult
from repro.faults.outcomes import Outcome
from repro.runtime.session import CellSpec, SweepEntry, SweepResult, SweepSpec


def make_cell(app="A-Laplacian", scheme="baseline", protect="hot",
              runs=10) -> CellSpec:
    return CellSpec(app=app, scheme=scheme, protect=protect,
                    selection="uniform", runs=runs, n_blocks=1,
                    n_bits=2, seed=1)


def make_result(app, scheme, counts) -> CampaignResult:
    result = CampaignResult(
        app_name=app, scheme_name=scheme, selection_name="uniform",
        config=CampaignConfig(runs=sum(counts.values()), seed=1),
    )
    for outcome, n in counts.items():
        result.counts[outcome] += n
    return result


def make_sweep(*cells) -> SweepResult:
    spec = SweepSpec(apps=("A-Laplacian",), runs=10)
    sweep = SweepResult(spec=spec)
    for cell, counts in cells:
        sweep.entries.append(SweepEntry(
            cell=cell, digest="0" * 64,
            result=make_result(cell.app, cell.scheme, counts),
        ))
    return sweep


BASELINE = (make_cell(), {Outcome.MASKED: 6, Outcome.SDC: 4})
CORRECTION = (make_cell(scheme="correction"),
              {Outcome.MASKED: 6, Outcome.SDC: 1, Outcome.CORRECTED: 3})


class TestSummarizeSweep:
    def test_rows_in_cell_order(self):
        rows = summarize_sweep(make_sweep(BASELINE, CORRECTION))
        assert [r.scheme for r in rows] == ["baseline", "correction"]

    def test_counts_and_rate(self):
        row = summarize_sweep(make_sweep(BASELINE))[0]
        assert (row.masked, row.sdc, row.runs) == (6, 4, 10)
        assert row.sdc_rate == pytest.approx(0.4)

    def test_interval_covers_rate(self):
        row = summarize_sweep(make_sweep(BASELINE))[0]
        assert row.sdc_interval.low <= row.sdc_rate \
            <= row.sdc_interval.high

    def test_zero_runs_rate(self):
        row = SweepCellSummary(
            app="X", scheme="baseline", protect="hot", runs=0,
            masked=0, sdc=0, detected=0, corrected=0, crash=0,
            sdc_interval=None,
        )
        assert row.sdc_rate == 0.0


class TestSweepTable:
    def test_renders_all_cells(self):
        rows = summarize_sweep(make_sweep(BASELINE, CORRECTION))
        rendered = sweep_table(rows).render()
        assert "baseline" in rendered
        assert "correction" in rendered
        assert "0.4000" in rendered


class TestSdcReduction:
    def test_reduction_vs_baseline(self):
        rows = summarize_sweep(make_sweep(BASELINE, CORRECTION))
        reductions = sdc_reduction_by_app(rows)
        assert reductions["A-Laplacian"]["correction~hot"] \
            == pytest.approx(75.0)

    def test_no_baseline_no_rows(self):
        rows = summarize_sweep(make_sweep(CORRECTION))
        assert sdc_reduction_by_app(rows) == {}

    def test_zero_baseline_sdc_reports_zero(self):
        clean = (make_cell(), {Outcome.MASKED: 10})
        rows = summarize_sweep(make_sweep(clean, CORRECTION))
        assert sdc_reduction_by_app(rows)["A-Laplacian"][
            "correction~hot"] == 0.0
