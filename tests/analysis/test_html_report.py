"""The HTML report: determinism, content, and store-parallelism proof.

The headline invariant: stores built from the same campaign outputs —
at any ``--jobs``/``--batch`` — render byte-identical HTML, because
the report reads only store contents and formats every number through
fixed-precision specifiers (no clocks, no environment).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.html import render_html_report, write_html_report
from repro.faults.campaign import Campaign, CampaignConfig
from repro.faults.selection import uniform_selection
from repro.kernels.registry import create_app
from repro.obs.provenance import ProvenanceWriter
from repro.obs.records import TelemetryWriter, write_decisions
from repro.obs.store import ResultsStore


def make_campaign(runs=24, batch=1, jobs=1):
    app = create_app("A-Laplacian", scale="small")
    memory = app.fresh_memory()
    pool = [a for o in memory.objects for a in o.block_addrs()]
    return Campaign(
        app,
        uniform_selection(pool),
        scheme="correction",
        protect=(),
        config=CampaignConfig(runs=runs, n_blocks=2, n_bits=2,
                              seed=20210621),
        keep_runs=True,
        collect_records=True,
        collect_provenance=True,
        batch=batch,
        jobs=jobs,
    )


def build_store(tmp_path, tag, batch=1):
    """Run one campaign at ``batch`` and warehouse all its outputs."""
    result = make_campaign(batch=batch).run()
    telemetry = tmp_path / f"t-{tag}.jsonl"
    with TelemetryWriter(str(telemetry)) as writer:
        writer.write_result(result)
    provenance = tmp_path / f"p-{tag}.jsonl"
    with ProvenanceWriter(str(provenance)) as writer:
        writer.write_result(result)
    from repro.faults.adaptive import AdaptiveConfig, run_adaptive

    adaptive = run_adaptive(
        make_campaign(runs=32),
        AdaptiveConfig(target_margin=0.2, check_every=8))
    decisions = tmp_path / "decisions.jsonl"
    write_decisions(str(decisions), adaptive.decisions)
    bench = tmp_path / "BENCH_demo.json"
    bench.write_text(json.dumps({"throughput": 41.5, "ratio": 1.01}))
    store = ResultsStore(str(tmp_path / f"store-{tag}.db"))
    for path in (telemetry, provenance, decisions, bench):
        store.ingest(str(path))
    return store


class TestDeterminism:
    def test_render_twice_is_byte_identical(self, tmp_path):
        store = build_store(tmp_path, "a")
        try:
            assert render_html_report(store) == \
                render_html_report(store)
        finally:
            store.close()

    def test_batch_invariant_stores_render_identically(self, tmp_path):
        """batch=1 and batch=8 campaign outputs are byte-identical →
        same cell digests → byte-identical report."""
        one = build_store(tmp_path, "b1", batch=1)
        eight = build_store(tmp_path, "b8", batch=8)
        try:
            assert render_html_report(one) == render_html_report(eight)
        finally:
            one.close()
            eight.close()

    def test_write_returns_byte_count(self, tmp_path):
        store = build_store(tmp_path, "w")
        try:
            out = tmp_path / "report.html"
            n = write_html_report(store, str(out))
            assert out.stat().st_size == n
            assert out.read_text(encoding="utf-8") == \
                render_html_report(store)
        finally:
            store.close()


class TestContent:
    @pytest.fixture(scope="class")
    def html(self, tmp_path_factory):
        store = build_store(tmp_path_factory.mktemp("report"), "c")
        try:
            return render_html_report(store)
        finally:
            store.close()

    def test_is_one_self_contained_page(self, html):
        assert html.startswith("<!DOCTYPE html>")
        assert html.endswith("</html>\n")
        assert "<style>" in html
        assert "src=" not in html  # no external resources

    def test_version_stamps_in_header(self, html):
        import repro
        from repro.obs.store import STORE_SCHEMA_VERSION

        assert f"repro_version={repro.__version__}" in html
        assert (f"store_schema_version={STORE_SCHEMA_VERSION}"
                in html)

    def test_all_sections_present(self, html):
        for heading in ("Campaign cells", "Outcome and cause taxonomy",
                        "Per-object vulnerability heatmap",
                        "Adaptive stop history",
                        "Benchmark trajectory"):
            assert heading in html, heading

    def test_cells_and_heatmap_content(self, html):
        assert "A-Laplacian" in html
        assert "correction" in html
        assert "Wilson CI" in html
        # heatmap columns are the provenance cause taxonomy
        assert "value-agrees" in html
        assert "output-corrupted" in html

    def test_bench_snapshot_flattened(self, html):
        assert "BENCH_demo" in html
        assert "throughput" in html
        assert "41.5000" in html

    def test_empty_store_still_renders(self, tmp_path):
        with ResultsStore(str(tmp_path / "empty.db")) as store:
            html = render_html_report(store)
        assert "No run cells warehoused" in html
        assert "No provenance records warehoused" in html
        assert html == html  # and deterministically so
