"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "P-BICG" in out
        assert "C-BlackScholes" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestProfileCommand:
    def test_profile_output(self, capsys):
        assert main(["profile", "A-Laplacian", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "hot objects (declared)" in out
        assert "Filter" in out


class TestCampaignCommand:
    def test_campaign_runs(self, capsys):
        code = main([
            "campaign", "A-Laplacian", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
            "--runs", "10", "--selection", "hot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SDC rate" in out

    def test_numeric_protect_level(self, capsys):
        code = main([
            "campaign", "A-Laplacian", "--scale", "small",
            "--scheme", "correction", "--protect", "2",
            "--runs", "5",
        ])
        assert code == 0


class TestPerfCommand:
    def test_perf_prints_normalized_row(self, capsys):
        code = main([
            "perf", "A-Meanfilter", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "norm-time" in out
        assert "baseline" in out


class TestTradeoffCommand:
    def test_tradeoff_prints_sweet_spot(self, capsys):
        code = main([
            "tradeoff", "A-Meanfilter", "--scale", "small",
            "--runs", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweet spot" in out


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        code = main([
            "export", "A-Meanfilter", "--scale", "small",
            "--out", str(tmp_path), "--runs", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9_a_meanfilter.csv" in out
        assert (tmp_path / "table1_config.csv").exists()
        assert (tmp_path / "fig7_a_meanfilter.csv").exists()
