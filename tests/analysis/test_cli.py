"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs.perfetto import validate_trace_file


class TestParser:
    def test_apps_command(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "P-BICG" in out
        assert "C-BlackScholes" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestProfileCommand:
    def test_profile_output(self, capsys):
        assert main(["profile", "A-Laplacian", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "hot objects (declared)" in out
        assert "Filter" in out


class TestCampaignCommand:
    def test_campaign_runs(self, capsys):
        code = main([
            "campaign", "A-Laplacian", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
            "--runs", "10", "--selection", "hot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "SDC rate" in out

    def test_numeric_protect_level(self, capsys):
        code = main([
            "campaign", "A-Laplacian", "--scale", "small",
            "--scheme", "correction", "--protect", "2",
            "--runs", "5",
        ])
        assert code == 0


class TestPerfCommand:
    def test_perf_prints_normalized_row(self, capsys):
        code = main([
            "perf", "A-Meanfilter", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "norm-time" in out
        assert "baseline" in out


class TestTradeoffCommand:
    def test_tradeoff_prints_sweet_spot(self, capsys):
        code = main([
            "tradeoff", "A-Meanfilter", "--scale", "small",
            "--runs", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "sweet spot" in out


class TestTraceCommand:
    def test_trace_writes_valid_perfetto_json(self, tmp_path, capsys):
        out = tmp_path / "run.trace.json"
        objects = tmp_path / "run.objects.json"
        code = main([
            "trace", "P-ATAX", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
            "--out", str(out), "--objects-out", str(objects),
        ])
        assert code == 0
        assert validate_trace_file(str(out)) > 0
        doc = json.loads(out.read_text(encoding="utf-8"))
        spans = [e for e in doc["traceEvents"]
                 if e["ph"] == "X" and "obj" in e.get("args", {})]
        assert spans, "no data-object-labeled spans in the export"
        summary = json.loads(objects.read_text(encoding="utf-8"))
        assert summary["app"] == "P-ATAX"
        assert summary["objects"]
        captured = capsys.readouterr().out
        assert "trace event(s)" in captured
        assert "object" in captured

    def test_app_flag_alias(self, tmp_path):
        out = tmp_path / "alias.trace.json"
        code = main([
            "trace", "--app", "P-ATAX", "--scale", "small",
            "--out", str(out),
        ])
        assert code == 0
        assert validate_trace_file(str(out)) > 0

    def test_missing_app_rejected(self, capsys):
        assert main(["trace"]) == 2
        assert "application is required" in capsys.readouterr().err

    def test_quiet_suppresses_progress(self, tmp_path, capsys):
        out = tmp_path / "q.trace.json"
        code = main([
            "-q", "trace", "P-ATAX", "--scale", "small",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "trace event(s)" not in captured  # progress silenced
        assert "cycles" in captured  # results still print


class TestGoldenTraceCapture:
    def test_perf_trace_capture(self, tmp_path, capsys):
        out = tmp_path / "golden.trace.json"
        code = main([
            "perf", "A-Meanfilter", "--scale", "small",
            "--scheme", "detection", "--protect", "hot",
            "--trace", str(out),
        ])
        assert code == 0
        assert validate_trace_file(str(out)) > 0

    def test_campaign_trace_identical_across_jobs(self, tmp_path):
        """The golden-run trace is captured parent-side, so the export
        must be byte-identical for any --jobs setting."""
        outs = []
        for jobs in ("1", "2"):
            out = tmp_path / f"jobs{jobs}.trace.json"
            code = main([
                "-q", "campaign", "A-Laplacian", "--scale", "small",
                "--scheme", "detection", "--protect", "hot",
                "--runs", "4", "--jobs", jobs, "--trace", str(out),
            ])
            assert code == 0
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]


class TestSweepCommand:
    ARGS = [
        "-q", "sweep", "A-Laplacian", "--scale", "small",
        "--schemes", "baseline", "--protects", "hot",
        "--runs", "4", "--chunk-runs", "2", "--seed", "9",
    ]

    def test_sweep_prints_table_and_writes_outputs(self, tmp_path,
                                                   capsys):
        out = tmp_path / "sweep.json"
        telemetry = tmp_path / "t.jsonl"
        events = tmp_path / "events.jsonl"
        code = main(self.ARGS + [
            "--out", str(out), "--telemetry", str(telemetry),
            "--session-log", str(events),
        ])
        assert code == 0
        assert "sdc-rate" in capsys.readouterr().out
        doc = json.loads(out.read_text(encoding="utf-8"))
        assert doc["spec"]["runs"] == 4
        assert len(doc["cells"]) == 1
        assert telemetry.read_text().count("\n") == 4
        from repro.obs.session import read_session_events

        kinds = [e["kind"] for e in read_session_events(str(events))]
        assert kinds[0] == "plan"
        assert kinds[-1] == "finish"

    def test_interrupted_exits_75_then_resume_matches(self, tmp_path):
        """The CI smoke contract: budget-stop exits 75 with durable
        chunks; --resume completes to the byte-identical result."""
        store = tmp_path / "ckpt"
        reference = tmp_path / "ref.json"
        assert main(self.ARGS + ["--out", str(reference)]) == 0

        checkpointed = [
            *self.ARGS, "--checkpoint-dir", str(store),
        ]
        assert main(checkpointed + ["--stop-after-chunks", "1"]) == 75
        resumed = tmp_path / "resumed.json"
        assert main(checkpointed + [
            "--resume", "--jobs", "2", "--out", str(resumed),
        ]) == 0
        assert resumed.read_bytes() == reference.read_bytes()

    def test_unknown_app_exits_3(self, capsys):
        assert main(["sweep", "NOT-AN-APP", "--runs", "4"]) == 3
        assert "unknown application" in capsys.readouterr().err

    def test_unknown_scheme_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "A-Laplacian", "--schemes", "tmr"])

    def test_bad_protect_exits_4(self, capsys):
        assert main(["sweep", "A-Laplacian", "--protects", "warm",
                     "--runs", "4"]) == 4
        assert "protection level" in capsys.readouterr().err

    def test_resume_without_dir_exits_4(self, capsys):
        assert main(["sweep", "A-Laplacian", "--resume",
                     "--runs", "4"]) == 4
        assert "--checkpoint-dir" in capsys.readouterr().err

    def test_mismatched_checkpoint_dir_exits_5(self, tmp_path, capsys):
        store = tmp_path / "ckpt"
        assert main(self.ARGS + ["--checkpoint-dir", str(store)]) == 0
        assert main(self.ARGS + [
            "--checkpoint-dir", str(store), "--runs", "6",
        ]) == 5
        assert "different sweep" in capsys.readouterr().err


class TestErrorExitCodes:
    def test_campaign_unknown_app_exits_3(self, capsys):
        assert main(["campaign", "NOT-AN-APP"]) == 3
        assert "unknown application" in capsys.readouterr().err

    def test_campaign_bad_protect_exits_4(self):
        assert main(["campaign", "A-Laplacian", "--scale", "small",
                     "--protect", "warm"]) == 4


class TestStatsErrors:
    def test_missing_file(self, capsys):
        assert main(["stats", "/no/such/telemetry.jsonl"]) == 2
        assert "not found" in capsys.readouterr().err

    def test_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not json\n", encoding="utf-8")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_directory_argument(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestExportCommand:
    def test_export_writes_csvs(self, tmp_path, capsys):
        code = main([
            "export", "A-Meanfilter", "--scale", "small",
            "--out", str(tmp_path), "--runs", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fig9_a_meanfilter.csv" in out
        assert (tmp_path / "table1_config.csv").exists()
        assert (tmp_path / "fig7_a_meanfilter.csv").exists()
