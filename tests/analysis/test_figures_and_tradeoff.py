"""Tests for the figure data generators and the tradeoff sweep."""

import numpy as np
import pytest

from repro.analysis.figures import (
    FAULT_GRID,
    average_sdc_drop,
    fig2_rows,
    fig3_series,
    fig4_series,
    fig6_grid,
    fig7_sweep,
    fig9_grid,
    table1_rows,
    table2_rows,
    table3_rows,
)
from repro.analysis.tradeoff import knee_point, tradeoff_curve


class TestFig2:
    def test_rows_chronological(self):
        rows = fig2_rows()
        years = [r[2] for r in rows]
        assert years == sorted(years)

    def test_ampere_l2_jump(self):
        rows = {r[1]: r[3] for r in fig2_rows()}
        a100 = rows["A100 (Ampere)"]
        volta = rows["Tesla V100 (Volta)"]
        assert a100 > 6 * volta  # the paper's "10x larger" point


class TestFig3And4:
    def test_fig3_series_fields(self, laplacian_manager):
        series = fig3_series(laplacian_manager)
        assert series.app_name == "A-Laplacian"
        assert 0 < series.tail_share(0.05) <= 1.0
        assert series.normalized_counts.max() == 1.0

    def test_fig4_series_fields(self, laplacian_manager):
        series = fig4_series(laplacian_manager)
        assert len(series.warp_share_percent) == \
            laplacian_manager.profile.n_blocks
        assert series.hot_mean_share > series.rest_mean_share


class TestFig6:
    def test_grid_covers_both_spaces(self, laplacian_manager):
        cells = fig6_grid(laplacian_manager, runs=5)
        assert len(cells) == 2 * len(FAULT_GRID)
        assert {c.space for c in cells} == {"hot", "rest"}
        for cell in cells:
            assert cell.sdc + cell.crash + cell.masked <= cell.runs


class TestFig7:
    def test_sweep_rows(self, laplacian_manager):
        baseline, rows = fig7_sweep(laplacian_manager)
        n_objects = len(laplacian_manager.app.object_importance)
        assert len(rows) == 2 * n_objects
        assert baseline.replica_transactions == 0
        # Normalized missed accesses grow monotonically with coverage
        # within a scheme.
        for scheme in ("detection", "correction"):
            series = [r.norm_missed_accesses for r in rows
                      if r.scheme == scheme]
            assert all(b >= a - 1e-9 for a, b in zip(series,
                                                     series[1:]))


class TestFig9:
    def test_grid_and_average_drop(self, laplacian_manager):
        cells = fig9_grid(
            laplacian_manager, scheme="correction", runs=15,
            levels=[0, 3], grid=((1, 3), (1, 4)), selection="hot",
        )
        assert len(cells) == 4
        drop = average_sdc_drop(cells, hot_level=3)
        assert 0.0 <= drop <= 100.0

    def test_level_zero_is_baseline(self, laplacian_manager):
        cells = fig9_grid(
            laplacian_manager, scheme="correction", runs=5,
            levels=[0], grid=((1, 2),),
        )
        assert cells[0].scheme == "baseline"
        assert cells[0].detected == cells[0].corrected == 0


class TestTables:
    def test_table1_matches_config(self):
        rows = dict(table1_rows())
        assert "15 SMs" in rows["Resources / Core"]

    def test_table2_all_apps(self):
        rows = table2_rows()
        assert len(rows) == 8
        by_app = {r[0]: r for r in rows}
        assert by_app["C-NN"][1] == "Vector Classifications"
        assert "Mis-classifications" in by_app["C-NN"][2].replace(
            "mis-classifications", "Mis-classifications")
        assert "Normalized Root Mean Square" in by_app["A-Sobel"][2]

    def test_table3_rows(self, laplacian_manager, mvt_manager):
        rows = table3_rows([laplacian_manager, mvt_manager])
        assert [r.app_name for r in rows] == ["A-Laplacian", "P-MVT"]


class TestTradeoff:
    def test_curve_structure(self, laplacian_manager):
        points = tradeoff_curve(laplacian_manager, runs=10)
        n_objects = len(laplacian_manager.app.object_importance)
        assert len(points) == n_objects + 1
        assert points[0].n_protected == 0
        assert points[0].slowdown == 1.0
        assert points[-1].protected_names == tuple(
            laplacian_manager.app.object_importance)

    def test_knee_prefers_cheap_protection(self, laplacian_manager):
        points = tradeoff_curve(laplacian_manager, runs=10,
                                selection="hot")
        knee = knee_point(points)
        # Protecting the 3 hot objects already reaches zero SDCs; the
        # knee must not pay for protecting the whole image too.
        assert knee.n_protected <= 3

    def test_empty_curve_rejected(self):
        with pytest.raises(ValueError):
            knee_point([])
