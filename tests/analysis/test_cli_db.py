"""CLI tests for the warehouse surface: db, report, --version, stdin.

Exercises the exit-code taxonomy end to end: ``0`` on success, ``7``
for any :class:`~repro.errors.StoreError` (corrupt ingest, unknown
digest), and the long-standing ``2`` for corrupt ``stats``/``vuln``
input — now also when the JSONL arrives on stdin as ``-``.
"""

from __future__ import annotations

import io

import pytest

import repro
from repro.cli import main


@pytest.fixture(scope="module")
def campaign_files(tmp_path_factory):
    """Telemetry + provenance JSONL from one small CLI campaign."""
    root = tmp_path_factory.mktemp("cli-db")
    telemetry = root / "telemetry.jsonl"
    provenance = root / "provenance.jsonl"
    code = main([
        "campaign", "A-Laplacian", "--scale", "small",
        "--scheme", "correction", "--protect", "hot",
        "--runs", "12", "--telemetry", str(telemetry),
        "--provenance", str(provenance),
    ])
    assert code == 0
    return {"root": root, "telemetry": telemetry,
            "provenance": provenance}


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as exc_info:
            main(["--version"])
        assert exc_info.value.code == 0
        out = capsys.readouterr().out
        assert repro.__version__ in out
        assert "repro" in out


class TestDbCommands:
    def test_ingest_twice_dedupes(self, campaign_files, tmp_path,
                                  capsys):
        db = tmp_path / "w.db"
        args = ["db", "ingest", str(db),
                str(campaign_files["telemetry"]),
                str(campaign_files["provenance"])]
        assert main(args) == 0
        assert "2 new cell(s), 0 deduplicated" in \
            capsys.readouterr().out
        assert main(args) == 0
        assert "0 new cell(s), 2 deduplicated" in \
            capsys.readouterr().out

    def test_cells_query_export_flow(self, campaign_files, tmp_path,
                                     capsys):
        import json

        db = tmp_path / "w.db"
        assert main(["db", "ingest", str(db),
                     str(campaign_files["telemetry"])]) == 0
        capsys.readouterr()
        assert main(["db", "cells", str(db), "--json"]) == 0
        (cell,) = json.loads(capsys.readouterr().out)
        assert cell["kind"] == "runs"
        assert main(["db", "query", str(db), "--json"]) == 0
        (summary,) = json.loads(capsys.readouterr().out)
        assert summary["runs"] == 12
        assert "sdc_interval" in summary
        out = tmp_path / "export.jsonl"
        assert main(["db", "export", str(db), cell["digest"],
                     "--out", str(out)]) == 0
        assert out.read_bytes() == \
            campaign_files["telemetry"].read_bytes()

    def test_query_text_table(self, campaign_files, tmp_path, capsys):
        db = tmp_path / "w.db"
        assert main(["db", "ingest", str(db),
                     str(campaign_files["telemetry"])]) == 0
        capsys.readouterr()
        assert main(["db", "query", str(db)]) == 0
        out = capsys.readouterr().out
        assert "A-Laplacian" in out
        assert "CI margin" in out

    def test_corrupt_ingest_exits_7(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json at all\n")
        code = main(["db", "ingest", str(tmp_path / "w.db"),
                     str(bad), "--kind", "runs"])
        assert code == 7

    def test_unknown_digest_exits_7(self, tmp_path):
        db = tmp_path / "w.db"
        assert main(["db", "cells", str(db)]) == 0
        assert main(["db", "export", str(db), "feedface"]) == 7


class TestReportCommand:
    def test_report_writes_html(self, campaign_files, tmp_path,
                                capsys):
        db = tmp_path / "w.db"
        assert main(["db", "ingest", str(db),
                     str(campaign_files["telemetry"]),
                     str(campaign_files["provenance"])]) == 0
        out = tmp_path / "report.html"
        assert main(["report", str(db), "--out", str(out)]) == 0
        html = out.read_text(encoding="utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "A-Laplacian" in html
        assert repro.__version__ in html


class TestStdinInput:
    def test_stats_reads_stdin(self, campaign_files, monkeypatch,
                               capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(campaign_files["telemetry"].read_text()))
        assert main(["stats", "-"]) == 0
        out = capsys.readouterr().out
        assert "<stdin>" in out
        assert "12 run record(s)" in out

    def test_vuln_reads_stdin(self, campaign_files, monkeypatch,
                              capsys):
        monkeypatch.setattr(
            "sys.stdin",
            io.StringIO(campaign_files["provenance"].read_text()))
        assert main(["vuln", "-"]) == 0
        out = capsys.readouterr().out
        assert "provenance record(s)" in out

    def test_corrupt_stdin_exits_2(self, monkeypatch, capsys):
        monkeypatch.setattr("sys.stdin", io.StringIO("garbage\n"))
        assert main(["stats", "-"]) == 2
        monkeypatch.setattr("sys.stdin", io.StringIO("garbage\n"))
        assert main(["vuln", "-"]) == 2

    def test_file_paths_still_work(self, campaign_files, capsys):
        assert main(["stats",
                     str(campaign_files["telemetry"])]) == 0
        assert "12 run record(s)" in capsys.readouterr().out


class TestProgressFlag:
    def test_campaign_progress_runs_clean(self, capsys):
        code = main([
            "campaign", "A-Laplacian", "--scale", "small",
            "--runs", "8", "--progress",
        ])
        assert code == 0
        assert "SDC rate" in capsys.readouterr().out

    def test_quiet_silences_progress(self, capsys):
        code = main([
            "-q", "campaign", "A-Laplacian", "--scale", "small",
            "--runs", "8", "--progress",
        ])
        assert code == 0
