"""Tests for the Table II output-error metrics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.base import MetricResult
from repro.metrics.classification import (
    MisclassificationMetric,
    batch_threshold,
)
from repro.metrics.image import NrmseMetric
from repro.metrics.vector import VectorDeviationMetric


class TestVectorDeviation:
    def test_identical_vectors_zero_error(self):
        m = VectorDeviationMetric()
        golden = np.arange(10.0)
        assert m.error(golden, golden) == 0.0

    def test_counts_percentage(self):
        m = VectorDeviationMetric()
        golden = np.ones(100)
        observed = golden.copy()
        observed[:7] = 2.0
        assert m.error(golden, observed) == pytest.approx(7.0)

    def test_tiny_relative_noise_tolerated(self):
        m = VectorDeviationMetric(rel_tol=1e-6)
        golden = np.full(10, 1000.0)
        observed = golden * (1 + 1e-8)
        assert m.error(golden, observed) == 0.0

    def test_nan_counts_as_deviation(self):
        m = VectorDeviationMetric()
        golden = np.ones(4)
        observed = np.array([1.0, np.nan, 1.0, np.inf])
        assert m.error(golden, observed) == pytest.approx(50.0)

    def test_sdc_verdict_threshold(self):
        m = VectorDeviationMetric(threshold=1.0)
        golden = np.ones(1000)
        one_off = golden.copy()
        one_off[0] = 5.0
        assert not m.compare(golden, one_off).is_sdc  # 0.1% < 1%
        many_off = golden.copy()
        many_off[:20] = 5.0
        assert m.compare(golden, many_off).is_sdc  # 2% > 1%

    def test_shape_mismatch_rejected(self):
        m = VectorDeviationMetric()
        with pytest.raises(ValueError):
            m.compare(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VectorDeviationMetric().error(np.array([]), np.array([]))


class TestNrmse:
    def test_identical_images(self):
        m = NrmseMetric()
        img = np.random.default_rng(0).uniform(0, 255, (16, 16))
        assert m.error(img, img) == 0.0

    def test_normalized_by_range(self):
        m = NrmseMetric()
        golden = np.zeros((4, 4))
        golden[0, 0] = 100.0  # range = 100
        observed = golden + 10.0
        assert m.error(golden, observed) == pytest.approx(0.1)

    def test_single_pixel_damage_small(self):
        m = NrmseMetric(threshold=0.05)
        golden = np.full((96, 96), 128.0)
        golden[0, 0] = 0.0
        observed = golden.copy()
        observed[50, 50] = 255.0
        assert not m.compare(golden, observed).is_sdc

    def test_global_damage_is_sdc(self):
        m = NrmseMetric(threshold=0.05)
        golden = np.full((32, 32), 100.0)
        golden[0, 0] = 0.0
        observed = golden * 1.5
        assert m.compare(golden, observed).is_sdc

    def test_nonfinite_is_infinite_error(self):
        m = NrmseMetric()
        golden = np.ones((2, 2))
        observed = golden.copy()
        observed[0, 0] = np.nan
        result = m.compare(golden, observed)
        assert result.is_sdc
        assert result.error == np.inf

    def test_flat_golden_image_fallback_range(self):
        m = NrmseMetric()
        golden = np.full((4, 4), 7.0)
        observed = golden + 1.0
        assert np.isfinite(m.error(golden, observed))


class TestMisclassification:
    def test_percentage(self):
        m = MisclassificationMetric(threshold=0.0)
        golden = np.array([1, 2, 3, 4])
        observed = np.array([1, 2, 9, 9])
        assert m.error(golden, observed) == pytest.approx(50.0)

    def test_batch_threshold_default_tolerates_one_flip(self):
        m = MisclassificationMetric(threshold=batch_threshold(10))
        golden = np.arange(10)
        one_flip = golden.copy()
        one_flip[0] = 9
        assert not m.compare(golden, one_flip).is_sdc
        two_flips = golden.copy()
        two_flips[:2] = (9, 8)
        assert m.compare(golden, two_flips).is_sdc

    def test_batch_threshold_strict_variant(self):
        m = MisclassificationMetric(
            threshold=batch_threshold(10, tolerated_images=0.5))
        golden = np.arange(10)
        one_flip = golden.copy()
        one_flip[0] = 9
        assert m.compare(golden, one_flip).is_sdc

    def test_bad_batch_rejected(self):
        with pytest.raises(ValueError):
            batch_threshold(0)


class TestMetricResult:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            VectorDeviationMetric(threshold=-1.0)

    def test_result_fields(self):
        m = VectorDeviationMetric(threshold=1.0)
        result = m.compare(np.ones(4), np.ones(4))
        assert isinstance(result, MetricResult)
        assert result.threshold == 1.0
        assert not result.is_sdc


@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=0, max_value=64))
def test_vector_deviation_bounded(n, k):
    k = min(k, n)
    golden = np.zeros(n)
    observed = golden.copy()
    observed[:k] = 1.0
    err = VectorDeviationMetric().error(golden, observed)
    assert 0.0 <= err <= 100.0
    assert err == pytest.approx(100.0 * k / n)
