"""Tests for the MSHR file."""

import pytest

from repro.arch.mshr import MshrFile


class TestAllocateMerge:
    def test_first_miss_allocates(self):
        mshr = MshrFile(4, 2)
        assert mshr.probe(0) == "allocate"
        assert mshr.add(0) is True  # new downstream request
        assert mshr.outstanding == 1

    def test_repeat_miss_merges(self):
        mshr = MshrFile(4, 2)
        mshr.add(0)
        assert mshr.probe(0) == "merge"
        assert mshr.add(0) is False  # merged, no new request
        assert mshr.stats.merges == 1

    def test_merge_capacity_exhausted(self):
        mshr = MshrFile(4, 2)
        mshr.add(0)
        mshr.add(0)
        assert mshr.probe(0) == "stall"

    def test_file_full(self):
        mshr = MshrFile(2, 8)
        mshr.add(0)
        mshr.add(128)
        assert mshr.probe(256) == "stall"

    def test_add_while_full_raises(self):
        mshr = MshrFile(1, 1)
        mshr.add(0)
        with pytest.raises(RuntimeError):
            mshr.add(128)


class TestRelease:
    def test_release_returns_merged_count(self):
        mshr = MshrFile(4, 4)
        mshr.add(0)
        mshr.add(0)
        mshr.add(0)
        assert mshr.release(0) == 3
        assert mshr.is_empty

    def test_release_frees_entry(self):
        mshr = MshrFile(1, 1)
        mshr.add(0)
        mshr.release(0)
        assert mshr.probe(128) == "allocate"

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            MshrFile(1, 1).release(0)


class TestStats:
    def test_stall_accounting(self):
        mshr = MshrFile(1, 1)
        mshr.add(0)
        mshr.record_stall(0)     # merge-capacity stall
        mshr.record_stall(128)   # file-full stall
        assert mshr.stats.merge_stalls == 1
        assert mshr.stats.full_stalls == 1

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            MshrFile(0, 1)
        with pytest.raises(ValueError):
            MshrFile(1, 0)
