"""Tests for the set-associative cache model."""

import pytest

from repro.arch.cache import Cache, CacheConfig
from repro.errors import ConfigError

LINE = 128


def small_cache(assoc=2, sets=4):
    return Cache(CacheConfig(assoc * sets * LINE, assoc, LINE))


class TestConfig:
    def test_paper_l1_geometry(self):
        cfg = CacheConfig(16 * 1024, 4, 128)
        assert cfg.n_sets == 32
        assert cfg.n_lines == 128

    def test_paper_l2_slice_geometry(self):
        cfg = CacheConfig(256 * 1024, 16, 128)
        assert cfg.n_sets == 128

    def test_bad_geometry_rejected(self):
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, 128)
        with pytest.raises(ConfigError):
            CacheConfig(0, 1, 128)


class TestHitMiss:
    def test_cold_miss_then_hit(self):
        cache = small_cache()
        assert cache.access(0) is False
        assert cache.access(0) is True

    def test_same_line_different_offsets(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(LINE - 1) is True

    def test_distinct_lines_miss(self):
        cache = small_cache()
        cache.access(0)
        assert cache.access(LINE) is False

    def test_stats(self):
        cache = small_cache()
        cache.access(0)
        cache.access(0)
        cache.access(LINE)
        assert cache.stats.accesses == 3
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(2 / 3)


class TestLru:
    def test_lru_eviction_order(self):
        cache = small_cache(assoc=2, sets=1)
        cache.access(0 * LINE)
        cache.access(1 * LINE)
        cache.access(0 * LINE)  # 0 becomes MRU
        cache.access(2 * LINE)  # evicts 1 (LRU)
        assert cache.lookup(0) is True
        assert cache.lookup(1 * LINE) is False
        assert cache.stats.evictions == 1

    def test_working_set_larger_than_set_thrashes(self):
        cache = small_cache(assoc=2, sets=1)
        for _ in range(3):
            for line in range(3):
                cache.access(line * LINE)
        # Cyclic access to 3 lines in a 2-way set: all misses after
        # the cold ones (classic LRU pathological case).
        assert cache.stats.hits == 0


class TestBypass:
    def test_no_allocate_does_not_install(self):
        cache = small_cache()
        assert cache.access(0, allocate=False) is False
        assert cache.lookup(0) is False
        assert cache.stats.bypassed == 1


class TestFillInvalidate:
    def test_fill_installs_without_access_stats(self):
        cache = small_cache()
        cache.fill(0)
        assert cache.stats.accesses == 0
        assert cache.access(0) is True

    def test_fill_existing_is_noop(self):
        cache = small_cache()
        cache.fill(0)
        cache.fill(0)
        assert cache.resident_lines == 1

    def test_invalidate(self):
        cache = small_cache()
        cache.fill(0)
        assert cache.invalidate(0) is True
        assert cache.lookup(0) is False
        assert cache.invalidate(0) is False

    def test_flush(self):
        cache = small_cache()
        for i in range(5):
            cache.fill(i * LINE)
        cache.flush()
        assert cache.resident_lines == 0


def test_set_indexing_spreads_lines():
    cache = small_cache(assoc=1, sets=4)
    for i in range(4):
        cache.access(i * LINE)
    # 4 consecutive lines map to 4 different sets: no evictions.
    assert cache.stats.evictions == 0
    assert cache.resident_lines == 4


def test_reset_stats_keeps_contents():
    cache = small_cache()
    cache.access(0)
    cache.reset_stats()
    assert cache.stats.accesses == 0
    assert cache.lookup(0) is True
