"""Tests for the interconnect bandwidth/latency model."""

import pytest

from repro.arch.interconnect import Crossbar, Link


class TestLink:
    def test_uncontended_latency(self):
        link = Link(bytes_per_cycle=32, base_latency=8, name="l")
        # 128B at 32B/cycle = 4 cycles occupancy + 8 latency.
        assert link.transfer(100, 128) == 112

    def test_back_to_back_queueing(self):
        link = Link(32, 8, "l")
        first = link.transfer(0, 128)
        second = link.transfer(0, 128)
        assert second == first + 4  # waits for the pipe, not latency

    def test_idle_gap_no_queueing(self):
        link = Link(32, 8, "l")
        link.transfer(0, 128)
        assert link.transfer(1000, 128) == 1012

    def test_small_packet_rounds_up(self):
        link = Link(32, 0, "l")
        assert link.transfer(0, 8) == 1  # ceil(8/32) = 1 cycle

    def test_stats(self):
        link = Link(32, 8, "l")
        link.transfer(0, 128)
        link.transfer(0, 128)
        assert link.stats.transfers == 2
        assert link.stats.bytes_moved == 256
        assert link.stats.queue_cycles == 4

    def test_reset(self):
        link = Link(32, 8, "l")
        link.transfer(0, 128)
        link.reset()
        assert link.busy_until == 0
        assert link.stats.transfers == 0

    def test_bad_args(self):
        with pytest.raises(ValueError):
            Link(0, 1, "l")
        with pytest.raises(ValueError):
            Link(32, -1, "l")
        with pytest.raises(ValueError):
            Link(32, 0, "l").transfer(0, 0)


class TestCrossbar:
    def test_partitions_are_independent(self):
        xbar = Crossbar(2, 32, 8, 128)
        t0 = xbar.send_response(0, 0)
        t1 = xbar.send_response(0, 1)
        assert t0 == t1  # no cross-partition contention

    def test_same_partition_contends(self):
        xbar = Crossbar(2, 32, 8, 128)
        t0 = xbar.send_response(0, 0)
        t1 = xbar.send_response(0, 0)
        assert t1 > t0

    def test_requests_cheaper_than_responses(self):
        xbar = Crossbar(1, 32, 8, 128)
        req = xbar.send_request(0, 0)
        xbar.reset()
        rsp = xbar.send_response(0, 0)
        assert req < rsp

    def test_total_bytes(self):
        xbar = Crossbar(1, 32, 8, 128)
        xbar.send_request(0, 0)
        xbar.send_response(0, 0)
        assert xbar.total_bytes_moved == 8 + 128
