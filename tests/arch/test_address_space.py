"""Tests for device memory, allocation, and stuck-at overlays."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arch.address_space import (
    BLOCK_BYTES,
    DeviceMemory,
    StuckAtOverlay,
)
from repro.errors import AddressError, AllocationError


class TestAllocation:
    def test_block_alignment(self, memory):
        a = memory.alloc("a", (3,), np.float32)
        b = memory.alloc("b", (100,), np.float32)
        assert a.base_addr % BLOCK_BYTES == 0
        assert b.base_addr % BLOCK_BYTES == 0
        # 3 floats round up to one full block.
        assert b.base_addr == a.base_addr + BLOCK_BYTES

    def test_nbytes_and_blocks(self, memory):
        obj = memory.alloc("m", (10, 10), np.float32)
        assert obj.nbytes == 400
        assert obj.n_blocks == 4  # ceil(400/128)

    def test_duplicate_name_rejected(self, memory):
        memory.alloc("x", (4,))
        with pytest.raises(AllocationError):
            memory.alloc("x", (4,))

    def test_zero_size_rejected(self, memory):
        with pytest.raises(AllocationError):
            memory.alloc("z", (0,))

    def test_out_of_memory(self):
        mem = DeviceMemory(BLOCK_BYTES * 2)
        mem.alloc("a", (32,), np.float32)  # one block
        mem.alloc("b", (32,), np.float32)
        with pytest.raises(AllocationError):
            mem.alloc("c", (1,), np.float32)

    def test_object_lookup(self, memory):
        obj = memory.alloc("named", (8,))
        assert memory.object("named") is obj
        with pytest.raises(AddressError):
            memory.object("missing")

    def test_object_at_covers_padding(self, memory):
        obj = memory.alloc("small", (3,), np.float32)  # 12B, 1 block
        assert memory.object_at(obj.base_addr + 100) is obj
        with pytest.raises(AddressError):
            memory.object_at(obj.base_addr + BLOCK_BYTES)

    def test_reserve_blocks_shifts_allocations(self, memory):
        a = memory.alloc("a", (1,))
        memory.reserve_blocks(3)
        b = memory.alloc("b", (1,))
        assert b.base_addr == a.base_addr + 4 * BLOCK_BYTES

    def test_block_addr_range_checked(self, memory):
        obj = memory.alloc("r", (64,), np.float32)  # 2 blocks
        assert obj.block_addr(1) == obj.base_addr + BLOCK_BYTES
        with pytest.raises(AddressError):
            obj.block_addr(2)

    def test_element_block(self, memory):
        obj = memory.alloc("e", (64,), np.float32)
        assert obj.element_block(0) == 0
        assert obj.element_block(32) == 1
        with pytest.raises(AddressError):
            obj.element_block(64)


class TestReadWrite:
    def test_roundtrip(self, memory):
        obj = memory.alloc("v", (100,), np.float32)
        data = np.arange(100, dtype=np.float32)
        memory.write_object(obj, data)
        np.testing.assert_array_equal(memory.read_object(obj), data)

    def test_shape_preserved(self, memory):
        obj = memory.alloc("m", (4, 5), np.float64)
        memory.write_object(obj, np.ones((4, 5)))
        assert memory.read_object(obj).shape == (4, 5)

    def test_int_dtype(self, memory):
        obj = memory.alloc("i", (10,), np.int32)
        memory.write_object(obj, np.arange(10, dtype=np.int32))
        assert memory.read_object(obj).dtype == np.int32

    def test_read_block_raw(self, memory):
        obj = memory.alloc("b", (32,), np.float32)
        memory.write_object(obj, np.zeros(32, dtype=np.float32))
        block = memory.read_block(obj.base_addr)
        assert block.shape == (BLOCK_BYTES,)
        assert (block == 0).all()


class TestStuckAtFaults:
    def test_stuck_at_one_visible_on_read(self, memory):
        obj = memory.alloc("f", (1,), np.int32)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 3, 1)
        assert memory.read_object(obj)[0] == 8

    def test_stuck_at_zero_masks_bit(self, memory):
        obj = memory.alloc("f", (1,), np.int32)
        memory.write_object(obj, np.full(1, 0xFF, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 0, 0)
        assert memory.read_object(obj)[0] == 0xFE

    def test_permanence_across_writes(self, memory):
        obj = memory.alloc("f", (1,), np.int32, read_only=False)
        memory.inject_stuck_at(obj.base_addr, 2, 1)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        assert memory.read_object(obj)[0] == 4
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        assert memory.read_object(obj)[0] == 4

    def test_pristine_read_ignores_faults(self, memory):
        obj = memory.alloc("f", (1,), np.int32)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 5, 1)
        assert memory.read_pristine(obj)[0] == 0

    def test_fault_count(self, memory):
        obj = memory.alloc("f", (4,), np.int32)
        memory.inject_stuck_at(obj.base_addr, 0, 1)
        memory.inject_stuck_at(obj.base_addr, 1, 0)
        memory.inject_stuck_at(obj.base_addr + 5, 7, 1)
        assert memory.fault_count == 3

    def test_clear_faults(self, memory):
        obj = memory.alloc("f", (1,), np.int32)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 0, 1)
        memory.clear_faults()
        assert memory.read_object(obj)[0] == 0

    def test_later_fault_wins_conflicting_bit(self, memory):
        obj = memory.alloc("f", (1,), np.int32)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 0, 1)
        memory.inject_stuck_at(obj.base_addr, 0, 0)
        assert memory.read_object(obj)[0] == 0

    def test_bad_fault_args(self, memory):
        with pytest.raises(AddressError):
            memory.inject_stuck_at(memory.capacity, 0, 1)
        with pytest.raises(AddressError):
            memory.inject_stuck_at(0, 8, 1)
        with pytest.raises(AddressError):
            memory.inject_stuck_at(0, 0, 2)


class TestClone:
    def test_clone_preserves_contents(self, memory):
        obj = memory.alloc("v", (16,), np.float32)
        memory.write_object(obj, np.arange(16, dtype=np.float32))
        twin = memory.clone()
        np.testing.assert_array_equal(
            twin.read_object(twin.object("v")),
            memory.read_object(obj),
        )

    def test_clone_drops_faults(self, memory):
        obj = memory.alloc("v", (1,), np.int32)
        memory.write_object(obj, np.zeros(1, dtype=np.int32))
        memory.inject_stuck_at(obj.base_addr, 0, 1)
        twin = memory.clone()
        assert twin.read_object(twin.object("v"))[0] == 0
        assert memory.read_object(obj)[0] == 1

    def test_clone_is_independent(self, memory):
        obj = memory.alloc("v", (1,), np.float32, read_only=False)
        memory.write_object(obj, np.zeros(1, dtype=np.float32))
        twin = memory.clone()
        twin.write_object(twin.object("v"),
                          np.ones(1, dtype=np.float32))
        assert memory.read_object(obj)[0] == 0.0

    def test_clone_allows_further_allocation(self, memory):
        memory.alloc("v", (1,))
        twin = memory.clone()
        twin.alloc("extra", (1,))
        with pytest.raises(AddressError):
            memory.object("extra")


class TestCowClone:
    def _seeded(self, memory):
        a = memory.alloc("a", (64,), np.float32)
        b = memory.alloc("b", (32,), np.float32, read_only=False)
        memory.write_object(a, np.arange(64, dtype=np.float32))
        memory.write_object(b, np.full(32, 7.0, dtype=np.float32))
        return a, b

    def test_reads_match_full_clone(self, memory):
        a, b = self._seeded(memory)
        cow, full = memory.cow_clone(), memory.clone()
        for name in ("a", "b"):
            np.testing.assert_array_equal(
                cow.read_object(cow.object(name)),
                full.read_object(full.object(name)),
            )

    def test_write_isolated_from_source_and_siblings(self, memory):
        _a, b = self._seeded(memory)
        cow1, cow2 = memory.cow_clone(), memory.cow_clone()
        cow1.write_object(cow1.object("b"),
                          np.zeros(32, dtype=np.float32))
        assert memory.read_object(b)[0] == 7.0
        assert cow2.read_object(cow2.object("b"))[0] == 7.0
        assert cow1.read_object(cow1.object("b"))[0] == 0.0

    def test_dirty_tracking(self, memory):
        self._seeded(memory)
        cow = memory.cow_clone()
        assert cow.is_cow
        assert cow.cow_dirty_names == frozenset()
        assert memory.cow_dirty_names is None  # plain memory: untracked
        cow.write_object(cow.object("b"),
                         np.zeros(32, dtype=np.float32))
        assert cow.cow_dirty_names == frozenset({"b"})
        assert cow.private_bytes > 0

    def test_overlays_stay_private(self, memory):
        a, _b = self._seeded(memory)
        cow = memory.cow_clone()
        cow.inject_stuck_at(a.base_addr, 0, 1)
        # Faults are overlay metadata, not writes: clone stays clean
        # and the source never sees them.
        assert cow.cow_dirty_names == frozenset()
        assert memory.fault_count == 0
        assert cow.read_object(cow.object("a"))[0] != \
            memory.read_object(a)[0]

    def test_clone_drops_source_overlays(self, memory):
        a, _b = self._seeded(memory)
        memory.inject_stuck_at(a.base_addr, 0, 1)
        cow = memory.cow_clone()
        assert cow.fault_count == 0
        assert cow.read_object(cow.object("a"))[0] == 0.0

    def test_alloc_after_cow_clone(self, memory):
        self._seeded(memory)
        cow = memory.cow_clone()
        extra = cow.alloc("extra", (8,), np.float32, read_only=False)
        cow.write_object(extra, np.ones(8, dtype=np.float32))
        np.testing.assert_array_equal(
            cow.read_object(extra), np.ones(8, dtype=np.float32))
        with pytest.raises(AddressError):
            memory.object("extra")

    def test_read_block_spans_dirty_and_clean(self, memory):
        a, b = self._seeded(memory)
        cow = memory.cow_clone()
        cow.write_object(cow.object("b"),
                         np.zeros(32, dtype=np.float32))
        raw = cow.read_block(b.base_addr)
        assert (raw == 0).all()
        np.testing.assert_array_equal(
            cow.read_block(a.base_addr), memory.read_block(a.base_addr))

    def test_chained_cow_clone_flattens(self, memory):
        _a, b = self._seeded(memory)
        cow = memory.cow_clone()
        cow.write_object(cow.object("b"),
                         np.zeros(32, dtype=np.float32))
        grand = cow.cow_clone()
        assert grand.is_cow
        assert grand.cow_dirty_names == frozenset()
        assert grand.read_object(grand.object("b"))[0] == 0.0
        grand.write_object(grand.object("b"),
                           np.ones(32, dtype=np.float32))
        assert cow.read_object(cow.object("b"))[0] == 0.0

    def test_full_clone_of_cow_twin(self, memory):
        self._seeded(memory)
        cow = memory.cow_clone()
        cow.write_object(cow.object("b"),
                         np.zeros(32, dtype=np.float32))
        full = cow.clone()
        assert full.cow_dirty_names is None
        assert full.read_object(full.object("b"))[0] == 0.0

    def test_read_byte_applies_overlay(self, memory):
        a, _b = self._seeded(memory)
        cow = memory.cow_clone()
        cow.inject_stuck_at(a.base_addr, 0, 1)
        assert cow.read_byte(a.base_addr) == 1
        assert memory.read_byte(a.base_addr) == 0

    def test_overlay_offsets(self, memory):
        a, _b = self._seeded(memory)
        memory.inject_stuck_at(a.base_addr + 9, 3, 1)
        memory.inject_stuck_at(a.base_addr + 2, 0, 0)
        assert memory.overlay_offsets(a) == [2, 9]


class TestOverlayAlgebra:
    def test_apply(self):
        ov = StuckAtOverlay(or_mask=0b0001, and_mask=0b1000)
        assert ov.apply(0b1110) == 0b0111

    def test_merge_later_wins(self):
        first = StuckAtOverlay(0b01, 0)
        second = StuckAtOverlay(0, 0b01)
        merged = first.merged_with(second)
        assert merged.apply(0b00) == 0
        assert merged.apply(0b11) == 0b10


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_overlay_apply_is_idempotent(raw, or_mask, and_mask):
    ov = StuckAtOverlay(or_mask & ~and_mask, and_mask)
    once = ov.apply(raw)
    assert ov.apply(once) == once
