"""Property tests: the cache model against a reference LRU model."""

from collections import OrderedDict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cache import Cache, CacheConfig

LINE = 128


class ReferenceLru:
    """An obviously-correct fully-explicit LRU set-associative model."""

    def __init__(self, n_sets: int, assoc: int):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [[] for _ in range(n_sets)]  # MRU at end

    def access(self, addr: int) -> bool:
        line = addr // LINE
        idx = line % self.n_sets
        tag = line // self.n_sets
        entries = self.sets[idx]
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            return True
        if len(entries) >= self.assoc:
            entries.pop(0)
        entries.append(tag)
        return False


@settings(max_examples=60)
@given(
    st.integers(min_value=1, max_value=4),   # log2 sets
    st.integers(min_value=1, max_value=4),   # assoc
    st.lists(st.integers(min_value=0, max_value=63), min_size=1,
             max_size=200),
)
def test_cache_matches_reference_lru(log_sets, assoc, line_ids):
    n_sets = 1 << log_sets
    cache = Cache(CacheConfig(n_sets * assoc * LINE, assoc, LINE))
    reference = ReferenceLru(n_sets, assoc)
    for line_id in line_ids:
        addr = line_id * LINE
        assert cache.access(addr) == reference.access(addr), line_id


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=31), min_size=1,
                max_size=150))
def test_hit_plus_miss_equals_accesses(line_ids):
    cache = Cache(CacheConfig(4 * 2 * LINE, 2, LINE))
    for line_id in line_ids:
        cache.access(line_id * LINE)
    stats = cache.stats
    assert stats.hits + stats.misses == stats.accesses == len(line_ids)
    assert stats.evictions <= stats.misses


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=100))
def test_resident_lines_bounded_by_capacity(line_ids):
    config = CacheConfig(8 * 2 * LINE, 2, LINE)
    cache = Cache(config)
    for line_id in line_ids:
        cache.access(line_id * LINE)
    assert cache.resident_lines <= config.n_lines


@settings(max_examples=40)
@given(st.lists(st.integers(min_value=0, max_value=15), min_size=1,
                max_size=60))
def test_working_set_within_capacity_never_evicts(line_ids):
    """Any access pattern over <= capacity distinct lines that map to
    distinct ways cannot evict under LRU when the whole set fits."""
    cache = Cache(CacheConfig(1 * 16 * LINE, 16, LINE))  # 1 set, 16-way
    for line_id in line_ids:
        cache.access(line_id * LINE)
    assert cache.stats.evictions == 0
    # Every line misses exactly once (cold) and hits thereafter.
    assert cache.stats.misses == len(set(line_ids))
