"""Tests for the (72,64) SECDED codec — the paper's baseline and the
reason multi-bit faults need the data-centric schemes at all."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.ecc import (
    CODEWORD_BITS,
    DecodeStatus,
    SecdedCodec,
    TrueOutcome,
    classify_true_outcome,
    escape_rates,
    inject_and_decode,
)

codec = SecdedCodec()

words = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestEncodeDecodeClean:
    def test_zero(self):
        assert codec.decode(codec.encode(0)).status is \
            DecodeStatus.NO_ERROR

    def test_roundtrip_examples(self):
        for data in (1, 0xDEADBEEF, (1 << 64) - 1, 0x0123456789ABCDEF):
            result = codec.decode(codec.encode(data))
            assert result.status is DecodeStatus.NO_ERROR
            assert result.data == data

    def test_encode_rejects_oversized(self):
        with pytest.raises(ValueError):
            codec.encode(1 << 64)

    def test_decode_rejects_oversized(self):
        with pytest.raises(ValueError):
            codec.decode(1 << 72)


class TestSingleBit:
    def test_every_position_corrects(self):
        data = 0xA5A5_5A5A_0F0F_F0F0
        codeword = codec.encode(data)
        for pos in range(CODEWORD_BITS):
            result = codec.decode(codeword ^ (1 << pos))
            assert result.status is DecodeStatus.CORRECTED, pos
            assert result.data == data, pos

    def test_true_outcome_is_corrected(self):
        for pos in (0, 1, 5, 64, 71):
            assert inject_and_decode(codec, 1234, [pos]) is \
                TrueOutcome.CORRECTED


class TestDoubleBit:
    def test_all_pairs_detected_sample(self):
        data = 0x1122_3344_5566_7788
        codeword = codec.encode(data)
        rng = np.random.default_rng(0)
        for _ in range(200):
            a, b = rng.choice(CODEWORD_BITS, size=2, replace=False)
            corrupted = codeword ^ (1 << int(a)) ^ (1 << int(b))
            result = codec.decode(corrupted)
            assert result.status is \
                DecodeStatus.DETECTED_UNCORRECTABLE, (a, b)

    def test_true_outcome_detected(self):
        assert inject_and_decode(codec, 99, [3, 40]) is \
            TrueOutcome.DETECTED


class TestMultiBit:
    def test_triple_bits_usually_miscorrect(self):
        """3-bit errors look like single-bit errors to SECDED: the
        decoder 'corrects' the wrong bit — the silent failure mode the
        paper's schemes exist to catch."""
        rng = np.random.default_rng(1)
        outcomes = [
            inject_and_decode(
                codec,
                int(rng.integers(0, 1 << 63)),
                [int(p) for p in
                 rng.choice(CODEWORD_BITS, size=3, replace=False)],
            )
            for _ in range(150)
        ]
        bad = sum(
            o in (TrueOutcome.MISCORRECTED, TrueOutcome.SILENT_ESCAPE)
            for o in outcomes
        )
        assert bad > len(outcomes) * 0.5
        assert TrueOutcome.CORRECTED not in outcomes

    def test_quad_bits_never_recover_data(self):
        rates = escape_rates(codec, 4, trials=300,
                             rng=np.random.default_rng(2))
        # A 4-bit error never decodes back to the right data: every
        # outcome is detection (best case), a miscorrection, or a
        # silent escape — SECDED cannot *fix* any of them, which is
        # the paper's premise.
        assert rates[TrueOutcome.CORRECTED] == 0.0
        assert rates[TrueOutcome.CLEAN] == 0.0
        assert rates[TrueOutcome.DETECTED] < 1.0


class TestClassifier:
    def test_clean(self):
        cw = codec.encode(42)
        assert classify_true_outcome(codec, 42, cw) is TrueOutcome.CLEAN


@settings(max_examples=40)
@given(words)
def test_roundtrip_property(data):
    result = codec.decode(codec.encode(data))
    assert result.status is DecodeStatus.NO_ERROR
    assert result.data == data


@settings(max_examples=40)
@given(words, st.integers(min_value=0, max_value=CODEWORD_BITS - 1))
def test_single_bit_property(data, pos):
    assert inject_and_decode(codec, data, [pos]) is TrueOutcome.CORRECTED


@settings(max_examples=40)
@given(words,
       st.sets(st.integers(min_value=0, max_value=CODEWORD_BITS - 1),
               min_size=2, max_size=2))
def test_double_bit_property(data, positions):
    assert inject_and_decode(codec, data, sorted(positions)) is \
        TrueOutcome.DETECTED
