"""Tests for the DRAM channel model."""

import pytest

from repro.arch.dram import DramChannel, DramTimings

LINE = 128
ROW = 2048


def channel(n_banks=4):
    return DramChannel(
        n_banks=n_banks,
        row_bytes=ROW,
        line_bytes=LINE,
        timings=DramTimings(
            row_hit_cycles=60, row_miss_cycles=130,
            bus_cycles_per_line=12,
        ),
    )


class TestTimings:
    def test_validation(self):
        with pytest.raises(ValueError):
            DramTimings(row_hit_cycles=0)
        with pytest.raises(ValueError):
            DramTimings(row_hit_cycles=100, row_miss_cycles=50)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        ch = channel()
        done = ch.access(0, 0)
        assert done == 130 + 12
        assert ch.stats.row_misses == 1

    def test_same_row_hit(self):
        ch = channel()
        ch.access(0, 0)
        ch.access(1000, 0)
        assert ch.stats.row_hits == 1

    def test_row_hit_rate(self):
        ch = channel()
        for _ in range(4):
            ch.access(0, 0)
        assert ch.row_hit_rate == pytest.approx(0.75)

    def test_far_address_same_bank_is_row_conflict(self):
        ch = channel(n_banks=1)
        ch.access(0, 0)
        ch.access(200, ROW * 64)  # different row, same (only) bank
        assert ch.stats.row_misses == 2


class TestBankParallelism:
    def test_different_banks_overlap(self):
        ch = channel(n_banks=4)
        # XOR hashing still maps some distinct lines to distinct banks;
        # find two addresses in different banks.
        bank0, _ = ch._map(0)
        addr = LINE
        while ch._map(addr)[0] == bank0:
            addr += LINE
        t0 = ch.access(0, 0)
        t1 = ch.access(0, addr)
        # Second access overlaps bank latency; only the shared data bus
        # serializes the two line transfers.
        assert t1 == t0 + 12

    def test_same_bank_serializes(self):
        ch = channel(n_banks=1)
        t0 = ch.access(0, 0)
        t1 = ch.access(0, ROW * 64)
        assert t1 >= t0 + 130


class TestBusOccupancy:
    def test_bus_serializes_row_hits(self):
        ch = channel(n_banks=1)
        ch.access(0, 0)
        # Row hits to the open row: each still needs 12 bus cycles.
        t1 = ch.access(0, LINE)  # same row (row covers 16 lines/bank)
        t2 = ch.access(0, LINE * 2)
        assert t2 - t1 >= 12


class TestXorHash:
    def test_large_strides_spread_over_banks(self):
        ch = channel(n_banks=16)
        stride = 1536  # the Polybench column-major lane stride (bytes)
        banks = {ch._map(i * stride)[0] for i in range(32)}
        assert len(banks) >= 8  # without hashing this collapses to 4

    def test_map_is_deterministic(self):
        ch = channel()
        assert ch._map(12345 * LINE) == ch._map(12345 * LINE)


def test_reset():
    ch = channel()
    ch.access(0, 0)
    ch.reset()
    assert ch.stats.requests == 0
    assert ch.access(0, 0) == 142  # row miss again after reset


def test_bad_geometry():
    with pytest.raises(ValueError):
        DramChannel(0, ROW, LINE, DramTimings())
    with pytest.raises(ValueError):
        DramChannel(4, 100, 128, DramTimings())
