"""Tests for the DRAM channel model."""

import pytest

from repro.arch.dram import DramChannel, DramTimings

LINE = 128
ROW = 2048


def channel(n_banks=4):
    return DramChannel(
        n_banks=n_banks,
        row_bytes=ROW,
        line_bytes=LINE,
        timings=DramTimings(
            row_hit_cycles=60, row_miss_cycles=130,
            bus_cycles_per_line=12,
        ),
    )


class TestTimings:
    def test_validation(self):
        with pytest.raises(ValueError):
            DramTimings(row_hit_cycles=0)
        with pytest.raises(ValueError):
            DramTimings(row_hit_cycles=100, row_miss_cycles=50)


class TestRowBuffer:
    def test_first_access_is_row_miss(self):
        ch = channel()
        done = ch.access(0, 0)
        assert done == 130 + 12
        assert ch.stats.row_misses == 1

    def test_same_row_hit(self):
        ch = channel()
        ch.access(0, 0)
        ch.access(1000, 0)
        assert ch.stats.row_hits == 1

    def test_row_hit_rate(self):
        ch = channel()
        for _ in range(4):
            ch.access(0, 0)
        assert ch.row_hit_rate == pytest.approx(0.75)

    def test_far_address_same_bank_is_row_conflict(self):
        ch = channel(n_banks=1)
        ch.access(0, 0)
        ch.access(200, ROW * 64)  # different row, same (only) bank
        assert ch.stats.row_misses == 2


class TestBankParallelism:
    def test_different_banks_overlap(self):
        ch = channel(n_banks=4)
        # XOR hashing still maps some distinct lines to distinct banks;
        # find two addresses in different banks.
        bank0, _ = ch._map(0)
        addr = LINE
        while ch._map(addr)[0] == bank0:
            addr += LINE
        t0 = ch.access(0, 0)
        t1 = ch.access(0, addr)
        # Second access overlaps bank latency; only the shared data bus
        # serializes the two line transfers.
        assert t1 == t0 + 12

    def test_same_bank_serializes(self):
        ch = channel(n_banks=1)
        t0 = ch.access(0, 0)
        t1 = ch.access(0, ROW * 64)
        assert t1 >= t0 + 130


class TestBusOccupancy:
    def test_bus_serializes_row_hits(self):
        ch = channel(n_banks=1)
        ch.access(0, 0)
        # Row hits to the open row: each still needs 12 bus cycles.
        t1 = ch.access(0, LINE)  # same row (row covers 16 lines/bank)
        t2 = ch.access(0, LINE * 2)
        assert t2 - t1 >= 12

    def test_bank_busy_until_bus_done(self):
        """A bank's row buffer holds the line until the bus carried it
        out, so the next request to that bank waits for the *transfer*
        end (142), not merely the array read (130)."""
        ch = channel(n_banks=1)
        t0 = ch.access(0, 0)
        assert t0 == 130 + 12
        # Arrive at 135: bank is still draining onto the bus until 142.
        # Row hit then completes at 142 + 60 + 12 = 214; the pre-fix
        # model freed the bank at 130 and returned 207.
        t1 = ch.access(135, LINE)
        assert t1 == 142 + 60 + 12
        assert ch.stats.bank_queue_cycles == 142 - 135

    def test_bus_queue_wait_recorded(self):
        """Two banks finish their array reads together; the second line
        waits a full transfer for the shared data bus, and that wait is
        accounted in ``bus_queue_cycles``."""
        ch = channel(n_banks=2)
        bank0, _ = ch._map(0)
        addr = LINE
        while ch._map(addr)[0] == bank0:
            addr += LINE
        ch.access(0, 0)
        ch.access(0, addr)
        assert ch.stats.bus_queue_cycles == 12
        assert ch.stats.bank_queue_cycles == 0

    def test_reset_clears_bus_accounting(self):
        ch = channel(n_banks=1)
        ch.access(0, 0)
        ch.access(135, LINE)
        ch.reset()
        assert ch.stats.bus_queue_cycles == 0
        assert ch.access(0, 0) == 130 + 12


class TestXorHash:
    def test_large_strides_spread_over_banks(self):
        ch = channel(n_banks=16)
        stride = 1536  # the Polybench column-major lane stride (bytes)
        banks = {ch._map(i * stride)[0] for i in range(32)}
        assert len(banks) >= 8  # without hashing this collapses to 4

    def test_map_is_deterministic(self):
        ch = channel()
        assert ch._map(12345 * LINE) == ch._map(12345 * LINE)


def test_reset():
    ch = channel()
    ch.access(0, 0)
    ch.reset()
    assert ch.stats.requests == 0
    assert ch.access(0, 0) == 142  # row miss again after reset


def test_bad_geometry():
    with pytest.raises(ValueError):
        DramChannel(0, ROW, LINE, DramTimings())
    with pytest.raises(ValueError):
        DramChannel(4, 100, 128, DramTimings())
