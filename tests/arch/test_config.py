"""Tests for the GPU configuration (Table I)."""

import pytest

from repro.arch.config import GpuConfig, KIB, PAPER_CONFIG, fast_config
from repro.errors import ConfigError


class TestPaperConfig:
    def test_table1_core(self):
        assert PAPER_CONFIG.core_clock_mhz == 1400
        assert PAPER_CONFIG.simt_width == 32
        assert PAPER_CONFIG.n_sms == 15

    def test_table1_l1(self):
        assert PAPER_CONFIG.l1_size_bytes == 16 * KIB
        assert PAPER_CONFIG.l1_assoc == 4
        assert PAPER_CONFIG.line_bytes == 128

    def test_table1_l2_totals_1536kb(self):
        assert PAPER_CONFIG.l2_slice_size_bytes == 256 * KIB
        assert PAPER_CONFIG.l2_assoc == 16
        assert PAPER_CONFIG.l2_total_bytes == 1536 * KIB

    def test_table1_memory(self):
        assert PAPER_CONFIG.n_mem_channels == 6
        assert PAPER_CONFIG.dram_banks_per_channel == 16
        assert PAPER_CONFIG.mem_clock_mhz == 924

    def test_scheme_hardware_capacities(self):
        assert PAPER_CONFIG.addr_table_bytes == 128
        assert PAPER_CONFIG.inst_table_bytes == 128
        assert PAPER_CONFIG.pending_compare_entries == 32
        assert PAPER_CONFIG.comparator_width_bits == 256


class TestDescribe:
    def test_describe_matches_table1_rows(self):
        rows = dict(PAPER_CONFIG.describe())
        assert "1400MHz core clock" in rows["Core Features"]
        assert "15 SMs" in rows["Resources / Core"]
        assert "16KB 4-way L1" in rows["L1 Caches / Core"]
        assert "1536 KB in total" in rows["L2 Caches"]
        assert "6 GDDR5" in rows["Memory Model"]
        assert "FR-FCFS" in rows["Memory Model"]


class TestValidationAndHelpers:
    def test_bad_line_size(self):
        with pytest.raises(ConfigError):
            GpuConfig(line_bytes=100)

    def test_bad_l1_geometry(self):
        with pytest.raises(ConfigError):
            GpuConfig(l1_size_bytes=1000)

    def test_nonpositive_core_count(self):
        with pytest.raises(ConfigError):
            GpuConfig(n_sms=0)

    def test_channel_interleaving(self):
        cfg = PAPER_CONFIG
        channels = [cfg.channel_of_address(i * 128) for i in range(12)]
        assert channels == [0, 1, 2, 3, 4, 5] * 2

    def test_scaled_copy(self):
        cfg = PAPER_CONFIG.scaled(n_sms=4)
        assert cfg.n_sms == 4
        assert cfg.l1_size_bytes == PAPER_CONFIG.l1_size_bytes
        assert PAPER_CONFIG.n_sms == 15  # original untouched

    def test_fast_config_valid(self):
        cfg = fast_config()
        assert cfg.n_sms < PAPER_CONFIG.n_sms
        assert cfg.l2_total_bytes < PAPER_CONFIG.l2_total_bytes
