"""Tests for the package's public surface and error taxonomy."""

import pytest

import repro
from repro.errors import (
    AddressError,
    AllocationError,
    ConfigError,
    FaultDetected,
    KernelCrash,
    ReproError,
    TraceError,
    UncorrectableFault,
)
from repro.faults.outcomes import Outcome, RunResult


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_headline_api_importable(self):
        from repro import (
            Campaign,
            CorrectionScheme,
            DetectionScheme,
            PAPER_CONFIG,
            ReliabilityManager,
            create_app,
        )

        assert PAPER_CONFIG.n_sms == 15
        assert callable(create_app)


class TestErrorTaxonomy:
    @pytest.mark.parametrize("exc_type", [
        AllocationError, AddressError, ConfigError, TraceError,
        FaultDetected, UncorrectableFault, KernelCrash,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    def test_fault_detected_carries_location(self):
        exc = FaultDetected("weights", 3)
        assert exc.object_name == "weights"
        assert exc.block_index == 3
        assert "weights" in str(exc)

    def test_fault_detected_custom_message(self):
        exc = FaultDetected("w", 0, message="custom")
        assert str(exc) == "custom"

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise KernelCrash("boom")


class TestOutcomeTaxonomy:
    def test_five_outcomes(self):
        assert {o.value for o in Outcome} == {
            "masked", "sdc", "detected", "corrected", "crash"}

    def test_only_sdc_is_silent(self):
        silent = [o for o in Outcome if o.is_silent_corruption]
        assert silent == [Outcome.SDC]

    def test_benign_outcomes(self):
        assert Outcome.MASKED.is_benign
        assert Outcome.CORRECTED.is_benign
        assert not Outcome.DETECTED.is_benign
        assert not Outcome.CRASH.is_benign
        assert not Outcome.SDC.is_benign

    def test_run_result_is_frozen(self):
        result = RunResult(0, Outcome.MASKED, 0.0)
        with pytest.raises(AttributeError):
            result.outcome = Outcome.SDC
