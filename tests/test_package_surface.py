"""Tests for the package's public surface and error taxonomy."""

import pytest

import repro
from repro.errors import (
    AddressError,
    AllocationError,
    CheckpointError,
    ConfigError,
    FaultDetected,
    KernelCrash,
    MetricsError,
    ReproError,
    SessionError,
    SessionInterrupted,
    SpecError,
    StoreError,
    TelemetryError,
    TraceError,
    UncorrectableFault,
    UnknownAppError,
    UnknownSchemeError,
)
from repro.faults.outcomes import Outcome, RunResult


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    def test_headline_api_importable(self):
        from repro import (
            Campaign,
            CorrectionScheme,
            DetectionScheme,
            PAPER_CONFIG,
            ReliabilityManager,
            create_app,
        )

        assert PAPER_CONFIG.n_sms == 15
        assert callable(create_app)


#: The pinned surface of ``repro.api``.  This list is the compatibility
#: contract: a name leaving it (or silently appearing in it) is an API
#: break and must be a deliberate, reviewed change here AND in
#: docs/API.md — not a side effect of a refactor.
API_SURFACE = [
    "APPLICATIONS",
    "FLAT_APPLICATIONS",
    "create_app",
    "resilience_apps",
    "ReliabilityManager",
    "EvaluationRequest",
    "ProtectionSpec",
    "GpuConfig",
    "PAPER_CONFIG",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CampaignExecutor",
    "Outcome",
    "RunResult",
    "AdaptiveConfig",
    "AdaptiveResult",
    "StopDecision",
    "ConfidenceInterval",
    "confidence_interval",
    "runs_for_margin",
    "stratified_interval",
    "StratifiedSelection",
    "stratify_by_object",
    "SweepSpec",
    "CellSpec",
    "Session",
    "SessionConfig",
    "SweepResult",
    "CheckpointStore",
    "run_sweep",
    "summarize_sweep",
    "tradeoff_curve",
    "optimize",
    "OptimizeResult",
    "DesignPoint",
    "DesignSpace",
    "Evaluation",
    "pareto_front",
    "budget_best",
    "ParetoPoint",
    "pareto_front_series",
    "read_search_trail",
    "MetricsRegistry",
    "RunRecord",
    "TelemetryWriter",
    "read_records",
    "write_decisions",
    "read_decisions",
    "SessionLog",
    "read_session_events",
    "ProvenanceRecord",
    "ProvenanceWriter",
    "read_provenance",
    "VulnerabilityProfile",
    "vulnerability_profiles",
    "ResultsStore",
    "ingest_files",
    "render_html_report",
    "write_html_report",
    "ProgressEvent",
    "TtyProgress",
    "ReproError",
    "ConfigError",
    "SpecError",
    "UnknownAppError",
    "UnknownSchemeError",
    "CheckpointError",
    "SessionError",
    "SessionInterrupted",
    "StoreError",
    "TelemetryError",
    "MetricsError",
    "FaultDetected",
    "KernelCrash",
    "__version__",
]


class TestApiFacade:
    def test_all_matches_pinned_snapshot(self):
        import repro.api

        assert repro.api.__all__ == API_SURFACE

    def test_every_name_resolves(self):
        import repro.api

        for name in API_SURFACE:
            assert hasattr(repro.api, name), name

    def test_star_import_exposes_exactly_the_surface(self):
        namespace = {}
        exec("from repro.api import *", namespace)
        exported = {n for n in namespace if not n.startswith("__")} \
            | {"__version__"}
        assert exported == set(API_SURFACE)

    def test_facade_names_are_canonical_objects(self):
        # The facade re-exports, never wraps: identity must hold so
        # isinstance checks work across import paths.
        import repro.api
        from repro.faults.campaign import Campaign
        from repro.runtime.session import Session, SweepSpec

        assert repro.api.Campaign is Campaign
        assert repro.api.Session is Session
        assert repro.api.SweepSpec is SweepSpec


class TestErrorTaxonomy:
    @pytest.mark.parametrize("exc_type", [
        AllocationError, AddressError, ConfigError, TraceError,
        FaultDetected, UncorrectableFault, KernelCrash,
        UnknownAppError, UnknownSchemeError, SpecError,
        TelemetryError, MetricsError, CheckpointError, SessionError,
        SessionInterrupted, StoreError,
    ])
    def test_all_derive_from_repro_error(self, exc_type):
        assert issubclass(exc_type, ReproError)
        assert issubclass(exc_type, Exception)

    @pytest.mark.parametrize("exc_type", [
        UnknownAppError, UnknownSchemeError, SpecError, TelemetryError,
    ])
    def test_config_refinements(self, exc_type):
        assert issubclass(exc_type, ConfigError)

    def test_unknown_app_carries_candidates(self):
        exc = UnknownAppError("NOPE", ["A-Laplacian", "P-BICG"])
        assert exc.name == "NOPE"
        assert "P-BICG" in exc.known

    def test_session_interrupted_carries_progress(self):
        exc = SessionInterrupted(3, 8, reason="interrupted")
        assert issubclass(SessionInterrupted, SessionError)
        assert (exc.done, exc.total) == (3, 8)
        assert "3/8" in str(exc)

    def test_fault_detected_carries_location(self):
        exc = FaultDetected("weights", 3)
        assert exc.object_name == "weights"
        assert exc.block_index == 3
        assert "weights" in str(exc)

    def test_fault_detected_custom_message(self):
        exc = FaultDetected("w", 0, message="custom")
        assert str(exc) == "custom"

    def test_catching_base_catches_all(self):
        with pytest.raises(ReproError):
            raise KernelCrash("boom")


class TestOutcomeTaxonomy:
    def test_five_outcomes(self):
        assert {o.value for o in Outcome} == {
            "masked", "sdc", "detected", "corrected", "crash"}

    def test_only_sdc_is_silent(self):
        silent = [o for o in Outcome if o.is_silent_corruption]
        assert silent == [Outcome.SDC]

    def test_benign_outcomes(self):
        assert Outcome.MASKED.is_benign
        assert Outcome.CORRECTED.is_benign
        assert not Outcome.DETECTED.is_benign
        assert not Outcome.CRASH.is_benign
        assert not Outcome.SDC.is_benign

    def test_run_result_is_frozen(self):
        result = RunResult(0, Outcome.MASKED, 0.0)
        with pytest.raises(AttributeError):
            result.outcome = Outcome.SDC
