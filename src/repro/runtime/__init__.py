"""Campaign execution engine: parallel fan-out and process-level caching.

* :class:`~repro.runtime.executor.CampaignExecutor` — shards a
  campaign's run indices into chunks, executes them over a process
  pool (serial fallback included) and reassembles results
  deterministically.
* :mod:`repro.runtime.cache` — per-process cache of pristine device
  memory, golden outputs and memory traces keyed by application
  identity, so sweeps and worker processes never recompute them per
  campaign object.
"""

from repro.runtime.cache import (
    AppContext,
    app_cache_key,
    app_context,
    cache_info,
    clear_app_cache,
)
from repro.runtime.executor import CampaignExecutor, CampaignSpec, plan_chunks

__all__ = [
    "AppContext",
    "CampaignExecutor",
    "CampaignSpec",
    "app_cache_key",
    "app_context",
    "cache_info",
    "clear_app_cache",
    "plan_chunks",
]
