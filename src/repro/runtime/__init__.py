"""Campaign execution engine: parallel fan-out, caching, durability.

* :class:`~repro.runtime.executor.CampaignExecutor` — shards a
  campaign's run indices into chunks, executes them over a process
  pool (serial fallback included) and reassembles results
  deterministically.
* :mod:`repro.runtime.cache` — per-process cache of pristine device
  memory, golden outputs and memory traces keyed by application
  identity, so sweeps and worker processes never recompute them per
  campaign object.
* :mod:`repro.runtime.session` — declarative, resumable sweep
  sessions: a :class:`~repro.runtime.session.SweepSpec` grid executed
  as checkpointed chunk-level work units with bounded retry and
  graceful serial degradation.
* :mod:`repro.runtime.checkpoint` — the content-addressed on-disk
  chunk store the sessions persist into.
"""

from repro.runtime.cache import (
    AppContext,
    app_cache_key,
    app_context,
    cache_info,
    clear_app_cache,
)
from repro.runtime.checkpoint import STORE_VERSION, CheckpointStore
from repro.runtime.executor import CampaignExecutor, CampaignSpec, plan_chunks
from repro.runtime.session import (
    CellSpec,
    Session,
    SessionConfig,
    SweepEntry,
    SweepResult,
    SweepSpec,
    WorkUnit,
    run_sweep,
)

__all__ = [
    "AppContext",
    "CampaignExecutor",
    "CampaignSpec",
    "CellSpec",
    "CheckpointStore",
    "STORE_VERSION",
    "Session",
    "SessionConfig",
    "SweepEntry",
    "SweepResult",
    "SweepSpec",
    "WorkUnit",
    "app_cache_key",
    "app_context",
    "cache_info",
    "clear_app_cache",
    "plan_chunks",
    "run_sweep",
]
