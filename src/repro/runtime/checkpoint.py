"""Durable on-disk checkpoints for sweep sessions.

A :class:`CheckpointStore` owns one directory and persists a sweep's
progress at chunk granularity, so a crashed or interrupted session
resumes from its last durable chunk instead of rerunning the whole
grid.  Layout::

    <root>/
        MANIFEST.json                  # sweep identity + store version
        cells/<cell-digest>/
            chunk-00000000-00000025.json
            chunk-00000025-00000050.json
            ...

Everything is content-addressed canonical JSON:

* the cell directory name is the SHA-256 of the cell campaign's
  :meth:`~repro.faults.campaign.Campaign.spec_identity` — execution
  knobs such as ``jobs`` stay out of the identity, so a checkpoint
  taken at one parallelism resumes at any other;
* each chunk file embeds the digest of its own payload, verified on
  load, so torn or hand-edited files surface as
  :class:`~repro.errors.CheckpointError` instead of silently skewing
  merged results;
* writes go through a temp file + :func:`os.replace`, so a crash
  mid-write can never leave a half chunk that a resume would trust.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.errors import CheckpointError, ReproError
from repro.utils.canonical import canonical_digest, canonical_json

#: Bumped whenever the on-disk layout changes incompatibly.
STORE_VERSION = 1

_MANIFEST = "MANIFEST.json"
_CELLS = "cells"


def _chunk_name(start: int, stop: int) -> str:
    return f"chunk-{start:08d}-{stop:08d}.json"


class CheckpointStore:
    """Chunk-granular durable storage for one sweep's results."""

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST

    def exists(self) -> bool:
        """True if this directory already holds a sweep manifest."""
        return self.manifest_path.is_file()

    def initialize(self, spec_doc: dict, resume: bool = False) -> dict:
        """Create or validate the store for a sweep.

        ``spec_doc`` is the sweep's canonical identity document.  A
        fresh directory is stamped with it; an existing one must match
        it exactly (same digest) and requires ``resume=True`` — both
        mismatches raise :class:`~repro.errors.CheckpointError` so a
        stale ``--checkpoint-dir`` can never mix two different sweeps.
        """
        digest = canonical_digest(spec_doc)
        if self.exists():
            manifest = self._read_manifest()
            if manifest["digest"] != digest:
                raise CheckpointError(
                    f"checkpoint directory {self.root} belongs to a "
                    f"different sweep (manifest digest "
                    f"{manifest['digest'][:12]}…, this sweep "
                    f"{digest[:12]}…); use a fresh directory"
                )
            if not resume:
                raise CheckpointError(
                    f"checkpoint directory {self.root} already has "
                    "data for this sweep; pass resume=True "
                    "(CLI: --resume) to continue it"
                )
            return manifest
        manifest = {
            "version": STORE_VERSION,
            "digest": digest,
            "spec": spec_doc,
        }
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _CELLS).mkdir(exist_ok=True)
        self._atomic_write(self.manifest_path, manifest)
        return manifest

    def _read_manifest(self) -> dict:
        doc = self._read_json(self.manifest_path)
        for key in ("version", "digest", "spec"):
            if key not in doc:
                raise CheckpointError(
                    f"{self.manifest_path}: manifest missing {key!r}"
                )
        if doc["version"] != STORE_VERSION:
            raise CheckpointError(
                f"{self.manifest_path}: store version {doc['version']!r} "
                f"unsupported (expected {STORE_VERSION})"
            )
        if doc["digest"] != canonical_digest(doc["spec"]):
            raise CheckpointError(
                f"{self.manifest_path}: manifest digest does not match "
                "its spec document (corrupt manifest)"
            )
        return doc

    # ------------------------------------------------------------------
    # Chunks
    # ------------------------------------------------------------------
    def cell_dir(self, cell_digest: str) -> Path:
        """Directory holding one cell's chunk files."""
        return self.root / _CELLS / cell_digest

    def chunk_path(self, cell_digest: str, start: int, stop: int) -> Path:
        """File path for the chunk covering runs ``[start, stop)``."""
        return self.cell_dir(cell_digest) / _chunk_name(start, stop)

    def save_chunk(
        self, cell_digest: str, start: int, stop: int, payload: dict
    ) -> Path:
        """Durably persist one completed chunk's result payload."""
        path = self.chunk_path(cell_digest, start, stop)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "version": STORE_VERSION,
            "cell": cell_digest,
            "span": [start, stop],
            "digest": canonical_digest(payload),
            "payload": payload,
        }
        self._atomic_write(path, doc)
        return path

    def load_chunk(
        self, cell_digest: str, start: int, stop: int
    ) -> dict | None:
        """Load one chunk's payload, or ``None`` if not checkpointed.

        Any defect — undecodable JSON, wrong span, digest mismatch —
        raises :class:`~repro.errors.CheckpointError` naming the file.
        """
        path = self.chunk_path(cell_digest, start, stop)
        if not path.is_file():
            return None
        doc = self._read_json(path)
        if not isinstance(doc, dict) or "payload" not in doc \
                or "digest" not in doc:
            raise CheckpointError(f"{path}: not a chunk document")
        if doc.get("version") != STORE_VERSION:
            raise CheckpointError(
                f"{path}: chunk version {doc.get('version')!r} "
                f"unsupported (expected {STORE_VERSION})"
            )
        if doc.get("span") != [start, stop] \
                or doc.get("cell") != cell_digest:
            raise CheckpointError(
                f"{path}: chunk labeled for cell "
                f"{str(doc.get('cell'))[:12]}… span {doc.get('span')}, "
                f"expected {cell_digest[:12]}… span {[start, stop]}"
            )
        if canonical_digest(doc["payload"]) != doc["digest"]:
            raise CheckpointError(
                f"{path}: payload digest mismatch (corrupt chunk)"
            )
        return doc["payload"]

    def completed_spans(self, cell_digest: str) -> set[tuple[int, int]]:
        """Spans with a chunk file present (not yet digest-verified)."""
        cell = self.cell_dir(cell_digest)
        if not cell.is_dir():
            return set()
        spans: set[tuple[int, int]] = set()
        for entry in cell.iterdir():
            name = entry.name
            if not (name.startswith("chunk-") and name.endswith(".json")):
                continue
            try:
                start_s, stop_s = name[len("chunk-"):-len(".json")] \
                    .split("-")
                spans.add((int(start_s), int(stop_s)))
            except ValueError:
                raise CheckpointError(
                    f"{entry}: unrecognized chunk filename"
                ) from None
        return spans

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @staticmethod
    def _atomic_write(path: Path, doc: dict) -> None:
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(canonical_json(doc))
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    @staticmethod
    def _read_json(path: Path) -> dict:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except FileNotFoundError:
            raise CheckpointError(f"{path}: checkpoint file missing") \
                from None
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"{path}: unreadable ({exc})") from None


def wrap_payload_error(path, exc: ReproError) -> CheckpointError:
    """Recast a payload-decode failure as a checkpoint error."""
    return CheckpointError(f"{path}: bad chunk payload ({exc})")
