"""Resumable, fault-tolerant sweep sessions.

A :class:`SweepSpec` declares a grid of fault-injection campaign cells
— (application, scheme, protection level) × one shared fault
configuration — and a :class:`Session` executes it as chunk-level work
units with durable progress:

* every completed chunk's :class:`~repro.faults.campaign.CampaignResult`
  is persisted to a :class:`~repro.runtime.checkpoint.CheckpointStore`
  before the session moves on, so a crash or ``SIGINT`` loses at most
  the chunks in flight;
* a restart with ``resume=True`` loads the durable chunks and runs
  only the remainder — the merged results and telemetry are
  byte-identical to an uninterrupted run, at any ``jobs`` setting,
  because the chunk plan depends only on the spec (never on ``jobs``)
  and every run derives from ``(seed, run_index)``;
* worker failures get bounded retry with exponential backoff, chunk
  attempts can carry a deadline, a broken process pool is restarted a
  bounded number of times, and when no pool can be used at all the
  session degrades to in-process serial execution;
* progress, retry and fallback counters flow through the
  :class:`~repro.obs.metrics.MetricsRegistry`, and an optional
  :class:`~repro.obs.session.SessionLog` narrates the orchestration.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from math import ceil
from typing import Callable, Sequence

from repro import _compat
from repro.core.protection import ProtectionSpec
from repro.core.request import EvaluationRequest
from repro.core.schemes import SCHEME_NAMES
from repro.errors import (
    CheckpointError,
    ReproError,
    SessionError,
    SessionInterrupted,
    SpecError,
    UnknownSchemeError,
)
from repro.faults.campaign import Campaign, CampaignConfig, CampaignResult
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.session import SessionLog
from repro.runtime.checkpoint import CheckpointStore, wrap_payload_error
from repro.runtime.executor import (
    CampaignSpec,
    _run_span_spec,
    plan_chunks,
)
from repro.utils.canonical import canonical_digest

log = get_logger("session")

#: Default number of chunks a cell's runs are split into.  The plan
#: must not depend on ``jobs`` (that is what makes a checkpoint
#: resumable at any parallelism), so this replaces the executor's
#: per-worker heuristic.
DEFAULT_CHUNKS_PER_CELL = 16

#: Test seam: when set, called as ``hook(cell_digest, span)`` inside
#: every worker attempt before the chunk executes; raising simulates a
#: worker failure.  Inherited by forked workers.
_chaos_hook: Callable[[str, tuple[int, int]], None] | None = None


def _run_session_span(spec: CampaignSpec, span) -> CampaignResult:
    """Worker entry: optionally misbehave (tests), then run the span."""
    if _chaos_hook is not None:
        _chaos_hook(spec.token, span)
    return _run_span_spec(spec, span)


# ----------------------------------------------------------------------
# Declarative sweep grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellSpec:
    """One (app, scheme, protect) cell of a sweep grid.

    ``protect`` is usually the int/str shorthand, but a cell may carry
    a full :class:`~repro.core.protection.ProtectionSpec` instead
    (scheme ``"spec"``) — that is how the design-space search drives
    arbitrary per-object configurations through the session machinery.
    """

    app: str
    scheme: str
    protect: int | str | ProtectionSpec
    selection: str
    runs: int
    n_blocks: int
    n_bits: int
    seed: int
    scale: str = "default"
    app_seed: int = 1234
    secded: bool = False
    keep_runs: bool = False
    collect_records: bool = True

    @property
    def key(self) -> str:
        """Human-readable cell label used in logs and summaries."""
        if isinstance(self.protect, ProtectionSpec):
            return f"{self.app}~{self.scheme}~{self.protect.to_string()}"
        return f"{self.app}~{self.scheme}~{self.protect}"

    def to_dict(self) -> dict:
        """Identity-complete dict image of this cell."""
        doc = dataclasses.asdict(self)
        if isinstance(self.protect, ProtectionSpec):
            # asdict mangles the nested dataclass into raw tuples;
            # use the spec's canonical image instead.
            doc["protect"] = self.protect.to_dict()
        return doc

    def build_campaign(
        self,
        metrics: MetricsRegistry | None = None,
        batch: int = 1,
        max_batch_bytes: int = 256 * 1024 * 1024,
    ) -> Campaign:
        """Materialize this cell's campaign (parent-side).

        ``batch``/``max_batch_bytes`` are execution knobs (vectorized
        fault sweeps) — results are identical to ``batch=1``, so they
        never join the cell or sweep identity.
        """
        from repro.core.manager import ReliabilityManager
        from repro.kernels.registry import create_app

        app = create_app(self.app, scale=self.scale, seed=self.app_seed)
        manager = ReliabilityManager(app)
        if isinstance(self.protect, ProtectionSpec):
            how = {"protection": self.protect}
        else:
            how = {"scheme": self.scheme,
                   "protect": manager.protected_names(self.protect)}
        return Campaign(
            app,
            manager.selection(self.selection),
            **how,
            config=CampaignConfig(
                runs=self.runs, n_blocks=self.n_blocks,
                n_bits=self.n_bits, seed=self.seed, secded=self.secded,
            ),
            keep_runs=self.keep_runs,
            collect_records=self.collect_records,
            metrics=metrics,
            batch=batch,
            max_batch_bytes=max_batch_bytes,
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative grid of campaign cells.

    The grid is the cross product ``apps x schemes x protects`` under
    one shared fault configuration; :meth:`cells` enumerates it in
    deterministic order.  ``chunk_runs`` fixes how many runs one
    durable work unit covers (default: the cell's runs split into
    :data:`DEFAULT_CHUNKS_PER_CELL` chunks) — it is part of the sweep
    identity, so a checkpoint directory can never be resumed under a
    different chunking.
    """

    apps: tuple[str, ...]
    schemes: tuple[str, ...] = ("correction",)
    protects: tuple[int | str | ProtectionSpec, ...] = ("hot",)
    runs: int = 200
    n_blocks: int = 1
    n_bits: int = 2
    seed: int = 20210621
    selection: str = "access-weighted"
    scale: str = "default"
    app_seed: int = 1234
    secded: bool = False
    keep_runs: bool = False
    collect_records: bool = True
    chunk_runs: int | None = None
    #: CI-driven early stopping: when set, each cell stops at the
    #: first chunk boundary where the Wilson interval on its SDC rate
    #: reaches this margin (see :mod:`repro.faults.adaptive`); the
    #: remaining planned chunks of that cell are skipped.  Chunk
    #: boundaries are jobs-independent, so the committed sweep result
    #: stays byte-identical at any parallelism.
    target_margin: float | None = None

    def __post_init__(self):
        for name in ("apps", "schemes", "protects"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
            if not getattr(self, name):
                raise SpecError(f"sweep {name} must not be empty")
        self._validate()

    def _validate(self) -> None:
        from repro.kernels.registry import (
            APPLICATIONS,
            EXTENDED_APPLICATIONS,
            FLAT_APPLICATIONS,
        )
        from repro.errors import UnknownAppError

        known_apps = (set(APPLICATIONS) | set(FLAT_APPLICATIONS)
                      | set(EXTENDED_APPLICATIONS))
        for app in self.apps:
            if app not in known_apps:
                raise UnknownAppError(app, sorted(known_apps))
        n_typed = sum(
            isinstance(p, ProtectionSpec) for p in self.protects
        )
        if "spec" in self.schemes:
            # The sentinel scheme for fully typed grids: every protect
            # is a ProtectionSpec that determines its own scheme(s).
            if self.schemes != ("spec",):
                raise SpecError(
                    "scheme 'spec' cannot be combined with named "
                    "schemes"
                )
            if n_typed != len(self.protects):
                raise SpecError(
                    "scheme 'spec' requires every protect to be a "
                    "ProtectionSpec"
                )
        elif n_typed:
            raise SpecError(
                "ProtectionSpec protects require schemes=('spec',)"
            )
        for scheme in self.schemes:
            if scheme == "spec":
                continue
            if scheme not in SCHEME_NAMES:
                raise UnknownSchemeError(scheme, SCHEME_NAMES)
        for protect in self.protects:
            if isinstance(protect, ProtectionSpec):
                continue
            if isinstance(protect, bool) or not isinstance(
                    protect, (int, str)):
                raise SpecError(
                    f"protect level {protect!r} must be an int or one "
                    "of 'none'/'hot'/'all'"
                )
            if isinstance(protect, str) \
                    and protect not in ("none", "hot", "all"):
                raise SpecError(
                    f"protect level {protect!r} not in "
                    "('none', 'hot', 'all')"
                )
        if self.runs <= 0:
            raise SpecError("sweep runs must be positive")
        if self.chunk_runs is not None and self.chunk_runs <= 0:
            raise SpecError("chunk_runs must be positive")
        if self.target_margin is not None \
                and not 0.0 < self.target_margin < 1.0:
            raise SpecError("target_margin must be in (0, 1)")
        if self.scale not in ("default", "small"):
            raise SpecError(f"unknown scale {self.scale!r} "
                            "(default|small)")
        seen: set[tuple] = set()
        for cell in self._raw_cells():
            if cell in seen:
                raise SpecError(f"duplicate sweep cell {cell}")
            seen.add(cell)

    def _raw_cells(self):
        for app in self.apps:
            for scheme in self.schemes:
                for protect in self.protects:
                    yield (app, scheme, protect)

    def resolved_chunk_runs(self) -> int:
        """Runs per durable work unit (jobs-independent)."""
        if self.chunk_runs is not None:
            return self.chunk_runs
        return max(1, ceil(self.runs / DEFAULT_CHUNKS_PER_CELL))

    def cells(self) -> tuple[CellSpec, ...]:
        """The grid's cells in deterministic (spec) order."""
        return tuple(
            CellSpec(
                app=app, scheme=scheme, protect=protect,
                selection=self.selection, runs=self.runs,
                n_blocks=self.n_blocks, n_bits=self.n_bits,
                seed=self.seed, scale=self.scale,
                app_seed=self.app_seed, secded=self.secded,
                keep_runs=self.keep_runs,
                collect_records=self.collect_records,
            )
            for app, scheme, protect in self._raw_cells()
        )

    def to_dict(self) -> dict:
        """Canonical identity document (the checkpoint manifest body).

        ``target_margin`` joins the document only when set, so every
        pre-existing (exhaustive) sweep keeps its checkpoint digest.
        """
        doc = {
            "apps": list(self.apps),
            "schemes": list(self.schemes),
            "protects": [
                p.to_dict() if isinstance(p, ProtectionSpec) else p
                for p in self.protects
            ],
            "runs": self.runs,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "seed": self.seed,
            "selection": self.selection,
            "scale": self.scale,
            "app_seed": self.app_seed,
            "secded": self.secded,
            "keep_runs": self.keep_runs,
            "collect_records": self.collect_records,
            "chunk_runs": self.resolved_chunk_runs(),
        }
        if self.target_margin is not None:
            doc["target_margin"] = self.target_margin
        return doc

    @classmethod
    def from_request(cls, request: EvaluationRequest) -> "SweepSpec":
        """The one-cell sweep an :class:`EvaluationRequest` describes.

        A typed protection (spec value or explicit ``"obj=scheme"``
        string) becomes a ``("spec",)`` grid; the shorthand spellings
        keep their named-scheme cell so existing checkpoint digests
        are unaffected.  Provenance collection is campaign-only, so a
        request asking for it is rejected here — use
        :meth:`repro.core.manager.ReliabilityManager.evaluate`.
        """
        if request.collect_provenance:
            raise SpecError(
                "collect_provenance is not supported by sweep "
                "sessions; evaluate the request through "
                "ReliabilityManager.evaluate instead"
            )
        protection = request.protection
        if protection is not None:
            schemes: tuple[str, ...] = ("spec",)
            protect: int | str | ProtectionSpec = protection
        else:
            schemes = (request.scheme,)
            protect = request.protect
        return cls(
            apps=(request.app,),
            schemes=schemes,
            protects=(protect,),
            runs=request.runs,
            n_blocks=request.n_blocks,
            n_bits=request.n_bits,
            seed=request.seed,
            selection=request.selection,
            scale=request.scale,
            app_seed=request.app_seed,
            secded=request.secded,
            keep_runs=request.keep_runs,
            collect_records=request.collect_records,
            chunk_runs=request.chunk_runs,
            target_margin=request.target_margin,
        )

    @classmethod
    def from_dict(cls, data: dict) -> "SweepSpec":
        if not isinstance(data, dict):
            raise SpecError("sweep spec must be an object")
        known = {f.name for f in dataclasses.fields(cls)}
        extra = set(data) - known
        if extra:
            raise SpecError(f"sweep spec has unknown keys {sorted(extra)}")
        kwargs = dict(data)
        for name in ("apps", "schemes", "protects"):
            if name in kwargs:
                if not isinstance(kwargs[name], (list, tuple)):
                    raise SpecError(f"sweep {name} must be a list")
                kwargs[name] = tuple(kwargs[name])
        if "protects" in kwargs:
            # Dict entries are serialized ProtectionSpec images (the
            # int/str shorthands serialize as themselves).
            kwargs["protects"] = tuple(
                ProtectionSpec.from_dict(p) if isinstance(p, dict)
                else p
                for p in kwargs["protects"]
            )
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise SpecError(f"bad sweep spec: {exc}") from None

    def digest(self) -> str:
        """SHA-256 content address of the sweep's identity document."""
        return canonical_digest(self.to_dict())


# ----------------------------------------------------------------------
# Session configuration and results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SessionConfig:
    """Execution knobs of one session (never part of sweep identity)."""

    jobs: int = 1
    #: Retries per chunk beyond the first attempt.
    max_retries: int = 2
    #: Base of the exponential backoff between attempts (seconds):
    #: attempt ``k`` sleeps ``retry_backoff_s * 2**(k-1)``.
    retry_backoff_s: float = 0.25
    #: Deadline per chunk attempt (seconds); ``None`` disables.
    chunk_timeout_s: float | None = None
    #: Multiprocessing start method override (default: fork if
    #: available, else the platform default).
    start_method: str | None = None
    #: Stop (checkpointed, resumable) after this many newly executed
    #: chunks — for schedulers with wall-clock budgets and for tests.
    stop_after_chunks: int | None = None
    #: Runs swept per vectorized campaign batch (results are identical
    #: to ``batch=1`` — an execution knob, never sweep identity).
    batch: int = 1
    #: Memory clamp on one vectorized batch.
    max_batch_bytes: int = 256 * 1024 * 1024

    def validate(self) -> None:
        """Reject out-of-range knobs with :class:`SpecError`."""
        if self.jobs < 1:
            raise SpecError("session jobs must be >= 1")
        if self.batch < 1:
            raise SpecError("session batch must be >= 1")
        if self.max_batch_bytes < 1:
            raise SpecError("session max_batch_bytes must be >= 1")
        if self.max_retries < 0:
            raise SpecError("session max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise SpecError("session retry_backoff_s must be >= 0")
        if self.chunk_timeout_s is not None and self.chunk_timeout_s <= 0:
            raise SpecError("session chunk_timeout_s must be positive")
        if self.stop_after_chunks is not None \
                and self.stop_after_chunks < 1:
            raise SpecError("session stop_after_chunks must be >= 1")


@dataclass(frozen=True)
class WorkUnit:
    """One durable work unit: a span of one cell's run indices."""

    cell_index: int
    start: int
    stop: int


class _AdaptiveFrontier:
    """Per-cell early-stop bookkeeping at chunk granularity.

    Mirrors the campaign-level stopping rule of
    :mod:`repro.faults.adaptive` on the sweep's durable work units:
    tallies commit strictly in run-index order over each cell's
    contiguous chunk prefix, the rule is evaluated at every chunk
    boundary, and the first satisfied boundary freezes the cell — its
    later units become skippable.  Chunk boundaries depend only on the
    spec, so the frontier (and hence the committed sweep result) is
    identical at any ``jobs``.  With no target margin every method is
    a cheap no-op.
    """

    def __init__(self, target_margin: float | None,
                 units: Sequence[WorkUnit]):
        self.target_margin = target_margin
        self._cell_units: dict[int, list[WorkUnit]] = {}
        if target_margin is not None:
            for unit in units:
                self._cell_units.setdefault(
                    unit.cell_index, []).append(unit)
            for cell_units in self._cell_units.values():
                cell_units.sort(key=lambda u: u.start)
        #: cell -> {unit.start: (sdc, runs)} of known chunk tallies.
        self._tallies: dict[int, dict[int, tuple[int, int]]] = {}
        #: cell -> run index of the first satisfied chunk boundary.
        self._frontier: dict[int, int] = {}

    def record(self, unit: WorkUnit, result: CampaignResult) -> None:
        """Note one finished chunk and advance the cell's frontier."""
        if self.target_margin is None:
            return
        tallies = self._tallies.setdefault(unit.cell_index, {})
        tallies[unit.start] = (result.sdc_count, result.n_runs)
        self._advance(unit.cell_index)

    def _advance(self, cell_index: int) -> None:
        from repro.faults.adaptive import should_stop

        if cell_index in self._frontier:
            return
        tallies = self._tallies.get(cell_index, {})
        sdc = runs = 0
        for unit in self._cell_units.get(cell_index, ()):
            entry = tallies.get(unit.start)
            if entry is None:
                return  # gap: the prefix ends before this boundary
            sdc += entry[0]
            runs += entry[1]
            stop, _interval = should_stop(sdc, runs, self.target_margin)
            if stop:
                self._frontier[cell_index] = unit.stop
                return

    def skippable(self, unit: WorkUnit) -> bool:
        """True when the unit lies beyond its cell's stop frontier."""
        if self.target_margin is None:
            return False
        frontier = self._frontier.get(unit.cell_index)
        return frontier is not None and unit.start >= frontier

    def required(self, units: Sequence[WorkUnit]) -> list[WorkUnit]:
        """The units that the committed sweep result must contain."""
        return [u for u in units if not self.skippable(u)]


@dataclass(frozen=True)
class SweepEntry:
    """One cell's merged result inside a :class:`SweepResult`."""

    cell: CellSpec
    digest: str
    result: CampaignResult


@dataclass
class SweepResult:
    """Merged results of a completed sweep, in cell order."""

    spec: SweepSpec
    entries: list[SweepEntry] = field(default_factory=list)

    @property
    def results(self) -> list[CampaignResult]:
        return [entry.result for entry in self.entries]

    def result_for(
        self, app: str, scheme: str,
        protect: int | str | ProtectionSpec,
    ) -> CampaignResult:
        """Look up one cell's merged result; :class:`SpecError` if absent."""
        for entry in self.entries:
            cell = entry.cell
            if (cell.app, cell.scheme, cell.protect) == \
                    (app, scheme, protect):
                return entry.result
        raise SpecError(
            f"no sweep cell ({app!r}, {scheme!r}, {protect!r})"
        )

    def to_dict(self) -> dict:
        """Deterministic JSON image (excludes wall-clock metrics)."""
        return {
            "spec": self.spec.to_dict(),
            "cells": [
                {
                    "cell": entry.cell.to_dict(),
                    "digest": entry.digest,
                    "result": entry.result.to_dict(),
                }
                for entry in self.entries
            ],
        }

    def write_telemetry(self, path: str) -> int:
        """Write every cell's run records, in cell order, as JSONL.

        Byte-identical for any ``jobs`` and across interrupt/resume.
        """
        from repro.obs.records import TelemetryWriter

        with TelemetryWriter(path) as writer:
            for entry in self.entries:
                writer.write_result(entry.result)
        return writer.n_written


# ----------------------------------------------------------------------
# The session itself
# ----------------------------------------------------------------------
class Session:
    """Plans, executes, checkpoints and resumes one sweep.

    ``store`` may be a :class:`CheckpointStore`, a directory path, or
    ``None`` (no durability — useful for quick in-memory sweeps and
    for measuring checkpoint overhead).  ``sleep`` is the backoff
    clock, injectable for tests.
    """

    def __init__(
        self,
        spec: SweepSpec | EvaluationRequest,
        store: CheckpointStore | str | None = None,
        config: SessionConfig | None = None,
        metrics: MetricsRegistry | None = None,
        events: SessionLog | None = None,
        progress=None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if isinstance(spec, EvaluationRequest):
            # The unified request surface: its identity fields become
            # a one-cell sweep, its execution knobs the session
            # config (unless an explicit config overrides them), and
            # its sinks the session's when none were passed.
            if config is None:
                config = spec.session_config()
            if progress is None:
                progress = spec.progress
            if metrics is None and spec.metrics is not None:
                metrics = spec.metrics
            spec = SweepSpec.from_request(spec)
        self.spec = spec
        if isinstance(store, (str,)) or hasattr(store, "__fspath__"):
            store = CheckpointStore(store)
        self.store = store
        self.config = config or SessionConfig()
        self.config.validate()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events
        #: Live-progress sink (one
        #: :class:`~repro.obs.progress.ProgressEvent` per committed
        #: chunk, mirrored into the session log when one is attached).
        #: Observational only; ``None`` (default) costs nothing.
        self.progress = progress
        self._sleep = sleep
        #: Why the session degraded to serial execution, if it did.
        self.fallback_reason: str | None = None
        #: Early-stop bookkeeping; replaced per run() with a tracker
        #: over that run's planned units.
        self._frontier = _AdaptiveFrontier(None, ())

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self) -> list[WorkUnit]:
        """Every work unit of the sweep, in deterministic order."""
        chunk_runs = self.spec.resolved_chunk_runs()
        units: list[WorkUnit] = []
        for cell_index, cell in enumerate(self.spec.cells()):
            for start, stop in plan_chunks(cell.runs, jobs=1,
                                           chunk_size=chunk_runs):
                units.append(WorkUnit(cell_index, start, stop))
        return units

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, resume: bool = False) -> SweepResult:
        """Execute the sweep to completion (or durable interruption).

        Raises :class:`~repro.errors.SessionInterrupted` when stopped
        early (``SIGINT`` or the ``stop_after_chunks`` budget) with
        all completed chunks checkpointed, and
        :class:`~repro.errors.SessionError` when a chunk exhausts its
        retry budget.
        """
        wall_begin = time.perf_counter()
        cells = self.spec.cells()
        log.info(f"sweep: {len(cells)} cell(s), building campaigns")
        campaigns = [
            cell.build_campaign(
                batch=self.config.batch,
                max_batch_bytes=self.config.max_batch_bytes,
            )
            for cell in cells
        ]
        digests = [campaign.identity_digest() for campaign in campaigns]

        if self.store is not None:
            self.store.initialize(self.spec.to_dict(), resume=resume)

        units = self.plan()
        self.metrics.counter("session.cells").set(len(cells))
        self.metrics.counter("session.chunks.planned").set(len(units))
        self._emit("plan", detail=f"{len(cells)} cells, "
                                  f"{len(units)} chunks")

        frontier = _AdaptiveFrontier(self.spec.target_margin, units)
        self._frontier = frontier
        parts: dict[WorkUnit, CampaignResult] = {}
        pending: list[WorkUnit] = []
        for unit in units:
            loaded = self._load_checkpointed(unit, cells, digests)
            if loaded is not None:
                parts[unit] = loaded
                frontier.record(unit, loaded)
            else:
                pending.append(unit)
        if len(parts):
            log.info(f"sweep: resumed {len(parts)} chunk(s) from "
                     f"{self.store.root}")

        executed = 0
        budget = self.config.stop_after_chunks
        total_runs = sum(u.stop - u.start for u in units)
        done_runs = sum(r.n_runs for r in parts.values())

        def on_done(unit: WorkUnit, result: CampaignResult,
                    source: str) -> bool:
            """Persist one finished chunk; True to keep going."""
            nonlocal executed, done_runs
            frontier.record(unit, result)
            if frontier.skippable(unit):
                # Speculative chunk past the cell's stop boundary
                # (finished in flight while the frontier settled):
                # discard so the committed result is jobs-invariant.
                self.metrics.inc("session.chunks.skipped")
                return budget is None or executed < budget
            parts[unit] = result
            self._persist(unit, digests[unit.cell_index], result)
            self._emit("chunk", cell=digests[unit.cell_index],
                       start=unit.start, stop=unit.stop, source=source)
            self.metrics.inc("session.chunks.executed")
            executed += 1
            done_runs += result.n_runs
            if self.progress is not None:
                self._observe_progress(
                    cells[unit.cell_index].key,
                    digests[unit.cell_index], unit,
                    done_runs, total_runs, parts, wall_begin,
                )
            return budget is None or executed < budget

        try:
            if pending:
                self._execute(pending, campaigns, digests, on_done)
        except KeyboardInterrupt:
            self._emit("interrupted",
                       detail=f"SIGINT after {executed} chunk(s)")
            raise SessionInterrupted(len(parts), len(units),
                                     reason="interrupted") from None
        required = frontier.required(units)
        done = sum(1 for unit in required if unit in parts)
        if done < len(required):
            self._emit("interrupted",
                       detail=f"chunk budget ({budget}) reached")
            raise SessionInterrupted(done, len(required),
                                     reason="stopped (chunk budget)")
        skipped = len(units) - len(required)
        if skipped:
            self._emit("early_stop",
                       detail=f"{skipped} chunk(s) under target margin "
                              f"{self.spec.target_margin:g}")

        result = self._merge(cells, digests, parts, required)
        self.metrics.observe(
            "session.wall_ms", (time.perf_counter() - wall_begin) * 1e3
        )
        self._emit("finish", detail=f"{len(units)} chunks")
        return result

    # -- resume ---------------------------------------------------------
    def _load_checkpointed(
        self,
        unit: WorkUnit,
        cells: Sequence[CellSpec],
        digests: Sequence[str],
    ) -> CampaignResult | None:
        if self.store is None:
            return None
        digest = digests[unit.cell_index]
        payload = self.store.load_chunk(digest, unit.start, unit.stop)
        if payload is None:
            return None
        path = self.store.chunk_path(digest, unit.start, unit.stop)
        try:
            result = CampaignResult.from_dict(payload)
        except ReproError as exc:
            raise wrap_payload_error(path, exc) from None
        expected = cells[unit.cell_index]
        if result.app_name != expected.app \
                or result.n_runs != unit.stop - unit.start:
            raise CheckpointError(
                f"{path}: chunk payload is for {result.app_name!r} "
                f"with {result.n_runs} run(s), expected "
                f"{expected.app!r} with {unit.stop - unit.start}"
            )
        self.metrics.inc("session.chunks.resumed")
        self._emit("chunk", cell=digest, start=unit.start,
                   stop=unit.stop, source="checkpoint")
        return result

    def _persist(
        self, unit: WorkUnit, digest: str, result: CampaignResult
    ) -> None:
        if self.store is not None:
            self.store.save_chunk(digest, unit.start, unit.stop,
                                  result.to_dict())

    # -- merge ----------------------------------------------------------
    def _merge(
        self,
        cells: Sequence[CellSpec],
        digests: Sequence[str],
        parts: dict[WorkUnit, CampaignResult],
        units: Sequence[WorkUnit],
    ) -> SweepResult:
        sweep = SweepResult(spec=self.spec)
        for cell_index, cell in enumerate(cells):
            cell_units = sorted(
                (u for u in units if u.cell_index == cell_index),
                key=lambda u: u.start,
            )
            merged = CampaignResult.merge(
                [parts[u] for u in cell_units]
            )
            # Early-stopped cells legitimately commit fewer runs than
            # planned; the committed count must still match the
            # required units exactly.
            expected = sum(u.stop - u.start for u in cell_units)
            if merged.n_runs != expected:
                raise SessionError(
                    f"cell {cell.key}: merged {merged.n_runs} run(s), "
                    f"planned {expected}"
                )
            sweep.entries.append(SweepEntry(
                cell=cell, digest=digests[cell_index], result=merged,
            ))
        return sweep

    # -- parallel/serial execution --------------------------------------
    def _execute(self, pending, campaigns, digests, on_done) -> None:
        if self.config.jobs > 1:
            try:
                self._execute_pool(pending, campaigns, digests, on_done)
                return
            except _FallBackToSerial as exc:
                self.fallback_reason = str(exc)
                self.metrics.inc("session.fallback_serial")
                self._emit("fallback", detail=str(exc))
                log.warning(f"sweep: degrading to serial execution "
                            f"({exc})")
                pending = [u for u in pending
                           if u not in exc.completed]
        self._execute_serial(pending, campaigns, on_done)

    def _execute_serial(self, pending, campaigns, on_done) -> None:
        for unit in pending:
            if self._frontier.skippable(unit):
                self.metrics.inc("session.chunks.skipped")
                continue
            result = self._attempt_serial(unit, campaigns)
            if not on_done(unit, result, "serial"):
                return

    def _attempt_serial(self, unit, campaigns) -> CampaignResult:
        campaign = campaigns[unit.cell_index]
        attempt = 0
        while True:
            begin = time.perf_counter()
            try:
                result = campaign.run_span(unit.start, unit.stop)
                self.metrics.observe(
                    "session.chunk_ms",
                    (time.perf_counter() - begin) * 1e3,
                )
                return result
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                attempt += 1
                self._handle_failure(unit, attempt, exc)

    def _handle_failure(self, unit, attempt: int, exc) -> None:
        """Count one failed attempt; backoff or give up."""
        if attempt > self.config.max_retries:
            raise SessionError(
                f"chunk [{unit.start}, {unit.stop}) of cell "
                f"#{unit.cell_index} failed after {attempt} "
                f"attempt(s): {exc}"
            ) from exc
        self.metrics.inc("session.retries")
        self._emit("retry", start=unit.start, stop=unit.stop,
                   attempt=attempt, detail=str(exc)[:200])
        backoff = self.config.retry_backoff_s * (2 ** (attempt - 1))
        if backoff > 0:
            self._sleep(backoff)

    def _execute_pool(self, pending, campaigns, digests, on_done) -> None:
        """Fan pending units out over a process pool with retries."""
        import multiprocessing as mp

        if self.config.start_method is not None:
            context = mp.get_context(self.config.start_method)
        else:
            methods = mp.get_all_start_methods()
            context = mp.get_context(
                "fork" if "fork" in methods else None)

        specs = self._worker_specs(campaigns, digests)
        completed: set[WorkUnit] = set()
        queue = deque(pending)
        attempts: dict[WorkUnit, int] = {}
        restarts = 0
        pool = self._make_pool(context)
        if pool is None:
            raise _FallBackToSerial("could not create worker pool",
                                    completed)
        inflight: dict = {}
        abandoned: set = set()
        try:
            while queue or inflight:
                while queue and len(inflight) < self.config.jobs:
                    unit = queue.popleft()
                    if self._frontier.skippable(unit):
                        self.metrics.inc("session.chunks.skipped")
                        continue
                    try:
                        fut = pool.submit(
                            _run_session_span,
                            specs[unit.cell_index],
                            (unit.start, unit.stop),
                        )
                    except RuntimeError as exc:
                        raise _FallBackToSerial(
                            f"worker pool unusable ({exc})", completed
                        ) from exc
                    inflight[fut] = (unit, time.monotonic())
                done, _not_done = wait(
                    set(inflight), timeout=self._tick(),
                    return_when=FIRST_COMPLETED,
                )
                now = time.monotonic()
                for fut in done:
                    unit, _begin = inflight.pop(fut)
                    if fut in abandoned:
                        abandoned.discard(fut)
                        continue
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        restarts += 1
                        # Every in-flight unit died with the pool.
                        dead = [unit] + [
                            u for f, (u, _) in inflight.items()
                            if f not in abandoned
                        ]
                        inflight.clear()
                        abandoned.clear()
                        pool.shutdown(wait=False, cancel_futures=True)
                        for u in dead:
                            attempts[u] = attempts.get(u, 0) + 1
                            self._handle_failure(
                                u, attempts[u],
                                RuntimeError("worker pool died"),
                            )
                            queue.appendleft(u)
                        if restarts > 2:
                            raise _FallBackToSerial(
                                "worker pool died repeatedly",
                                completed,
                            ) from None
                        self.metrics.inc("session.pool_restarts")
                        pool = self._make_pool(context)
                        if pool is None:
                            raise _FallBackToSerial(
                                "could not restart worker pool",
                                completed,
                            ) from None
                        break
                    except Exception as exc:
                        attempts[unit] = attempts.get(unit, 0) + 1
                        self._handle_failure(unit, attempts[unit], exc)
                        queue.append(unit)
                    else:
                        self.metrics.observe(
                            "session.chunk_ms",
                            (now - _begin) * 1e3,
                        )
                        completed.add(unit)
                        if not on_done(unit, result, "run"):
                            return
                else:
                    self._reap_timeouts(inflight, abandoned, queue,
                                        attempts, now)
        finally:
            pool.shutdown(wait=not abandoned,
                          cancel_futures=True)

    def _reap_timeouts(self, inflight, abandoned, queue, attempts,
                       now: float) -> None:
        """Expire attempts that outran their per-chunk deadline."""
        deadline = self.config.chunk_timeout_s
        if deadline is None:
            return
        for fut, (unit, begin) in list(inflight.items()):
            if fut in abandoned or now - begin < deadline:
                continue
            self.metrics.inc("session.timeouts")
            self._emit("timeout", start=unit.start, stop=unit.stop,
                       attempt=attempts.get(unit, 0) + 1)
            attempts[unit] = attempts.get(unit, 0) + 1
            self._handle_failure(
                unit, attempts[unit],
                TimeoutError(
                    f"chunk exceeded {deadline:g}s deadline"),
            )
            if fut.cancel():
                inflight.pop(fut, None)
            else:
                # Already running: let it finish into the void and
                # redo the chunk elsewhere (results are a pure
                # function of (seed, run_index), so whichever attempt
                # lands first is correct — the other is discarded).
                abandoned.add(fut)
            queue.append(unit)

    def _tick(self) -> float | None:
        if self.config.chunk_timeout_s is None:
            return None
        return min(0.05, self.config.chunk_timeout_s / 4)

    def _worker_specs(self, campaigns, digests) -> list[CampaignSpec]:
        return [
            dataclasses.replace(
                CampaignSpec.from_campaign(campaign), token=digest
            )
            for campaign, digest in zip(campaigns, digests)
        ]

    def _make_pool(self, context) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(
                max_workers=self.config.jobs, mp_context=context
            )
        except (OSError, ValueError, RuntimeError,
                NotImplementedError):
            return None

    # -- plumbing -------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        if self.events is not None:
            self.events.emit(kind, **fields)

    def _observe_progress(
        self, cell_key: str, digest: str, unit: WorkUnit,
        done: int, total: int,
        parts: dict[WorkUnit, CampaignResult], wall_begin: float,
    ) -> None:
        """Emit one sweep progress event and mirror it to the log.

        The margin is the Wilson CI width over the current cell's
        committed runs so far — the "CI width so far" an operator
        watches an adaptive sweep converge on.
        """
        from repro.obs.progress import ProgressEvent
        from repro.utils.stats import confidence_interval

        sdc = runs = 0
        for other, result in parts.items():
            if other.cell_index == unit.cell_index:
                sdc += result.sdc_count
                runs += result.n_runs
        margin = (confidence_interval(sdc, runs).margin
                  if runs else None)
        event = ProgressEvent(
            phase="sweep", done=done, total=total,
            elapsed_s=time.perf_counter() - wall_begin,
            cell=cell_key, margin=margin,
        )
        self.progress(event)
        self._emit("progress", cell=digest, start=unit.start,
                   stop=unit.stop, detail=event.to_detail())


class _FallBackToSerial(Exception):
    """Internal: the pool path gave up; serial picks up the rest."""

    def __init__(self, reason: str, completed: set):
        super().__init__(reason)
        self.completed = completed


def run_sweep(
    spec: SweepSpec,
    store: CheckpointStore | str | None = None,
    resume: bool = False,
    jobs: int = 1,
    progress=None,
    checkpoint_dir=_compat.UNSET,
    **config_kwargs,
) -> SweepResult:
    """One-call convenience wrapper around :class:`Session`.

    ``store`` names the durability root (a
    :class:`~repro.runtime.checkpoint.CheckpointStore` or a directory
    path), matching the :class:`Session` constructor; the old
    ``checkpoint_dir`` spelling keeps working with a one-time
    :class:`DeprecationWarning`.
    """
    if checkpoint_dir is not _compat.UNSET:
        store = _compat.resolve_renamed(
            "run_sweep", "checkpoint_dir", "store",
            checkpoint_dir, _compat.UNSET if store is None else store,
        )
    session = Session(
        spec,
        store=store,
        config=SessionConfig(jobs=jobs, **config_kwargs),
        progress=progress,
    )
    return session.run(resume=resume)
