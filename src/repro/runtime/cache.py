"""Process-level cache of per-application derived artifacts.

A fault-injection sweep builds many :class:`~repro.faults.campaign.
Campaign` objects for the same application (one per scheme x
protection-level x fault-grid cell), and a parallel campaign rebuilds
the application once inside every worker process.  The expensive parts
— pristine device memory, the fault-free golden output, the coalesced
memory trace — depend only on the application's identity, so they are
computed once per process and shared.

The cache key is structural: application class plus every scalar
constructor-derived attribute (seed, input sizes, ...).  Two
applications constructed with identical parameters are deterministic
twins, so sharing their artifacts is safe; everything handed out is
treated as frozen (campaigns clone the pristine memory per run, never
write it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.arch.address_space import DeviceMemory
    from repro.kernels.base import GpuApplication
    from repro.kernels.trace import AppTrace


def app_cache_key(app: "GpuApplication") -> tuple:
    """Structural identity of an application instance.

    Class identity plus every scalar attribute; array attributes are
    derived deterministically from the scalars (the application seed),
    so they never need to participate.
    """
    scalars = tuple(sorted(
        (name, value)
        for name, value in vars(app).items()
        if isinstance(value, (bool, int, float, str))
    ))
    return (type(app).__module__, type(app).__qualname__, scalars)


class AppContext:
    """Lazily computed, process-shared artifacts of one application.

    Everything here must be treated as immutable by consumers: the
    pristine memory is cloned per run, the golden output is only
    compared against, and the trace is replayed read-only.
    """

    def __init__(self, app: "GpuApplication"):
        self.app = app
        self._pristine: "DeviceMemory | None" = None
        self._golden: "np.ndarray | None" = None
        self._trace: "AppTrace | None" = None

    @property
    def pristine(self) -> "DeviceMemory":
        """Pristine device memory with the app's allocations (frozen)."""
        if self._pristine is None:
            self._pristine = self.app.fresh_memory()
        return self._pristine

    @property
    def golden(self) -> "np.ndarray":
        """The fault-free baseline output."""
        if self._golden is None:
            self._golden = self.app.golden_output()
        return self._golden

    @property
    def trace(self) -> "AppTrace":
        """The validated warp-level memory trace."""
        if self._trace is None:
            trace = self.app.build_trace(self.pristine)
            trace.validate()
            self._trace = trace
        return self._trace


_CONTEXTS: dict[tuple, AppContext] = {}
_HITS = 0
_MISSES = 0


def app_context(app: "GpuApplication") -> AppContext:
    """The process-wide :class:`AppContext` for this application."""
    global _HITS, _MISSES
    key = app_cache_key(app)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        _MISSES += 1
        ctx = AppContext(app)
        _CONTEXTS[key] = ctx
    else:
        _HITS += 1
    return ctx


def clear_app_cache() -> None:
    """Drop every cached context and reset the hit/miss tallies."""
    global _HITS, _MISSES
    _CONTEXTS.clear()
    _HITS = 0
    _MISSES = 0


def cache_info() -> dict[str, int]:
    """Introspection: resident contexts plus lookup hit/miss tallies."""
    return {"entries": len(_CONTEXTS), "hits": _HITS, "misses": _MISSES}
