"""Parallel campaign execution: shard run indices over worker processes.

A campaign's runs are embarrassingly parallel — every run is derived
solely from ``(campaign seed, run index)`` — so the executor shards
the index space into contiguous chunks, fans the chunks out over a
:class:`concurrent.futures.ProcessPoolExecutor`, and deterministically
reassembles the per-chunk tallies regardless of completion order.

Two transport paths feed the workers:

* **fork** (Linux/macOS default): workers inherit the fully prepared
  campaign object — pristine memory, golden output, replica image and
  all — through the forked address space, so nothing heavyweight is
  ever pickled.  Tasks are just ``(start, stop)`` spans.
* **spawn** (fallback): a picklable :class:`CampaignSpec` travels to
  each worker, which rebuilds the campaign once and caches it for the
  remaining chunks; the process-level app cache then makes pristine
  memory and golden output a once-per-worker cost.

If no worker pool can be created at all (restricted platforms), the
executor silently degrades to the serial path and records why in
``fallback_reason``.
"""

from __future__ import annotations

import copy
import math
import multiprocessing as mp
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from itertools import count
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.campaign import Campaign, CampaignResult

#: Target chunks per worker: small enough to amortize dispatch, large
#: enough to balance load when chunk durations vary.
_CHUNKS_PER_WORKER = 4
#: Worker-side cap on cached rebuilt campaigns (spawn path).
_MAX_WORKER_CAMPAIGNS = 8


def plan_chunks(
    runs: int, jobs: int, chunk_size: int | None = None,
    align: int = 1,
) -> list[tuple[int, int]]:
    """Split ``range(runs)`` into contiguous ``(start, stop)`` spans.

    ``align`` rounds the chunk size up to a multiple of the campaign's
    batch size so workers sweep whole batches (only the final chunk may
    be ragged).
    """
    if runs <= 0:
        return []
    if align < 1:
        raise ConfigError("align must be positive")
    if chunk_size is None:
        chunk_size = max(1, math.ceil(runs / (max(1, jobs)
                                              * _CHUNKS_PER_WORKER)))
    if chunk_size < 1:
        raise ConfigError("chunk_size must be positive")
    if align > 1:
        chunk_size = math.ceil(chunk_size / align) * align
    return [
        (start, min(start + chunk_size, runs))
        for start in range(0, runs, chunk_size)
    ]


@dataclass(frozen=True)
class CampaignSpec:
    """Everything a worker needs to rebuild a campaign, picklable.

    ``token`` identifies the originating campaign so workers can reuse
    a rebuilt campaign across the chunks they receive.
    """

    token: str
    app: Any
    selection: Any
    scheme_name: str
    protected_names: tuple[str, ...]
    config: Any
    keep_runs: bool
    clone_mode: str
    collect_records: bool = False
    collect_provenance: bool = False
    batch: int = 1
    max_batch_bytes: int = 256 * 1024 * 1024
    #: Full typed protection (mixed per-object configurations only;
    #: ``None`` means ``scheme_name``/``protected_names`` say it all).
    protection: Any = None

    @classmethod
    def from_campaign(cls, campaign: "Campaign") -> "CampaignSpec":
        # Ship the app without its cached golden output: each worker
        # recomputes (or fork-inherits) it via the app-context cache,
        # keeping task pickles small.
        app = copy.copy(campaign.app)
        app._golden = None
        return cls(
            token=f"{id(campaign)}-{next(_TOKENS)}",
            app=app,
            selection=campaign.selection,
            scheme_name=campaign.scheme_name,
            protected_names=campaign.protected_names,
            config=campaign.config,
            keep_runs=campaign.keep_runs,
            clone_mode=campaign.clone_mode,
            collect_records=campaign.collect_records,
            collect_provenance=campaign.collect_provenance,
            batch=campaign.batch,
            max_batch_bytes=campaign.max_batch_bytes,
            protection=(
                campaign.protection if campaign.protection.is_mixed
                else None
            ),
        )


_TOKENS = count(1)

#: Campaign fork-inherited by workers (set in the parent immediately
#: before the pool's workers are forked, cleared afterwards).
_ACTIVE_CAMPAIGN: "Campaign | None" = None

#: Spawn-path worker cache: campaigns rebuilt from specs.
_WORKER_CAMPAIGNS: dict[str, "Campaign"] = {}


def _run_span_inherited(span: tuple[int, int]) -> "CampaignResult":
    """Worker entry (fork path): run a span of the inherited campaign."""
    start, stop = span
    return _ACTIVE_CAMPAIGN.run_span(start, stop)


def _run_span_spec(
    spec: CampaignSpec, span: tuple[int, int]
) -> "CampaignResult":
    """Worker entry (spawn path): rebuild-or-reuse, then run a span."""
    campaign = _WORKER_CAMPAIGNS.get(spec.token)
    if campaign is None:
        from repro.faults.campaign import Campaign

        if len(_WORKER_CAMPAIGNS) >= _MAX_WORKER_CAMPAIGNS:
            _WORKER_CAMPAIGNS.clear()
        if spec.protection is not None:
            how = {"protection": spec.protection}
        else:
            how = {"scheme": spec.scheme_name,
                   "protect": spec.protected_names}
        campaign = Campaign(
            spec.app,
            spec.selection,
            config=spec.config,
            **how,
            keep_runs=spec.keep_runs,
            clone_mode=spec.clone_mode,
            collect_records=spec.collect_records,
            collect_provenance=spec.collect_provenance,
            batch=spec.batch,
            max_batch_bytes=spec.max_batch_bytes,
        )
        _WORKER_CAMPAIGNS[spec.token] = campaign
    start, stop = span
    return campaign.run_span(start, stop)


class _PoolUnavailable(Exception):
    """Raised internally when no worker pool can be stood up."""


class SpanPool:
    """A worker pool wired to one campaign, reusable across waves.

    Owns the whole parallel-transport dance — multiprocessing context
    choice, pool creation (translated to :class:`_PoolUnavailable` on
    restricted platforms), fork-inheritance of the prepared campaign
    vs. spawn-path :class:`CampaignSpec` shipping — behind a context
    manager whose :meth:`run` executes one list of spans and returns
    ``(start, result)`` pairs.  The one-shot
    :class:`CampaignExecutor` runs all its chunks in a single
    :meth:`run` call; the adaptive driver
    (:mod:`repro.faults.adaptive`) calls :meth:`run` once per
    speculation wave, reusing the warm workers between stop-rule
    checks.
    """

    def __init__(
        self,
        campaign: "Campaign",
        jobs: int,
        start_method: str | None = None,
    ):
        if jobs < 1:
            raise ConfigError("jobs must be >= 1")
        self.campaign = campaign
        self.jobs = jobs
        self.start_method = start_method
        self._pool: ProcessPoolExecutor | None = None
        self._fork = False
        self._spec: CampaignSpec | None = None

    def __enter__(self) -> "SpanPool":
        global _ACTIVE_CAMPAIGN
        context = self._mp_context()
        self._fork = context.get_start_method() == "fork"
        try:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        except (OSError, ValueError, RuntimeError,
                NotImplementedError) as exc:
            raise _PoolUnavailable("could not create worker pool") from exc
        if self._fork:
            # Workers fork lazily at first submit and inherit this;
            # it stays set for the pool's lifetime so late-forking
            # workers (e.g. after a wave grows the pool) see it too.
            _ACTIVE_CAMPAIGN = self.campaign
        else:
            self._spec = CampaignSpec.from_campaign(self.campaign)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE_CAMPAIGN
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
        finally:
            self._pool = None
            if self._fork:
                _ACTIVE_CAMPAIGN = None

    def run(
        self, spans: list[tuple[int, int]], on_result=None
    ) -> list[tuple[int, "CampaignResult"]]:
        """Execute ``spans`` on the pool; ``(start, result)`` pairs.

        Results return in submission order (callers sort by start
        index before merging anyway); a dead pool surfaces as
        :class:`_PoolUnavailable` so callers can fall back to serial.
        ``on_result`` (if given) observes each ``(start, result)`` pair
        as it is collected — the live-progress hook; it must not raise.
        """
        if self._pool is None:
            raise _PoolUnavailable("pool is not open")
        futures = []
        for span in spans:
            if self._fork:
                fut = self._pool.submit(_run_span_inherited, span)
            else:
                fut = self._pool.submit(_run_span_spec, self._spec, span)
            futures.append((span[0], fut))
        parts: list[tuple[int, "CampaignResult"]] = []
        try:
            for start, fut in futures:
                result = fut.result()
                parts.append((start, result))
                if on_result is not None:
                    on_result(start, result)
        except BrokenProcessPool as exc:
            raise _PoolUnavailable(
                "worker pool died before completing"
            ) from exc
        return parts

    def _mp_context(self):
        if self.start_method is not None:
            return mp.get_context(self.start_method)
        methods = mp.get_all_start_methods()
        return mp.get_context("fork" if "fork" in methods else None)


class CampaignExecutor:
    """Runs one campaign's index space across worker processes.

    Reassembly is deterministic: chunk results are ordered by their
    start index before merging, so ``counts`` and (with
    ``keep_runs=True``) the ``runs`` list are bit-identical to a
    serial execution no matter how the workers interleave.
    """

    def __init__(
        self,
        campaign: "Campaign",
        jobs: int | None = None,
        chunk_size: int | None = None,
        start_method: str | None = None,
    ):
        self.campaign = campaign
        self.jobs = campaign.jobs if jobs is None else int(jobs)
        if self.jobs < 1:
            raise ConfigError("jobs must be >= 1")
        self.chunk_size = chunk_size
        self.start_method = start_method
        #: Worker processes actually used by the last :meth:`run`.
        self.used_jobs = 1
        #: Why the last :meth:`run` degraded to serial, if it did.
        self.fallback_reason: str | None = None

    def run(self) -> "CampaignResult":
        """Execute every run and aggregate, fanning out when jobs > 1.

        Chunk metric snapshots fold into the campaign's registry along
        with the executor's own observability: chunk count, wall time,
        worker utilization, and the parent's app-cache hit/miss tally.
        """
        import time

        from repro.faults.campaign import CampaignResult

        runs = self.campaign.config.runs
        jobs = min(self.jobs, runs)
        progress = getattr(self.campaign, "progress", None)
        wall_begin = time.perf_counter()
        if jobs <= 1:
            self.used_jobs = 1
            if progress is None:
                result = self.campaign.run_span(0, runs)
            else:
                result = self._run_serial_chunked(
                    runs, progress, wall_begin
                )
        else:
            spans = plan_chunks(runs, jobs, self.chunk_size,
                                align=self.campaign.effective_batch)
            try:
                parts = self._run_parallel(
                    spans, jobs,
                    self._progress_hook(runs, progress, wall_begin),
                )
            except _PoolUnavailable as exc:
                self.used_jobs = 1
                self.fallback_reason = str(exc.__cause__ or exc)
                if progress is None:
                    result = self.campaign.run_span(0, runs)
                else:
                    result = self._run_serial_chunked(
                        runs, progress, wall_begin
                    )
            else:
                self.used_jobs = jobs
                parts.sort(key=lambda item: item[0])
                result = CampaignResult.merge(
                    [part for _start, part in parts]
                )
        self._publish_metrics(
            result, (time.perf_counter() - wall_begin) * 1e3
        )
        return result

    def _run_serial_chunked(
        self, runs: int, progress, wall_begin: float
    ) -> "CampaignResult":
        """Serial execution with chunk-boundary progress events.

        Splits the index space exactly like the parallel path would for
        one worker; the merged result is byte-identical to a single
        ``run_span(0, runs)`` by the engine's span-merge invariant.
        """
        import time

        from repro.faults.campaign import CampaignResult

        from repro.obs.progress import ProgressEvent

        spans = plan_chunks(runs, 1, self.chunk_size,
                            align=self.campaign.effective_batch)
        parts = []
        done = 0
        for start, stop in spans:
            parts.append(self.campaign.run_span(start, stop))
            done += stop - start
            progress(ProgressEvent(
                phase="campaign", done=done, total=runs,
                elapsed_s=time.perf_counter() - wall_begin,
            ))
        return CampaignResult.merge(parts)

    def _progress_hook(self, runs: int, progress, wall_begin: float):
        """Build the pool's ``on_result`` observer (None when off)."""
        if progress is None:
            return None
        import time

        from repro.obs.progress import ProgressEvent

        done = 0

        def on_result(start: int, result) -> None:
            nonlocal done
            done += result.n_runs
            progress(ProgressEvent(
                phase="campaign", done=done, total=runs,
                elapsed_s=time.perf_counter() - wall_begin,
            ))

        return on_result

    def _publish_metrics(
        self, result: "CampaignResult", wall_ms: float
    ) -> None:
        """Fold chunk metrics plus executor stats into the campaign."""
        from repro.runtime.cache import cache_info

        metrics = self.campaign.metrics
        metrics.merge_snapshot(result.metrics_snapshot)
        metrics.inc("executor.chunks",
                     result.metrics_snapshot["histograms"]
                     .get("campaign.span_ms", {}).get("count", 0)
                     if result.metrics_snapshot else 0)
        metrics.counter("executor.used_jobs").set(self.used_jobs)
        metrics.observe("executor.wall_ms", wall_ms)
        busy_ms = 0.0
        if result.metrics_snapshot:
            busy_ms = result.metrics_snapshot["histograms"] \
                .get("campaign.span_ms", {}).get("total", 0.0)
        if wall_ms > 0 and self.used_jobs > 0:
            metrics.observe(
                "executor.worker_utilization_pct",
                100.0 * busy_ms / (wall_ms * self.used_jobs),
            )
        info = cache_info()
        metrics.counter("runtime.app_cache.entries").set(info["entries"])
        metrics.counter("runtime.app_cache.hits").set(info["hits"])
        metrics.counter("runtime.app_cache.misses").set(info["misses"])

    def _run_parallel(
        self, spans: list[tuple[int, int]], jobs: int,
        on_result=None,
    ) -> list[tuple[int, "CampaignResult"]]:
        with SpanPool(self.campaign, jobs, self.start_method) as pool:
            return pool.run(spans, on_result)
