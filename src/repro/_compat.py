"""Backward-compatibility shims for renamed keyword arguments.

The API consistency pass settled on one parameter vocabulary —
``jobs``, ``runs``, ``seed``, ``scheme``, ``protect``, ``batch`` —
across :class:`~repro.faults.campaign.Campaign`,
:class:`~repro.runtime.executor.CampaignExecutor`,
:class:`~repro.core.manager.ReliabilityManager` and the CLI.  Old
spellings keep working through :func:`resolve_renamed`, which emits a
:class:`DeprecationWarning` exactly once per (function, keyword) pair
per process and rejects calls that pass both spellings at once.

The deprecation policy (see docs/API.md) is: deprecated spellings are
kept for at least one minor release after the warning first ships and
are removed only on a major version bump.
"""

from __future__ import annotations

import warnings

from repro.errors import SpecError

#: Sentinel distinguishing "not passed" from every real value.
UNSET = object()

#: (function, old keyword) pairs that already warned this process.
_WARNED: set[tuple[str, str]] = set()


def warn_once(func: str, old: str, new: str) -> None:
    """Emit the deprecation warning for ``old`` once per process."""
    key = (func, old)
    if key in _WARNED:
        return
    _WARNED.add(key)
    warnings.warn(
        f"{func}: keyword {old!r} is deprecated, use {new!r} instead "
        "(the old spelling will be removed in the next major release)",
        DeprecationWarning,
        stacklevel=4,
    )


def resolve_renamed(func: str, old: str, new: str, old_value, new_value):
    """Pick between a deprecated keyword and its canonical rename.

    ``old_value``/``new_value`` are the values received for the two
    spellings, either of which may be :data:`UNSET`.  Passing both is
    a :class:`~repro.errors.SpecError`; passing the old one warns once
    and wins over the canonical default.
    """
    if old_value is UNSET:
        return new_value
    if new_value is not UNSET:
        raise SpecError(
            f"{func}: got both {old!r} (deprecated) and {new!r}; "
            f"pass only {new!r}"
        )
    warn_once(func, old, new)
    return old_value


def reset_warnings() -> None:
    """Forget which deprecations already warned (test isolation)."""
    _WARNED.clear()
