"""Pareto dominance over protection-configuration evaluations.

The design-space explorer scores every configuration on three
objectives, all minimized:

* ``sdc_rate`` — silent-data-corruption rate from the fault-injection
  campaign,
* ``overhead`` — simulated performance overhead (slowdown minus one
  versus the unprotected baseline),
* ``replica_bytes`` — replica memory footprint.

This module provides the dominance relation, NSGA-II-style
non-dominated sorting with crowding distances (the evolutionary
strategy's ranking), first-front extraction, and the budget solver
("best SDC reduction under <= 2% overhead").  All orderings break ties
on the configuration digest, so every result is deterministic for a
given evaluation set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SpecError
from repro.search.space import DesignPoint

#: Objective names, in the order :attr:`Evaluation.objectives` uses.
OBJECTIVES = ("sdc_rate", "overhead", "replica_bytes")


@dataclass(frozen=True)
class Evaluation:
    """One design point with its measured objective values."""

    point: DesignPoint
    sdc_count: int
    runs: int
    #: Simulated slowdown minus one versus the unprotected baseline.
    overhead: float
    #: Replica memory footprint in bytes (pure address arithmetic).
    replica_bytes: int

    @property
    def sdc_rate(self) -> float:
        """SDC fraction of the campaign's committed runs."""
        return self.sdc_count / self.runs if self.runs else 0.0

    @property
    def digest(self) -> str:
        """The underlying configuration's canonical digest."""
        return self.point.digest

    @property
    def objectives(self) -> tuple[float, float, float]:
        """The minimized objective vector."""
        return (self.sdc_rate, self.overhead, float(self.replica_bytes))

    def to_dict(self) -> dict:
        """Canonical JSON-ready image (used by the search trail)."""
        return {
            "protection": self.point.spec.to_dict(),
            "digest": self.digest,
            "sdc": self.sdc_count,
            "runs": self.runs,
            "sdc_rate": self.sdc_rate,
            "overhead": self.overhead,
            "replica_bytes": self.replica_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Evaluation":
        """Rebuild an evaluation from its :meth:`to_dict` image."""
        from repro.core.protection import ProtectionSpec

        try:
            return cls(
                point=DesignPoint(
                    ProtectionSpec.from_dict(data["protection"])),
                sdc_count=data["sdc"],
                runs=data["runs"],
                overhead=data["overhead"],
                replica_bytes=data["replica_bytes"],
            )
        except (KeyError, TypeError):
            raise SpecError(
                f"not an evaluation image: {data!r}"
            ) from None


def dominates(a: Evaluation, b: Evaluation) -> bool:
    """Whether ``a`` Pareto-dominates ``b`` (all objectives minimized):
    no worse everywhere and strictly better somewhere."""
    ao, bo = a.objectives, b.objectives
    return all(x <= y for x, y in zip(ao, bo)) and ao != bo


def _canonical(evaluations) -> list[Evaluation]:
    """Dedup by digest and order canonically (objectives, digest)."""
    by_digest: dict[str, Evaluation] = {}
    for ev in evaluations:
        by_digest.setdefault(ev.digest, ev)
    return sorted(
        by_digest.values(), key=lambda e: (*e.objectives, e.digest)
    )


def non_dominated_sort(evaluations) -> list[list[Evaluation]]:
    """NSGA-II fast non-dominated sorting.

    Returns the fronts best-first: front 0 is the Pareto front, front
    1 the points dominated only by front 0, and so on.  Input is
    deduplicated by digest; each front keeps the canonical
    (objectives, digest) order.
    """
    pool = _canonical(evaluations)
    dominated_by: list[int] = [0] * len(pool)
    dominating: list[list[int]] = [[] for _ in pool]
    for i, a in enumerate(pool):
        for j, b in enumerate(pool):
            if i == j:
                continue
            if dominates(a, b):
                dominating[i].append(j)
            elif dominates(b, a):
                dominated_by[i] += 1
    fronts: list[list[Evaluation]] = []
    current = [i for i in range(len(pool)) if dominated_by[i] == 0]
    while current:
        fronts.append([pool[i] for i in current])
        following: list[int] = []
        for i in current:
            for j in dominating[i]:
                dominated_by[j] -= 1
                if dominated_by[j] == 0:
                    following.append(j)
        current = sorted(following)
    return fronts


def crowding_distance(front) -> list[float]:
    """NSGA-II crowding distances, aligned with ``front``'s order.

    Boundary points of every objective get infinite distance so
    selection preserves the front's extremes.
    """
    n = len(front)
    if n == 0:
        return []
    distances = [0.0] * n
    for axis in range(len(OBJECTIVES)):
        order = sorted(
            range(n),
            key=lambda i: (front[i].objectives[axis], front[i].digest),
        )
        low = front[order[0]].objectives[axis]
        high = front[order[-1]].objectives[axis]
        distances[order[0]] = distances[order[-1]] = float("inf")
        span = high - low
        if span <= 0:
            continue
        for rank in range(1, n - 1):
            gap = (front[order[rank + 1]].objectives[axis]
                   - front[order[rank - 1]].objectives[axis])
            distances[order[rank]] += gap / span
    return distances


def pareto_front(evaluations) -> list[Evaluation]:
    """The non-dominated evaluations, canonically ordered.

    Deduplicates by configuration digest and sorts by
    ``(sdc_rate, overhead, replica_bytes, digest)``, so the front is
    byte-identical however (and in whatever order) the evaluations
    were produced.
    """
    pool = _canonical(evaluations)
    return [
        ev for ev in pool
        if not any(dominates(other, ev) for other in pool)
    ]


def budget_best(
    front,
    max_overhead: float | None = None,
    max_replica_bytes: int | None = None,
) -> Evaluation | None:
    """The lowest-SDC evaluation satisfying the budget constraints.

    ``max_overhead`` caps the simulated performance overhead (e.g.
    ``0.02`` for "at most 2% slower"); ``max_replica_bytes`` caps the
    replica footprint.  Ties break on lower overhead, then smaller
    footprint, then digest.  Returns ``None`` when nothing fits.
    """
    eligible = [
        ev for ev in front
        if (max_overhead is None or ev.overhead <= max_overhead)
        and (max_replica_bytes is None
             or ev.replica_bytes <= max_replica_bytes)
    ]
    if not eligible:
        return None
    return min(eligible, key=lambda e: (*e.objectives, e.digest))
