"""The protection design space and its points.

A :class:`DesignSpace` is the set of per-object protection choices the
explorer may assign: for each candidate data object of one
application, leave it unprotected or protect it with one of the
per-object schemes (detection/correction).  A :class:`DesignPoint` is
one concrete choice — a thin wrapper around the typed
:class:`~repro.core.protection.ProtectionSpec` that adds the
gene-vector view the strategies mutate and the canonical digest the
engine dedupes/caches on.

Everything here is pure data: enumeration order, random sampling (from
a caller-owned :class:`random.Random`) and digests are all
deterministic functions of the space definition, which is what makes
search trails replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping

from repro.core.protection import PROTECTION_SCHEMES, ProtectionSpec
from repro.errors import SpecError
from repro.utils.canonical import canonical_digest

#: The per-object gene meaning "leave this object unprotected".
UNPROTECTED = "none"


@dataclass(frozen=True)
class DesignPoint:
    """One protection configuration inside a design space."""

    spec: ProtectionSpec

    @property
    def digest(self) -> str:
        """The wrapped spec's canonical content digest."""
        return self.spec.digest()

    @property
    def label(self) -> str:
        """Human-readable form (the spec's explicit string)."""
        return self.spec.to_string()

    def genes(self, space: "DesignSpace") -> tuple[str, ...]:
        """This point as a per-object gene vector over ``space``.

        One gene per space object, in space order:
        :data:`UNPROTECTED` or the object's assigned scheme.
        """
        schemes = self.spec.schemes
        return tuple(
            schemes.get(name, UNPROTECTED) for name in space.objects
        )

    def to_dict(self) -> dict:
        """Canonical JSON-ready image."""
        return {"protection": self.spec.to_dict()}


@dataclass(frozen=True)
class DesignSpace:
    """All per-object protection assignments for one application.

    ``objects`` are the candidate data objects (importance order);
    ``schemes`` the per-object choices beyond "unprotected".  The
    space size is ``(len(schemes) + 1) ** len(objects)``.
    """

    app: str
    objects: tuple[str, ...]
    schemes: tuple[str, ...] = PROTECTION_SCHEMES

    def __post_init__(self):
        """Normalize tuples and validate the definition."""
        for name in ("objects", "schemes"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))
        if not self.objects:
            raise SpecError("design space needs at least one object")
        if len(set(self.objects)) != len(self.objects):
            raise SpecError("design space objects must be unique")
        for scheme in self.schemes:
            if scheme not in PROTECTION_SCHEMES:
                raise SpecError(
                    f"unknown design-space scheme {scheme!r} (choose "
                    f"from {', '.join(PROTECTION_SCHEMES)})"
                )
        if not self.schemes:
            raise SpecError("design space needs at least one scheme")

    # -- geometry ------------------------------------------------------
    @property
    def choices(self) -> tuple[str, ...]:
        """Per-object gene alphabet (unprotected first)."""
        return (UNPROTECTED, *self.schemes)

    def size(self) -> int:
        """Number of distinct points in the space."""
        return len(self.choices) ** len(self.objects)

    # -- point constructors --------------------------------------------
    def point(self, genes) -> DesignPoint:
        """Build the point a gene vector (or mapping) describes."""
        if isinstance(genes, Mapping):
            genes = tuple(
                genes.get(name, UNPROTECTED) for name in self.objects
            )
        genes = tuple(genes)
        if len(genes) != len(self.objects):
            raise SpecError(
                f"gene vector has {len(genes)} entries for "
                f"{len(self.objects)} objects"
            )
        for gene in genes:
            if gene != UNPROTECTED and gene not in self.schemes:
                raise SpecError(
                    f"gene {gene!r} outside this space's choices "
                    f"{self.choices}"
                )
        assignments = tuple(
            (name, gene)
            for name, gene in zip(self.objects, genes)
            if gene != UNPROTECTED
        )
        return DesignPoint(ProtectionSpec(assignments))

    def baseline(self) -> DesignPoint:
        """The all-unprotected point."""
        return DesignPoint(ProtectionSpec.baseline())

    def uniform(self, scheme: str, names=None) -> DesignPoint:
        """Protect ``names`` (default: every object) with ``scheme``."""
        names = tuple(self.objects if names is None else names)
        for name in names:
            if name not in self.objects:
                raise SpecError(
                    f"object {name!r} outside this design space"
                )
        return self.point({name: scheme for name in names})

    def enumerate(self) -> Iterator[DesignPoint]:
        """Every point, in deterministic lexicographic gene order."""
        for genes in product(self.choices, repeat=len(self.objects)):
            yield self.point(genes)

    def random_point(self, rng) -> DesignPoint:
        """Sample one point uniformly from ``rng`` (a
        :class:`random.Random` owned by the caller, so sampling is
        reproducible from its seed)."""
        return self.point(tuple(
            rng.choice(self.choices) for _name in self.objects
        ))

    # -- identity ------------------------------------------------------
    def to_dict(self) -> dict:
        """Canonical identity document of the space."""
        return {
            "app": self.app,
            "objects": list(self.objects),
            "schemes": list(self.schemes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "DesignSpace":
        """Rebuild a space from its :meth:`to_dict` image."""
        try:
            return cls(
                app=data["app"],
                objects=tuple(data["objects"]),
                schemes=tuple(data["schemes"]),
            )
        except (KeyError, TypeError):
            raise SpecError(
                f"not a design-space image: {data!r}"
            ) from None

    def digest(self) -> str:
        """SHA-256 content address of the space definition."""
        return canonical_digest(self.to_dict())
