"""The design-space exploration engine (``repro optimize``).

:func:`optimize` drives a :class:`~repro.search.strategies` round
generator over a :class:`~repro.search.space.DesignSpace`, evaluating
each proposed protection configuration on three objectives:

* **SDC rate** — a fault-injection campaign per configuration, driven
  through the existing :class:`~repro.runtime.session.Session` sweep
  backend (one ``("spec",)`` grid per round), so evaluations inherit
  the campaign machinery's guarantees wholesale: chunk-level
  checkpoints, byte-identical results at any ``jobs``/``batch``, and
  resumability;
* **performance overhead** — one parent-side timing simulation per
  configuration (slowdown minus one versus the unprotected baseline),
  cached by configuration digest;
* **replica memory footprint** — pure address arithmetic
  (:meth:`~repro.core.protection.ProtectionSpec.replica_bytes`).

Durability: under ``store`` the engine keeps a ``SEARCH.json``
identity manifest plus one checkpoint directory per round
(``round-0000``, ``round-0001``, ...).  Because strategies are
deterministic, resuming re-proposes the same candidates and each
round's sweep replays instantly from its checkpoints — an interrupted
search (``SessionInterrupted``, exit code 75 in the CLI) continues
exactly where it stopped, and the replayed search trail is
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.manager import ReliabilityManager
from repro.core.request import EvaluationRequest
from repro.errors import (
    CheckpointError,
    SessionInterrupted,
    SpecError,
)
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.search import SearchTrailWriter
from repro.runtime.session import Session, SessionConfig, SweepSpec
from repro.search.pareto import Evaluation, budget_best, pareto_front
from repro.search.space import DesignPoint, DesignSpace
from repro.search.strategies import make_strategy
from repro.utils.canonical import canonical_digest, canonical_json

log = get_logger("search")

#: Manifest file stamping a search's durability root.
SEARCH_MANIFEST = "SEARCH.json"

#: Backstop on runaway strategies (a strategy that never returns an
#: empty proposal still terminates).
MAX_ROUNDS = 64


@dataclass
class OptimizeResult:
    """Outcome of one design-space exploration."""

    app: str
    strategy: str
    space: DesignSpace
    #: Every committed evaluation, in canonical (objectives, digest)
    #: order.
    evaluations: list[Evaluation] = field(default_factory=list)
    #: The non-dominated subset, canonically ordered.
    front: list[Evaluation] = field(default_factory=list)
    #: The budget solver's pick (``None`` when nothing fits or no
    #: budget was given).
    best: Evaluation | None = None
    #: The baseline (unprotected) evaluation, always present.
    baseline: Evaluation | None = None
    rounds: int = 0
    #: Engine bookkeeping: proposals, strategy cache hits, chunk
    #: execution/resume counts (the bench's cache-hit-rate source).
    stats: dict = field(default_factory=dict)

    def sdc_reduction(self, evaluation: Evaluation) -> float:
        """Percent of baseline SDCs the configuration removes."""
        if self.baseline is None or self.baseline.sdc_count == 0:
            return 0.0
        removed = self.baseline.sdc_count - evaluation.sdc_count
        return 100.0 * removed / self.baseline.sdc_count

    def to_dict(self) -> dict:
        """Deterministic JSON image of the search outcome."""
        return {
            "app": self.app,
            "strategy": self.strategy,
            "space": self.space.to_dict(),
            "rounds": self.rounds,
            "evaluations": [e.to_dict() for e in self.evaluations],
            "front": [e.digest for e in self.front],
            "best": None if self.best is None else self.best.digest,
            "stats": dict(sorted(self.stats.items())),
        }


def _candidate_objects(manager: ReliabilityManager, objects):
    """Resolve the ``objects`` knob to candidate object names."""
    order = tuple(manager.app.object_importance)
    if objects is None:
        return order
    if isinstance(objects, int):
        if not 1 <= objects <= len(order):
            raise SpecError(
                f"objects={objects} outside [1, {len(order)}]"
            )
        return order[:objects]
    names = tuple(objects)
    for name in names:
        if name not in order:
            raise SpecError(
                f"unknown candidate object {name!r} (choose from "
                f"{', '.join(order)})"
            )
    return names


def _vulnerability_ranking(
    manager: ReliabilityManager, candidates, runs, n_blocks, n_bits,
    selection, seed, jobs,
) -> tuple[str, ...]:
    """Candidate objects ranked by baseline SDC attribution.

    One parent-side baseline campaign with provenance collection
    seeds the greedy/evolutionary strategies (the paper's
    protect-what-matters argument).  Campaign results are a pure
    function of ``(seed, run_index)``, so the ranking — like the
    search trail built on it — is identical at any ``jobs``.
    Objects without SDC attributions keep their importance order at
    the tail.
    """
    from repro.obs.provenance import (
        top_sdc_objects,
        vulnerability_profiles,
    )

    result = manager.evaluate(
        scheme="baseline", protect="none", runs=runs,
        n_blocks=n_blocks, n_bits=n_bits, selection=selection,
        seed=seed, collect_provenance=True, jobs=jobs,
    )
    profiles = vulnerability_profiles(result.provenance)
    attributed = [
        p.object for p in top_sdc_objects(profiles)
        if p.sdc_count > 0 and p.object in candidates
    ]
    tail = [n for n in candidates if n not in attributed]
    return tuple(attributed + tail)


class _SearchStore:
    """The search's durability root: manifest + per-round dirs."""

    def __init__(self, root: str | None):
        self.root = root

    def initialize(self, identity: dict, resume: bool) -> None:
        """Stamp a fresh root or validate an existing one.

        Mirrors :meth:`~repro.runtime.checkpoint.CheckpointStore.
        initialize`: an existing manifest must digest-match the
        search identity and requires ``resume=True``.
        """
        if self.root is None:
            return
        os.makedirs(self.root, exist_ok=True)
        path = os.path.join(self.root, SEARCH_MANIFEST)
        digest = canonical_digest(identity)
        if os.path.isfile(path):
            import json

            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
            if manifest.get("digest") != digest:
                raise CheckpointError(
                    f"search directory {self.root} belongs to a "
                    f"different search (manifest digest "
                    f"{str(manifest.get('digest'))[:12]}…, this "
                    f"search {digest[:12]}…); use a fresh directory"
                )
            if not resume:
                raise CheckpointError(
                    f"search directory {self.root} already holds "
                    "this search; pass resume=True (--resume) to "
                    "continue it"
                )
            return
        doc = {"digest": digest, "search": identity}
        with open(path, "w", encoding="utf-8", newline="\n") as fh:
            fh.write(canonical_json(doc) + "\n")

    def round_dir(self, round_index: int) -> str | None:
        """Checkpoint directory of one round (``None`` when
        durability is off)."""
        if self.root is None:
            return None
        return os.path.join(self.root, f"round-{round_index:04d}")


def optimize(
    app: str | None = None,
    strategy: str = "greedy",
    objects=None,
    runs: int = 200,
    n_blocks: int = 1,
    n_bits: int = 2,
    selection: str = "access-weighted",
    seed: int = 20210621,
    search_seed: int = 1,
    scale: str = "default",
    app_seed: int = 1234,
    population: int = 12,
    generations: int = 6,
    max_evals: int | None = None,
    chunk_runs: int | None = None,
    store: str | None = None,
    resume: bool = False,
    jobs: int = 1,
    batch: int = 1,
    max_batch_bytes: int = 256 * 1024 * 1024,
    stop_after_chunks: int | None = None,
    trail: str | None = None,
    progress=None,
    metrics: MetricsRegistry | None = None,
    max_overhead: float | None = None,
    max_replica_bytes: int | None = None,
    request: EvaluationRequest | None = None,
) -> OptimizeResult:
    """Explore protection configurations; return the Pareto front.

    ``objects`` restricts the design space to the first N objects of
    the importance order (int), an explicit name list, or every
    object (``None``).  ``max_evals`` caps the number of evaluated
    configurations; ``max_overhead``/``max_replica_bytes`` feed the
    budget solver whose pick lands in
    :attr:`OptimizeResult.best`.  ``store`` makes the search durable
    and resumable; ``stop_after_chunks`` bounds one invocation's
    newly executed campaign chunks (the search stops checkpointed
    with :class:`~repro.errors.SessionInterrupted`, CLI exit 75).
    ``trail`` streams the per-round decision log
    (:mod:`repro.obs.search`), byte-identical at any
    ``jobs``/``batch`` and across interrupt/resume.

    The experiment baseline (fault grid, seeds, scale, knobs) may
    come from an :class:`~repro.core.request.EvaluationRequest` via
    ``request=`` instead of the individual keywords.
    """
    if request is not None:
        app = app or request.app
        runs = request.runs
        n_blocks, n_bits = request.n_blocks, request.n_bits
        selection, seed = request.selection, request.seed
        scale, app_seed = request.scale, request.app_seed
        chunk_runs = request.chunk_runs
        jobs, batch = request.jobs, request.batch
        max_batch_bytes = request.max_batch_bytes
        if progress is None:
            progress = request.progress
        if metrics is None and request.metrics is not None:
            metrics = request.metrics
    if app is None:
        raise SpecError("optimize needs an application name")
    from repro.kernels.registry import create_app

    manager = ReliabilityManager(
        create_app(app, scale=scale, seed=app_seed))
    candidates = _candidate_objects(manager, objects)
    space = DesignSpace(app=app, objects=candidates)
    metrics = metrics if metrics is not None else MetricsRegistry()

    identity = {
        "space": space.to_dict(),
        "strategy": strategy,
        "search_seed": search_seed,
        "population": population,
        "generations": generations,
        "sweep": {
            "runs": runs, "n_blocks": n_blocks, "n_bits": n_bits,
            "seed": seed, "selection": selection, "scale": scale,
            "app_seed": app_seed,
            "chunk_runs": chunk_runs,
        },
    }
    if max_evals is not None:
        identity["max_evals"] = max_evals
    search_store = _SearchStore(store)
    search_store.initialize(identity, resume=resume)

    ranking: tuple[str, ...] | None = None
    if strategy in ("greedy", "evolutionary"):
        ranking = _vulnerability_ranking(
            manager, candidates, runs, n_blocks, n_bits, selection,
            seed, jobs,
        )
        log.info(f"search: vulnerability ranking {ranking}")
    strategy_obj = make_strategy(
        strategy, space, seed=search_seed, population=population,
        generations=generations, ranking=ranking,
    )

    writer = SearchTrailWriter(trail) if trail is not None else None
    if writer is not None:
        writer.write_header({
            "app": app, "space": space.to_dict(),
            "strategy": strategy, "search_seed": search_seed,
        })

    baseline_report = manager.simulate_performance("baseline", "none")
    timing_cache: dict[str, float] = {}

    def overhead_of(point: DesignPoint) -> float:
        if point.spec.is_baseline:
            return 0.0
        cached = timing_cache.get(point.digest)
        if cached is None:
            report = manager.simulate_performance(
                "baseline", point.spec)
            cached = report.slowdown_vs(baseline_report) - 1.0
            timing_cache[point.digest] = cached
        return cached

    evaluated: dict[str, Evaluation] = {}
    chunk_budget = stop_after_chunks
    rounds = 0
    n_proposed = n_cached = 0
    try:
        for round_index in range(MAX_ROUNDS):
            proposals = strategy_obj.propose(round_index, evaluated)
            if round_index == 0:
                base = space.baseline()
                if all(p.digest != base.digest for p in proposals):
                    proposals = [base] + proposals
            if not proposals:
                break
            rounds += 1
            unique: list[DesignPoint] = []
            seen: set[str] = set()
            for point in proposals:
                if point.digest not in seen:
                    seen.add(point.digest)
                    unique.append(point)
            new_points = [
                p for p in unique if p.digest not in evaluated
            ]
            n_proposed += len(unique)
            n_cached += len(unique) - len(new_points)
            if max_evals is not None:
                room = max_evals - len(evaluated)
                new_points = new_points[:max(room, 0)]
            if new_points:
                if chunk_budget is not None and chunk_budget < 1:
                    # The per-invocation chunk budget ran out between
                    # rounds; every completed round is checkpointed.
                    raise SessionInterrupted(
                        0, len(new_points),
                        reason="stopped (chunk budget)")
                executed_before = metrics.counter(
                    "session.chunks.executed").value
                sweep = _run_round(
                    app, new_points, search_store, round_index,
                    runs, n_blocks, n_bits, seed, selection, scale,
                    app_seed, chunk_runs, jobs, batch,
                    max_batch_bytes, chunk_budget, metrics, progress,
                )
                if chunk_budget is not None:
                    chunk_budget -= (
                        metrics.counter("session.chunks.executed")
                        .value - executed_before
                    )
                for point, entry in zip(new_points, sweep.entries):
                    result = entry.result
                    evaluated[point.digest] = Evaluation(
                        point=point,
                        sdc_count=result.sdc_count,
                        runs=result.n_runs,
                        overhead=overhead_of(point),
                        replica_bytes=point.spec.replica_bytes(
                            manager.memory),
                    )
            front = pareto_front(evaluated.values())
            log.info(
                f"search: round {round_index}: {len(unique)} "
                f"proposed, {len(new_points)} new, front size "
                f"{len(front)}")
            if writer is not None:
                writer.write_round({
                    "round": round_index,
                    "proposed": len(unique),
                    "new": len(new_points),
                    "cached": len(unique) - len(new_points),
                    "evaluations": [
                        evaluated[p.digest].to_dict()
                        for p in sorted(new_points,
                                        key=lambda q: q.digest)
                    ],
                    "front": [e.digest for e in front],
                })
            if max_evals is not None and len(evaluated) >= max_evals:
                break
    finally:
        if writer is not None:
            writer.close()

    evaluations = sorted(
        evaluated.values(), key=lambda e: (*e.objectives, e.digest)
    )
    front = pareto_front(evaluations)
    best = None
    if max_overhead is not None or max_replica_bytes is not None:
        best = budget_best(front, max_overhead=max_overhead,
                           max_replica_bytes=max_replica_bytes)
    baseline_eval = evaluated.get(space.baseline().digest)
    metrics.counter("search.evaluations").set(len(evaluations))
    return OptimizeResult(
        app=app,
        strategy=strategy,
        space=space,
        evaluations=evaluations,
        front=front,
        best=best,
        baseline=baseline_eval,
        rounds=rounds,
        stats={
            "proposed": n_proposed,
            "cache_hits": n_cached,
            "evaluations": len(evaluations),
            "chunks_executed": metrics.counter(
                "session.chunks.executed").value,
            "chunks_resumed": metrics.counter(
                "session.chunks.resumed").value,
        },
    )


def _run_round(
    app, new_points, search_store, round_index, runs, n_blocks,
    n_bits, seed, selection, scale, app_seed, chunk_runs, jobs,
    batch, max_batch_bytes, chunk_budget, metrics, progress,
):
    """Evaluate one round's new configurations as a ``spec`` sweep."""
    spec = SweepSpec(
        apps=(app,),
        schemes=("spec",),
        protects=tuple(p.spec for p in new_points),
        runs=runs,
        n_blocks=n_blocks,
        n_bits=n_bits,
        seed=seed,
        selection=selection,
        scale=scale,
        app_seed=app_seed,
        chunk_runs=chunk_runs,
    )
    round_dir = search_store.round_dir(round_index)
    config = SessionConfig(
        jobs=jobs, batch=batch, max_batch_bytes=max_batch_bytes,
        stop_after_chunks=chunk_budget,
    )
    session = Session(spec, store=round_dir, config=config,
                      metrics=metrics, progress=progress)
    # Round directories are always safe to resume: the manifest
    # digest pins the round's exact cell set, and chunk payloads are
    # content-verified on load.
    return session.run(resume=round_dir is not None)
