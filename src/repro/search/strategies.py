"""Search strategies for the protection design-space explorer.

A strategy is a deterministic round generator: each round it proposes
a batch of :class:`~repro.search.space.DesignPoint` candidates given
everything evaluated so far, and the engine evaluates the new ones
(deduplicating against the evaluation cache).  An empty proposal ends
the search.  All randomness flows from one caller-provided seed
through a private :class:`random.Random`, so the same
``(space, strategy, seed)`` always proposes the same sequence — the
property the A/B determinism suite pins.

Three strategies cover the space/size spectrum:

* :class:`ExhaustiveStrategy` — every point, for small spaces;
* :class:`GreedyStrategy` — marginal-gain hill climb over the
  vulnerability-ranked objects (seeded from
  :func:`repro.obs.provenance.vulnerability_profiles` attribution);
* :class:`EvolutionaryStrategy` — NSGA-II-style multi-objective
  genetic search;
* :class:`RandomStrategy` — uniform sampling, the A/B baseline the
  seeding experiments compare against.
"""

from __future__ import annotations

import random

from repro.errors import SpecError
from repro.search.pareto import (
    Evaluation,
    crowding_distance,
    non_dominated_sort,
)
from repro.search.space import DesignPoint, DesignSpace

#: Largest space :class:`ExhaustiveStrategy` agrees to enumerate.
EXHAUSTIVE_LIMIT = 4096

#: Registered strategy names (the CLI's ``--strategy`` choices).
STRATEGY_NAMES = ("exhaustive", "greedy", "evolutionary", "random")


class SearchStrategy:
    """Base class: a deterministic round-based candidate generator."""

    name = ""

    def __init__(self, space: DesignSpace):
        self.space = space

    def propose(
        self, round_index: int, evaluated: dict[str, Evaluation]
    ) -> list[DesignPoint]:
        """Candidates for this round (empty list ends the search).

        ``evaluated`` maps configuration digests to every evaluation
        committed so far (earlier rounds included), which is all the
        state a strategy may condition on besides its own RNG.
        """
        raise NotImplementedError


class ExhaustiveStrategy(SearchStrategy):
    """Enumerate the whole space in one round (small spaces only)."""

    name = "exhaustive"

    def __init__(self, space: DesignSpace,
                 limit: int = EXHAUSTIVE_LIMIT):
        super().__init__(space)
        if space.size() > limit:
            raise SpecError(
                f"design space has {space.size()} points, beyond the "
                f"exhaustive limit of {limit}; use --strategy greedy "
                "or evolutionary"
            )

    def propose(self, round_index, evaluated) -> list[DesignPoint]:
        if round_index > 0:
            return []
        return list(self.space.enumerate())


class RandomStrategy(SearchStrategy):
    """Uniform random sampling — the seeding-experiment baseline."""

    name = "random"

    def __init__(self, space: DesignSpace, seed: int = 1,
                 population: int = 12, rounds: int = 8):
        super().__init__(space)
        self.rng = random.Random(seed)
        self.population = population
        self.rounds = rounds

    def propose(self, round_index, evaluated) -> list[DesignPoint]:
        if round_index >= self.rounds:
            return []
        if round_index == 0:
            # The baseline always anchors the SDC-reduction report.
            points = [self.space.baseline()]
        else:
            points = []
        while len(points) < self.population:
            points.append(self.space.random_point(self.rng))
        return points


class GreedyStrategy(SearchStrategy):
    """Marginal-gain hill climb over vulnerability-ranked objects.

    Starting from the baseline, objects are visited in ``ranking``
    order (most SDC-attributed first — the seeding that makes greedy
    beat random in evaluations-to-front).  Each round proposes the
    current configuration upgraded on one object (one candidate per
    scheme); the upgrade with the lowest resulting
    ``(sdc_rate, overhead, replica_bytes)`` is adopted if it strictly
    reduces the SDC rate, otherwise the object stays unprotected and
    the next one is tried.
    """

    name = "greedy"

    def __init__(self, space: DesignSpace,
                 ranking: tuple[str, ...] | None = None):
        super().__init__(space)
        if ranking is None:
            ranking = space.objects
        self.ranking = tuple(
            name for name in ranking if name in space.objects
        )
        # Objects the ranking does not mention still get their turn,
        # after the ranked ones.
        self.ranking += tuple(
            name for name in space.objects if name not in self.ranking
        )
        self._current = space.baseline()
        self._pending: list[DesignPoint] = []
        self._step = 0

    def _settle(self, evaluated: dict[str, Evaluation]) -> None:
        """Adopt the best of the last round's candidates, if any won."""
        if not self._pending:
            return
        current = evaluated.get(self._current.digest)
        candidates = [
            evaluated[p.digest] for p in self._pending
            if p.digest in evaluated
        ]
        self._pending = []
        if current is None or not candidates:
            return
        best = min(candidates,
                   key=lambda e: (*e.objectives, e.digest))
        if best.sdc_rate < current.sdc_rate:
            self._current = best.point

    def propose(self, round_index, evaluated) -> list[DesignPoint]:
        if round_index == 0:
            return [self._current]
        self._settle(evaluated)
        if self._step >= len(self.ranking):
            return []
        name = self.ranking[self._step]
        self._step += 1
        genes = dict(zip(self.space.objects,
                         self._current.genes(self.space)))
        self._pending = [
            self.space.point({**genes, name: scheme})
            for scheme in self.space.schemes
        ]
        return list(self._pending)


class EvolutionaryStrategy(SearchStrategy):
    """NSGA-II-style multi-objective genetic search.

    Individuals are per-object gene vectors.  Each generation ranks
    the population by non-dominated front and crowding distance,
    breeds children by binary tournament selection, uniform crossover
    and per-gene mutation, and keeps the best ``population``
    survivors of parents plus children.  The initial population mixes
    the baseline, uniform all-object configurations, and
    vulnerability-seeded prefixes of ``ranking`` with random fill.
    """

    name = "evolutionary"

    def __init__(
        self,
        space: DesignSpace,
        seed: int = 1,
        population: int = 12,
        generations: int = 6,
        ranking: tuple[str, ...] | None = None,
    ):
        super().__init__(space)
        if population < 4:
            raise SpecError("evolutionary population must be >= 4")
        if generations < 1:
            raise SpecError("evolutionary generations must be >= 1")
        self.rng = random.Random(seed)
        self.population = population
        self.generations = generations
        self.ranking = tuple(
            name for name in (ranking or space.objects)
            if name in space.objects
        ) or space.objects
        self._pool: list[DesignPoint] = []

    # -- genetic operators ---------------------------------------------
    def _seeded(self) -> list[DesignPoint]:
        points = [
            self.space.baseline(),
            self.space.uniform("correction"),
        ]
        if "detection" in self.space.schemes:
            points.append(self.space.uniform("detection"))
        for k in range(1, len(self.ranking)):
            points.append(
                self.space.uniform("correction", self.ranking[:k]))
        seen: set[str] = set()
        unique = []
        for p in points:
            if p.digest not in seen:
                seen.add(p.digest)
                unique.append(p)
        while len(unique) < self.population:
            p = self.space.random_point(self.rng)
            if p.digest not in seen:
                seen.add(p.digest)
                unique.append(p)
        return unique[:self.population]

    def _rank(
        self, evaluated: dict[str, Evaluation]
    ) -> list[DesignPoint]:
        """Current pool sorted best-first (front rank, crowding)."""
        evals = [
            evaluated[p.digest] for p in self._pool
            if p.digest in evaluated
        ]
        ordered: list[tuple[str, float, int]] = []
        for rank, front in enumerate(non_dominated_sort(evals)):
            for ev, dist in zip(front, crowding_distance(front)):
                ordered.append((ev.digest, -dist, rank))
        position = {
            digest: (rank, neg_dist)
            for digest, neg_dist, rank in ordered
        }
        pool = [p for p in self._pool if p.digest in position]
        return sorted(
            pool, key=lambda p: (*position[p.digest], p.digest)
        )

    def _tournament(self, ranked: list[DesignPoint]) -> DesignPoint:
        i = self.rng.randrange(len(ranked))
        j = self.rng.randrange(len(ranked))
        return ranked[min(i, j)]

    def _breed(self, a: DesignPoint, b: DesignPoint) -> DesignPoint:
        ga = a.genes(self.space)
        gb = b.genes(self.space)
        child = [
            x if self.rng.random() < 0.5 else y
            for x, y in zip(ga, gb)
        ]
        rate = 1.0 / len(child)
        for idx in range(len(child)):
            if self.rng.random() < rate:
                child[idx] = self.rng.choice(self.space.choices)
        return self.space.point(child)

    # -- the round generator -------------------------------------------
    def propose(self, round_index, evaluated) -> list[DesignPoint]:
        if round_index == 0:
            self._pool = self._seeded()
            return list(self._pool)
        if round_index > self.generations:
            return []
        ranked = self._rank(evaluated)
        if not ranked:
            return []
        survivors = ranked[:self.population]
        children = []
        seen = {p.digest for p in survivors}
        attempts = 0
        while len(children) < self.population \
                and attempts < 8 * self.population:
            attempts += 1
            child = self._breed(self._tournament(ranked),
                                self._tournament(ranked))
            if child.digest not in seen:
                seen.add(child.digest)
                children.append(child)
        self._pool = survivors + children
        return children


def make_strategy(
    name: str,
    space: DesignSpace,
    seed: int = 1,
    population: int = 12,
    generations: int = 6,
    ranking: tuple[str, ...] | None = None,
    exhaustive_limit: int = EXHAUSTIVE_LIMIT,
) -> SearchStrategy:
    """Factory: build a registered strategy by name."""
    if name == "exhaustive":
        return ExhaustiveStrategy(space, limit=exhaustive_limit)
    if name == "greedy":
        return GreedyStrategy(space, ranking=ranking)
    if name == "evolutionary":
        return EvolutionaryStrategy(
            space, seed=seed, population=population,
            generations=generations, ranking=ranking,
        )
    if name == "random":
        return RandomStrategy(
            space, seed=seed, population=population,
            rounds=generations + 2,
        )
    raise SpecError(
        f"unknown search strategy {name!r} (choose from "
        f"{', '.join(STRATEGY_NAMES)})"
    )
