"""Protection design-space exploration (`repro optimize`).

The search layer turns the per-configuration evaluation machinery
into an optimizer: a :class:`~repro.search.space.DesignSpace`
enumerates which objects get which protection scheme, pluggable
strategies (:mod:`repro.search.strategies`) propose candidate
:class:`~repro.search.space.DesignPoint` rounds, the engine
(:mod:`repro.search.engine`) evaluates each round through the
checkpointed :class:`~repro.runtime.session.Session` backend, and
:mod:`repro.search.pareto` extracts the non-dominated front over
(SDC rate, performance overhead, replica footprint) plus the best
configuration under an overhead/memory budget.
"""

from repro.search.engine import (
    MAX_ROUNDS,
    OptimizeResult,
    optimize,
)
from repro.search.pareto import (
    OBJECTIVES,
    Evaluation,
    budget_best,
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front,
)
from repro.search.space import (
    UNPROTECTED,
    DesignPoint,
    DesignSpace,
)
from repro.search.strategies import (
    EXHAUSTIVE_LIMIT,
    STRATEGY_NAMES,
    EvolutionaryStrategy,
    ExhaustiveStrategy,
    GreedyStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
)

__all__ = [
    "DesignPoint",
    "DesignSpace",
    "Evaluation",
    "EvolutionaryStrategy",
    "ExhaustiveStrategy",
    "EXHAUSTIVE_LIMIT",
    "GreedyStrategy",
    "MAX_ROUNDS",
    "OBJECTIVES",
    "OptimizeResult",
    "RandomStrategy",
    "SearchStrategy",
    "STRATEGY_NAMES",
    "UNPROTECTED",
    "budget_best",
    "crowding_distance",
    "dominates",
    "make_strategy",
    "non_dominated_sort",
    "optimize",
    "pareto_front",
]
