"""CSV export of figure/table data.

Writes the same rows the benchmark harness prints into plain CSV
files, one per exhibit, so the figures can be re-plotted with any
tool (the repository deliberately has no plotting dependency).
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.figures import (
    fig2_rows,
    fig3_series,
    fig4_series,
    fig6_grid,
    fig7_sweep,
    fig9_grid,
    table1_rows,
    table2_rows,
)
from repro.core.manager import ReliabilityManager


def _write(path: Path, header: list[str], rows) -> Path:
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_table1(out_dir: Path) -> Path:
    """Table I rows -> table1_config.csv."""
    return _write(
        Path(out_dir) / "table1_config.csv",
        ["category", "configuration"],
        table1_rows(),
    )


def export_fig2(out_dir: Path) -> Path:
    """Figure 2 L2-trend rows -> fig2_l2_trend.csv."""
    return _write(
        Path(out_dir) / "fig2_l2_trend.csv",
        ["vendor", "model", "year", "l2_mib"],
        fig2_rows(),
    )


def export_table2(out_dir: Path) -> Path:
    """Table II metric rows -> table2_metrics.csv."""
    return _write(
        Path(out_dir) / "table2_metrics.csv",
        ["application", "output_format", "error_metric"],
        table2_rows(),
    )


def export_fig3(manager: ReliabilityManager, out_dir: Path) -> Path:
    """Figure 3 sorted normalized access curve for one app."""
    series = fig3_series(manager)
    rows = [
        (i, float(v)) for i, v in enumerate(series.normalized_counts)
    ]
    return _write(
        Path(out_dir) / f"fig3_{_slug(manager)}.csv",
        ["block_rank", "normalized_reads"],
        rows,
    )


def export_fig4(manager: ReliabilityManager, out_dir: Path) -> Path:
    """Figure 4 warp-sharing curve for one app."""
    series = fig4_series(manager)
    rows = [
        (i, float(v)) for i, v in enumerate(series.warp_share_percent)
    ]
    return _write(
        Path(out_dir) / f"fig4_{_slug(manager)}.csv",
        ["block_rank", "warp_share_percent"],
        rows,
    )


def export_fig6(
    manager: ReliabilityManager, out_dir: Path, runs: int,
    seed: int = 20210621,
) -> Path:
    """Figure 6 hot-vs-rest fault grid for one app."""
    cells = fig6_grid(manager, runs=runs, seed=seed)
    rows = [
        (c.space, c.n_blocks, c.n_bits, c.sdc, c.crash, c.masked,
         c.runs)
        for c in cells
    ]
    return _write(
        Path(out_dir) / f"fig6_{_slug(manager)}.csv",
        ["space", "n_blocks", "n_bits", "sdc", "crash", "masked",
         "runs"],
        rows,
    )


def export_fig7(manager: ReliabilityManager, out_dir: Path) -> Path:
    """Figure 7 normalized performance sweep for one app."""
    _baseline, sweep = fig7_sweep(manager)
    rows = [
        (r.scheme, r.n_protected, r.norm_time,
         r.norm_missed_accesses, r.replica_transactions)
        for r in sweep
    ]
    return _write(
        Path(out_dir) / f"fig7_{_slug(manager)}.csv",
        ["scheme", "n_protected", "norm_time", "norm_missed",
         "replica_transactions"],
        rows,
    )


def export_fig9(
    manager: ReliabilityManager, out_dir: Path, runs: int,
    seed: int = 20210621,
) -> Path:
    """Figure 9 protection-level fault grid for one app."""
    rows = []
    n_hot = len(manager.app.hot_object_names)
    n_all = len(manager.app.object_importance)
    levels = sorted({0, n_hot, n_all})
    for scheme in ("detection", "correction"):
        for cell in fig9_grid(manager, scheme=scheme, runs=runs,
                              levels=levels, seed=seed):
            rows.append((
                cell.scheme, cell.n_protected, cell.n_blocks,
                cell.n_bits, cell.sdc, cell.detected, cell.corrected,
                cell.crash, cell.runs,
            ))
    return _write(
        Path(out_dir) / f"fig9_{_slug(manager)}.csv",
        ["scheme", "n_protected", "n_blocks", "n_bits", "sdc",
         "detected", "corrected", "crash", "runs"],
        rows,
    )


def export_all(
    manager: ReliabilityManager, out_dir: Path, runs: int = 100,
) -> list[Path]:
    """Export every per-application exhibit plus the static tables."""
    out_dir = Path(out_dir)
    return [
        export_table1(out_dir),
        export_fig2(out_dir),
        export_table2(out_dir),
        export_fig3(manager, out_dir),
        export_fig4(manager, out_dir),
        export_fig6(manager, out_dir, runs=runs),
        export_fig7(manager, out_dir),
        export_fig9(manager, out_dir, runs=runs),
    ]


def _slug(manager: ReliabilityManager) -> str:
    return manager.app.name.lower().replace("-", "_")
