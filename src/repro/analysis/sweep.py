"""Sweep-level aggregation: summarize a grid of campaign results.

Where :mod:`repro.analysis.report` renders one campaign,
this module reduces a whole :class:`~repro.runtime.session.SweepResult`
— every (app, scheme, protect) cell — into comparable rows: outcome
tallies, SDC rate with its confidence interval, and the per-app SDC
reduction of each protected cell against its unprotected baseline
cell when the sweep includes one (the paper's headline Fig 9 view).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.outcomes import Outcome
from repro.utils.stats import ConfidenceInterval
from repro.utils.tables import TextTable


@dataclass(frozen=True)
class SweepCellSummary:
    """One sweep cell reduced to its comparable numbers."""

    app: str
    scheme: str
    protect: int | str
    runs: int
    masked: int
    sdc: int
    detected: int
    corrected: int
    crash: int
    sdc_interval: ConfidenceInterval

    @property
    def sdc_rate(self) -> float:
        return self.sdc / self.runs if self.runs else 0.0


def summarize_sweep(sweep) -> list[SweepCellSummary]:
    """Reduce a :class:`~repro.runtime.session.SweepResult` to rows,
    in cell order."""
    rows = []
    for entry in sweep.entries:
        cell, result = entry.cell, entry.result
        rows.append(SweepCellSummary(
            app=cell.app,
            scheme=cell.scheme,
            protect=cell.protect,
            runs=result.n_runs,
            masked=result.count(Outcome.MASKED),
            sdc=result.count(Outcome.SDC),
            detected=result.count(Outcome.DETECTED),
            corrected=result.count(Outcome.CORRECTED),
            crash=result.count(Outcome.CRASH),
            sdc_interval=result.sdc_interval(),
        ))
    return rows


def sweep_table(rows: list[SweepCellSummary]) -> TextTable:
    """Render summary rows as the CLI's sweep result table."""
    table = TextTable(
        ["app", "scheme", "protect", "runs", "masked", "sdc",
         "detected", "corrected", "crash", "sdc-rate"],
        float_format="{:.4f}",
    )
    for row in rows:
        table.add_row([
            row.app, row.scheme, str(row.protect), row.runs,
            row.masked, row.sdc, row.detected, row.corrected,
            row.crash, row.sdc_rate,
        ])
    return table


def sdc_reduction_by_app(
    rows: list[SweepCellSummary],
) -> dict[str, dict[str, float]]:
    """Per-app SDC reduction of each protected cell vs its baseline.

    The reference for an app is its ``scheme == "baseline"`` cell (the
    unprotected arm).  Apps without one are skipped.  Returns
    ``{app: {"<scheme>~<protect>": percent_reduction}}`` where 100.0
    means every baseline SDC was eliminated; a cell with zero baseline
    SDCs reports 0.0 (nothing to reduce).
    """
    baselines: dict[str, SweepCellSummary] = {}
    for row in rows:
        if row.scheme == "baseline" and row.app not in baselines:
            baselines[row.app] = row
    reductions: dict[str, dict[str, float]] = {}
    for row in rows:
        base = baselines.get(row.app)
        if base is None or row is base:
            continue
        if base.sdc == 0:
            pct = 0.0
        else:
            pct = 100.0 * (base.sdc - row.sdc) / base.sdc
        reductions.setdefault(row.app, {})[
            f"{row.scheme}~{row.protect}"] = pct
    return reductions
