"""Expected-runtime models for recovery strategies.

The paper's detection scheme *terminates* on a mismatch and the user
reruns the application; the related work's checkpoint/restart rolls
back instead.  This module quantifies the comparison the paper makes
qualitatively ("the associated overhead of the checkpoint-restart
mechanism is prohibitive [29]"): for a given per-run fault-detection
probability, which strategy finishes sooner in expectation?

All times are normalized to the unprotected fault-free runtime (1.0).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import CheckpointModel
from repro.errors import ConfigError


def expected_runtime_rerun(
    scheme_slowdown: float, detect_probability: float
) -> float:
    """Expected normalized runtime of detect-and-rerun.

    Each attempt costs ``scheme_slowdown``; with probability ``p`` it
    is detected-faulty and rerun.  For permanent faults a rerun on the
    same hardware would fail again — the model assumes the rerun
    happens after repair/remap (the paper's "notify the user"), so
    attempts are independent: E[T] = s / (1 - p) for p < 1.
    """
    if scheme_slowdown <= 0:
        raise ConfigError("slowdown must be positive")
    if not 0.0 <= detect_probability < 1.0:
        raise ConfigError("detect probability must be in [0, 1)")
    return scheme_slowdown / (1.0 - detect_probability)


def expected_runtime_checkpoint(
    scheme_slowdown: float,
    detect_probability: float,
    model: CheckpointModel,
    total_cycles: int,
) -> float:
    """Expected normalized runtime of detect-and-rollback.

    The run always pays the checkpointing overhead; on a detected
    fault only the work since the last checkpoint (half an interval in
    expectation) is repeated, once per detection event.
    """
    if total_cycles <= 0:
        raise ConfigError("total_cycles must be positive")
    base = scheme_slowdown * (1.0 + model.overhead_fraction)
    if detect_probability == 0.0:
        return base
    if not 0.0 < detect_probability < 1.0:
        raise ConfigError("detect probability must be in [0, 1)")
    rollback_fraction = (
        0.5 * model.checkpoint_interval_cycles / total_cycles
    )
    expected_rollbacks = detect_probability / (1.0 - detect_probability)
    return base * (1.0 + expected_rollbacks * rollback_fraction)


@dataclass(frozen=True)
class StrategyComparison:
    """Expected runtimes of the strategies at one fault rate."""

    detect_probability: float
    rerun: float
    checkpoint: float
    dmr: float

    @property
    def winner(self) -> str:
        best = min(self.rerun, self.checkpoint, self.dmr)
        if best == self.rerun:
            return "detect+rerun"
        if best == self.checkpoint:
            return "detect+checkpoint"
        return "dmr"


def compare_strategies(
    detection_slowdown: float,
    checkpoint_model: CheckpointModel,
    total_cycles: int,
    detect_probability: float,
    dmr_slowdown_value: float = 2.0,
) -> StrategyComparison:
    """One row of the recovery-strategy comparison.

    DMR never detects permanent data faults (see
    :mod:`repro.core.baselines`), so its expected runtime is flat —
    and its undetected faults become SDCs, which no runtime number
    redeems; the comparison is still useful to price its overhead.
    """
    return StrategyComparison(
        detect_probability=detect_probability,
        rerun=expected_runtime_rerun(
            detection_slowdown, detect_probability),
        checkpoint=expected_runtime_checkpoint(
            detection_slowdown, detect_probability, checkpoint_model,
            total_cycles),
        dmr=dmr_slowdown_value,
    )
