"""Result analysis: statistics, reports, tradeoffs, figure data.

The :mod:`figures` module produces, for every table and figure of the
paper, the rows/series the benchmark harness prints; :mod:`tradeoff`
implements the Section V-C reliability/performance sweep.
"""

from repro.analysis.figures import ParetoPoint, pareto_front_series
from repro.analysis.report import (
    campaign_table,
    outcome_count_table,
    performance_table,
    sdc_drop_percent,
    vulnerability_table,
)
from repro.analysis.sweep import (
    SweepCellSummary,
    sdc_reduction_by_app,
    summarize_sweep,
    sweep_table,
)
from repro.analysis.tradeoff import TradeoffPoint, tradeoff_curve

__all__ = [
    "campaign_table",
    "outcome_count_table",
    "ParetoPoint",
    "pareto_front_series",
    "performance_table",
    "sdc_drop_percent",
    "vulnerability_table",
    "SweepCellSummary",
    "sdc_reduction_by_app",
    "summarize_sweep",
    "sweep_table",
    "TradeoffPoint",
    "tradeoff_curve",
]
