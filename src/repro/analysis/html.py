"""Deterministic, self-contained HTML reliability reports.

``render_html_report(store)`` turns a
:class:`~repro.obs.store.ResultsStore` into one static HTML page:
per-cell SDC Wilson CIs, the per-object vulnerability heatmap, the
outcome/cause taxonomy breakdown, adaptive-stop history, and every
warehoused ``BENCH_*`` snapshot flattened into tables.

Determinism is the whole design: no timestamps, no environment
fingerprints, fixed float formats, and every collection emitted in a
stable (store-defined) order — identical store contents render to
byte-identical HTML, which makes the report diffable and its bytes a
valid regression check.  The store's version stamps (library +
schema versions) are the only provenance in the header.
"""

from __future__ import annotations

import html as _html
from typing import Iterable

from repro.analysis.figures import vulnerability_heatmap
from repro.obs.provenance import vulnerability_profiles

_CSS = """
body { font-family: Georgia, serif; margin: 2em auto; max-width: 72em;
       color: #1a1a1a; }
h1 { border-bottom: 3px double #888; padding-bottom: 0.2em; }
h2 { margin-top: 2em; border-bottom: 1px solid #bbb; }
table { border-collapse: collapse; margin: 1em 0; font-size: 0.92em; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.6em;
         text-align: left; }
th { background: #f0f0eb; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.bar { background: #e8e8e2; position: relative; min-width: 12em; }
.bar span { position: absolute; top: 0; bottom: 0; left: 0;
            background: #b03a2e; opacity: 0.55; }
.bar b { position: relative; font-weight: normal; padding-left: 0.3em; }
.cell { text-align: center; min-width: 3.2em; }
.stamp { color: #666; font-size: 0.85em; }
.mono { font-family: monospace; font-size: 0.85em; }
"""


def _esc(value) -> str:
    return _html.escape(str(value), quote=True)


def _f(value: float, digits: int = 4) -> str:
    """Fixed-precision float text (the only float formatter used)."""
    return f"{value:.{digits}f}"


def _heat_color(fraction: float) -> str:
    """Deterministic background for one heatmap cell.

    White at 0 to a saturated red at 1; computed from the fraction
    rounded to 3 places so float noise cannot wiggle a byte.
    """
    level = round(max(0.0, min(1.0, fraction)), 3)
    red = 255 - int(level * 79)
    other = 255 - int(level * 197)
    return f"#{red:02x}{other:02x}{other:02x}"


def _table(headers: Iterable[str], rows: Iterable[Iterable[str]]) -> str:
    head = "".join(f"<th>{h}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(cells) + "</tr>" for cells in rows
    )
    return f"<table><tr>{head}</tr>{body}</table>"


def _td(text: str, cls: str = "", style: str = "") -> str:
    attrs = ""
    if cls:
        attrs += f' class="{cls}"'
    if style:
        attrs += f' style="{style}"'
    return f"<td{attrs}>{text}</td>"


def _section_header(store) -> str:
    # Only the store's *content* may appear — never its path, so two
    # stores holding the same corpus render byte-identical reports.
    meta = store.meta()
    stamps = ", ".join(
        f"{_esc(key)}={_esc(value)}" for key, value in sorted(meta.items())
    )
    return (
        "<h1>Reliability report</h1>\n"
        f'<p class="stamp">{stamps}</p>\n'
    )


def _section_cells(store) -> str:
    summaries = store.query()
    if not summaries:
        return "<h2>Campaign cells</h2>\n<p>No run cells warehoused.</p>\n"
    rows = []
    for cell in summaries:
        ci = cell["sdc_interval"]
        width_pct = _f(100.0 * min(1.0, ci["proportion"]), 1)
        bar = (
            f'<td class="bar"><span style="width:{width_pct}%"></span>'
            f'<b>{_f(ci["proportion"])} '
            f'[{_f(ci["low"])}, {_f(ci["high"])}]</b></td>'
        )
        rows.append([
            _td(_esc(cell["app"])),
            _td(_esc(cell["scheme"])),
            _td(_esc(cell["selection"])),
            _td(f'{cell["n_blocks"]}&times;{cell["n_bits"]}', "num"),
            _td(str(cell["runs"]), "num"),
            _td(str(cell["outcomes"].get("sdc", 0)), "num"),
            bar,
            _td(_f(ci["margin"]), "num"),
            _td(_esc(cell["digest"][:12]), "mono"),
        ])
    table = _table(
        ["app", "scheme", "selection", "faults", "runs", "SDC",
         "SDC rate (95% Wilson CI)", "margin", "cell"],
        rows,
    )
    return "<h2>Campaign cells</h2>\n" + table + "\n"


def _section_outcomes(store) -> str:
    summaries = store.query()
    outcome_names = sorted({
        name for cell in summaries for name in cell["outcomes"]
    })
    parts = ["<h2>Outcome and cause taxonomy</h2>\n"]
    if summaries and outcome_names:
        rows = []
        for cell in summaries:
            cells = [_td(_esc(cell["label"]))]
            cells += [
                _td(str(cell["outcomes"].get(name, 0)), "num")
                for name in outcome_names
            ]
            rows.append(cells)
        parts.append(_table(["cell"] + outcome_names, rows))
    causes = store.cause_counts()
    if causes:
        rows = [
            [_td(_esc(app)), _td(_esc(scheme)), _td(_esc(cause)),
             _td(str(count), "num")]
            for app, scheme, cause, count in causes
        ]
        parts.append("<h3>Provenance causes</h3>\n")
        parts.append(_table(["app", "scheme", "cause", "runs"], rows))
    if len(parts) == 1:
        parts.append("<p>No outcome data warehoused.</p>\n")
    return "".join(parts)


def _section_heatmap(store) -> str:
    records = store.provenance_records()
    parts = ["<h2>Per-object vulnerability heatmap</h2>\n"]
    if not records:
        parts.append("<p>No provenance records warehoused.</p>\n")
        return "".join(parts)
    heatmaps = vulnerability_heatmap(vulnerability_profiles(records))
    for heatmap in heatmaps:
        parts.append(
            f"<h3>{_esc(heatmap.app_name)} / "
            f"{_esc(heatmap.scheme_name)}</h3>\n"
        )
        rows = []
        for i, obj in enumerate(heatmap.objects):
            cells = [
                _td(_esc(obj)),
                _td(_esc(heatmap.regions[i])),
                _td(str(heatmap.runs[i]), "num"),
                _td(_f(heatmap.sdc_rates[i]), "num"),
            ]
            for j in range(len(heatmap.causes)):
                fraction = heatmap.matrix[i][j]
                cells.append(_td(
                    _f(fraction, 2), "cell",
                    f"background:{_heat_color(fraction)}",
                ))
            rows.append(cells)
        headers = (["object", "region", "runs", "SDC rate"]
                   + [_esc(c) for c in heatmap.causes])
        parts.append(_table(headers, rows))
    return "".join(parts)


def _section_adaptive(store) -> str:
    trails = store.decision_trails()
    parts = ["<h2>Adaptive stop history</h2>\n"]
    if not trails:
        parts.append("<p>No stop-decision trails warehoused.</p>\n")
        return "".join(parts)
    for trail in trails:
        parts.append(
            f"<h3>{_esc(trail['label'])} "
            f'<span class="mono">{_esc(trail["digest"][:12])}</span>'
            "</h3>\n"
        )
        rows = []
        for decision in trail["decisions"]:
            ci = decision["interval"]
            rows.append([
                _td(str(decision["committed"]), "num"),
                _td(str(decision["sdc"]), "num"),
                _td(_f(ci["proportion"]), "num"),
                _td(_f(ci["margin"]), "num"),
                _td("stop" if decision["stop"] else "continue"),
            ])
        parts.append(_table(
            ["committed", "SDC", "rate", "margin", "decision"], rows,
        ))
    return "".join(parts)


def _flatten(prefix: str, value, out: list) -> None:
    """Flatten nested JSON into sorted dotted-key scalar rows."""
    if isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key),
                     value[key], out)
    elif isinstance(value, list):
        for index, item in enumerate(value):
            _flatten(f"{prefix}[{index}]", item, out)
    else:
        if isinstance(value, float):
            text = _f(value)
        else:
            text = str(value)
        out.append((prefix, text))


def _section_bench(store) -> str:
    snapshots = store.bench_snapshots()
    parts = ["<h2>Benchmark trajectory</h2>\n"]
    if not snapshots:
        parts.append("<p>No bench snapshots warehoused.</p>\n")
        return "".join(parts)
    for entry in snapshots:
        parts.append(
            f"<h3>BENCH_{_esc(entry['name'])} "
            f'<span class="mono">{_esc(entry["digest"][:12])}</span>'
            "</h3>\n"
        )
        flat: list[tuple[str, str]] = []
        _flatten("", entry["snapshot"], flat)
        rows = [
            [_td(_esc(key), "mono"), _td(_esc(value), "num")]
            for key, value in flat
        ]
        parts.append(_table(["metric", "value"], rows))
    return "".join(parts)


def render_html_report(store) -> str:
    """Render the full reliability report for one results store.

    Byte-identical output for identical store contents — the function
    reads only the store (no clocks, no environment) and formats every
    number through fixed-precision specifiers.
    """
    body = "".join([
        _section_header(store),
        _section_cells(store),
        _section_outcomes(store),
        _section_heatmap(store),
        _section_adaptive(store),
        _section_bench(store),
    ])
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8">\n'
        "<title>repro reliability report</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        f"{body}"
        "</body>\n</html>\n"
    )


def write_html_report(store, path: str) -> int:
    """Write :func:`render_html_report` to ``path``; bytes written."""
    text = render_html_report(store)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(text)
    return len(text.encode("utf-8"))
