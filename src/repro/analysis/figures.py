"""Data generators for every table and figure of the paper.

Each ``figN_*``/``tableN_*`` function computes exactly the series or
rows the corresponding exhibit reports, so the benchmark harness (and
any notebook) can print or plot them without re-deriving methodology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.core.manager import ReliabilityManager
from repro.data.gpu_trends import L2_SIZE_TREND
from repro.faults.outcomes import Outcome
from repro.profiling.hot_objects import Table3Row
from repro.sim.metrics import SimReport

#: The paper's fault-injection grid: {1, 5} blocks x {2, 3, 4} bits.
FAULT_GRID: tuple[tuple[int, int], ...] = (
    (1, 2), (1, 3), (1, 4), (5, 2), (5, 3), (5, 4),
)


# ----------------------------------------------------------------------
# Figure 2 — L2 cache size trend
# ----------------------------------------------------------------------
def fig2_rows() -> list[tuple[str, str, int, float]]:
    """(vendor, model, year, L2 MiB) in chronological order."""
    return [
        (g.vendor, g.model, g.year, g.l2_mib) for g in L2_SIZE_TREND
    ]


# ----------------------------------------------------------------------
# Figure 3 — sorted normalized per-block access counts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig3Series:
    app_name: str
    normalized_counts: np.ndarray  # ascending, max-normalized
    max_min_ratio: float

    def tail_share(self, top_fraction: float = 0.05) -> float:
        """Fraction of accesses absorbed by the top ``top_fraction``
        of blocks — the 'few blocks take most accesses' statistic."""
        counts = np.sort(self.normalized_counts)
        k = max(1, int(round(top_fraction * counts.size)))
        total = counts.sum()
        return float(counts[-k:].sum() / total) if total else 0.0


def fig3_series(manager: ReliabilityManager) -> Fig3Series:
    """The Figure 3 series for one application."""
    profile = manager.profile
    return Fig3Series(
        app_name=manager.app.name,
        normalized_counts=profile.normalized_curve(),
        max_min_ratio=profile.max_min_ratio(),
    )


# ----------------------------------------------------------------------
# Figure 4 — warp sharing per block
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig4Series:
    app_name: str
    #: % of active warps per block, blocks sorted by access count asc.
    warp_share_percent: np.ndarray
    hot_mean_share: float
    rest_mean_share: float


def fig4_series(manager: ReliabilityManager) -> Fig4Series:
    """The Figure 4 series for one application."""
    from repro.profiling.warp_sharing import (
        hot_vs_rest_sharing,
        warp_sharing_curve,
    )

    curve = warp_sharing_curve(manager.profile)
    hot_addrs = {
        addr
        for obj in manager.app.hot_objects(manager.memory)
        for addr in obj.block_addrs()
    }
    hot_mean, rest_mean = hot_vs_rest_sharing(manager.profile, hot_addrs)
    return Fig4Series(
        app_name=manager.app.name,
        warp_share_percent=curve,
        hot_mean_share=hot_mean,
        rest_mean_share=rest_mean,
    )


# ----------------------------------------------------------------------
# Figure 6 — SDCs: faults in hot vs rest blocks (motivation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig6Cell:
    app_name: str
    space: str  # "hot" | "rest"
    n_blocks: int
    n_bits: int
    sdc: int
    crash: int
    masked: int
    runs: int


def fig6_grid(
    manager: ReliabilityManager, runs: int, seed: int = 20210621
) -> list[Fig6Cell]:
    """The Figure 6 grid: both spaces x the fault grid."""
    cells = []
    for space in ("hot", "rest"):
        for n_blocks, n_bits in FAULT_GRID:
            result = manager.motivation(
                space, runs=runs, n_blocks=n_blocks, n_bits=n_bits,
                seed=seed,
            )
            cells.append(
                Fig6Cell(
                    app_name=manager.app.name,
                    space=space,
                    n_blocks=n_blocks,
                    n_bits=n_bits,
                    sdc=result.sdc_count,
                    crash=result.count(Outcome.CRASH),
                    masked=result.count(Outcome.MASKED),
                    runs=result.n_runs,
                )
            )
    return cells


# ----------------------------------------------------------------------
# Figure 7 — performance vs cumulative protection level
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig7Row:
    app_name: str
    scheme: str
    n_protected: int
    norm_time: float
    norm_missed_accesses: float
    replica_transactions: int


def fig7_sweep(
    manager: ReliabilityManager,
) -> tuple[SimReport, list[Fig7Row]]:
    """Baseline report plus one row per (scheme, protection level)."""
    baseline = manager.simulate_performance("baseline", "none")
    rows = []
    n_objects = len(manager.app.object_importance)
    for scheme in ("detection", "correction"):
        for level in range(1, n_objects + 1):
            report = manager.simulate_performance(scheme, level)
            rows.append(
                Fig7Row(
                    app_name=manager.app.name,
                    scheme=scheme,
                    n_protected=level,
                    norm_time=report.slowdown_vs(baseline),
                    norm_missed_accesses=report.missed_accesses_vs(
                        baseline),
                    replica_transactions=report.replica_transactions,
                )
            )
    return baseline, rows


# ----------------------------------------------------------------------
# Figure 9 — SDC outcomes vs cumulative protection level (evaluation)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Fig9Cell:
    app_name: str
    scheme: str
    n_protected: int
    n_blocks: int
    n_bits: int
    sdc: int
    detected: int
    corrected: int
    crash: int
    runs: int


def fig9_grid(
    manager: ReliabilityManager,
    scheme: str,
    runs: int,
    levels: list[int] | None = None,
    grid: tuple[tuple[int, int], ...] = FAULT_GRID,
    selection: str = "access-weighted",
    seed: int = 20210621,
) -> list[Fig9Cell]:
    """The Figure 9 grid: protection levels x the fault grid."""
    if levels is None:
        levels = list(range(len(manager.app.object_importance) + 1))
    cells = []
    for level in levels:
        for n_blocks, n_bits in grid:
            result = manager.evaluate(
                scheme=scheme if level else "baseline",
                protect=level,
                runs=runs,
                n_blocks=n_blocks,
                n_bits=n_bits,
                selection=selection,
                seed=seed,
            )
            cells.append(
                Fig9Cell(
                    app_name=manager.app.name,
                    scheme=scheme if level else "baseline",
                    n_protected=level,
                    n_blocks=n_blocks,
                    n_bits=n_bits,
                    sdc=result.sdc_count,
                    detected=result.count(Outcome.DETECTED),
                    corrected=result.count(Outcome.CORRECTED),
                    crash=result.count(Outcome.CRASH),
                    runs=result.n_runs,
                )
            )
    return cells


def average_sdc_drop(
    cells: list[Fig9Cell], hot_level: int, include_crashes: bool = False
) -> float:
    """Mean drop (baseline -> hot protection) over the fault grid,
    skipping configurations whose baseline produced nothing to drop.

    With ``include_crashes`` the drop is over *bad outcomes*
    (SDC + crash).  This model separates crashes from SDCs (the paper
    folds loud failures out of its SDC counts), so the bad-outcome
    drop is the apples-to-apples headline: a run that would have
    crashed at baseline and completes-but-deviates under protection
    otherwise books as a negative SDC drop.
    """
    def bad(cell: Fig9Cell) -> int:
        return cell.sdc + (cell.crash if include_crashes else 0)

    drops = []
    by_key = {
        (c.n_protected, c.n_blocks, c.n_bits): c for c in cells
    }
    for n_blocks, n_bits in FAULT_GRID:
        base = by_key.get((0, n_blocks, n_bits))
        prot = by_key.get((hot_level, n_blocks, n_bits))
        if base is None or prot is None or bad(base) == 0:
            continue
        drops.append(100.0 * (bad(base) - bad(prot)) / bad(base))
    return float(np.mean(drops)) if drops else 0.0


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
def table1_rows(config: GpuConfig = PAPER_CONFIG) \
        -> list[tuple[str, str]]:
    """Table I (category, configuration) rows."""
    return config.describe()


def table2_rows() -> list[tuple[str, str, str]]:
    """(application, output format, error metric) as in Table II."""
    from repro.kernels.registry import APPLICATIONS, create_app

    formats = {
        "C-NN": "Vector Classifications",
        "P-BICG": "Result Vector",
        "P-GESUMMV": "Result Vector",
        "P-MVT": "Result Vector",
        "A-Laplacian": "Filtered Image",
        "A-Meanfilter": "Filtered Image",
        "A-Sobel": "Edge Detected Image",
        "A-SRAD": "Image",
    }
    rows = []
    for name in APPLICATIONS:
        app = create_app(name, scale="small")
        rows.append(
            (name, formats[name], app.error_metric.description)
        )
    return rows


def table3_rows(
    managers: list[ReliabilityManager],
) -> list[Table3Row]:
    """Table III rows for the given applications."""
    return [m.table3() for m in managers]


# ----------------------------------------------------------------------
# Per-object vulnerability heatmap (provenance attribution)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VulnerabilityHeatmap:
    """Objects x provenance causes for one (app, scheme) cell.

    ``matrix[i][j]`` is the fraction of runs attributed to
    ``objects[i]`` whose cause was ``causes[j]`` (rows sum to 1 for
    any object with runs); ``sdc_rates[i]`` is the object's SDC
    attribution rate — together the data behind a DVF-style "which
    object is how vulnerable, and why" heatmap.
    """

    app_name: str
    scheme_name: str
    objects: tuple[str, ...]
    regions: tuple[str, ...]
    causes: tuple[str, ...]
    matrix: tuple[tuple[float, ...], ...]
    sdc_rates: tuple[float, ...]
    runs: tuple[int, ...]


def vulnerability_heatmap(profiles) -> list[VulnerabilityHeatmap]:
    """One heatmap per (app, scheme) from vulnerability profiles.

    ``profiles`` are the output of
    :func:`repro.obs.provenance.vulnerability_profiles` (already
    sorted by app/scheme/object), so the heatmaps — like everything
    derived from provenance streams — are deterministic for a given
    campaign.
    """
    from repro.obs.provenance import PROVENANCE_CAUSES

    cells: dict[tuple[str, str], list] = {}
    for profile in profiles:
        cells.setdefault((profile.app, profile.scheme), []) \
            .append(profile)
    heatmaps = []
    for (app, scheme), group in sorted(cells.items()):
        matrix = []
        for p in group:
            total = max(p.runs, 1)
            matrix.append(tuple(
                p.cause_counts.get(cause, 0) / total
                for cause in PROVENANCE_CAUSES
            ))
        heatmaps.append(VulnerabilityHeatmap(
            app_name=app,
            scheme_name=scheme,
            objects=tuple(p.object for p in group),
            regions=tuple(p.region for p in group),
            causes=PROVENANCE_CAUSES,
            matrix=tuple(matrix),
            sdc_rates=tuple(p.sdc_rate for p in group),
            runs=tuple(p.runs for p in group),
        ))
    return heatmaps


# ----------------------------------------------------------------------
# Pareto front — reliability / overhead / footprint design space
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParetoPoint:
    """One design-space configuration in the Pareto-front figure.

    ``on_front`` distinguishes the non-dominated configurations from
    the dominated remainder (plotted greyed-out for context);
    ``sdc_reduction`` is the percent of baseline SDCs the
    configuration removes.
    """

    app_name: str
    label: str
    digest: str
    sdc_rate: float
    overhead: float
    replica_bytes: int
    sdc_reduction: float
    on_front: bool


def pareto_front_series(result) -> list[ParetoPoint]:
    """Figure data from an :class:`~repro.search.engine.OptimizeResult`.

    Every evaluated configuration becomes one point, front members
    flagged, in canonical (objectives, digest) order — so the series,
    like the search it came from, is identical at any ``--jobs``.
    """
    on_front = {e.digest for e in result.front}
    return [
        ParetoPoint(
            app_name=result.app,
            label=e.point.label,
            digest=e.digest,
            sdc_rate=e.sdc_rate,
            overhead=e.overhead,
            replica_bytes=e.replica_bytes,
            sdc_reduction=result.sdc_reduction(e),
            on_front=e.digest in on_front,
        )
        for e in result.evaluations
    ]
