"""Reliability/performance tradeoff sweep (the paper's Section V-C).

For each cumulative protection level (0..N objects, Figs 7/9 x-axis)
run one timing simulation and one fault campaign, yielding the curve
from which a user picks their operating point: protecting exactly the
hot objects buys nearly the whole SDC reduction at a sliver of the
full-replication cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.manager import ReliabilityManager


@dataclass(frozen=True)
class TradeoffPoint:
    """One protection level of the sweep."""

    n_protected: int
    protected_names: tuple[str, ...]
    slowdown: float
    missed_accesses_ratio: float
    sdc_count: int
    detected_count: int
    corrected_count: int
    runs: int

    @property
    def sdc_rate(self) -> float:
        return self.sdc_count / self.runs if self.runs else 0.0


def tradeoff_curve(
    manager: ReliabilityManager,
    scheme: str = "correction",
    runs: int = 200,
    n_blocks: int = 1,
    n_bits: int = 2,
    selection: str = "access-weighted",
    seed: int = 20210621,
    jobs: int | None = None,
    telemetry=None,
    metrics=None,
) -> list[TradeoffPoint]:
    """Sweep protection from 0 to all input objects.

    ``jobs`` sets the campaign worker-process count per level
    (defaults to the manager's setting).  ``telemetry`` is an optional
    :class:`~repro.obs.records.TelemetryWriter`: each level's campaign
    then collects per-run records and appends them, in level order, to
    the writer (one sweep -> one JSONL file).  ``metrics`` optionally
    receives campaign and simulator observability.
    """
    from repro.faults.outcomes import Outcome

    baseline_sim = manager.simulate_performance(
        "baseline", "none", metrics=metrics
    )
    points = []
    n_objects = len(manager.app.object_importance)
    for level in range(n_objects + 1):
        names = manager.protected_names(level)
        if level == 0:
            sim = baseline_sim
        else:
            sim = manager.simulate_performance(
                scheme, level, metrics=metrics
            )
        campaign = manager.evaluate(
            scheme=scheme if level else "baseline",
            protect=level,
            runs=runs,
            n_blocks=n_blocks,
            n_bits=n_bits,
            selection=selection,
            seed=seed,
            jobs=jobs,
            collect_records=telemetry is not None,
            metrics=metrics,
        )
        if telemetry is not None:
            telemetry.write_result(campaign)
        points.append(
            TradeoffPoint(
                n_protected=level,
                protected_names=names,
                slowdown=sim.slowdown_vs(baseline_sim),
                missed_accesses_ratio=sim.missed_accesses_vs(baseline_sim),
                sdc_count=campaign.sdc_count,
                detected_count=campaign.count(Outcome.DETECTED),
                corrected_count=campaign.count(Outcome.CORRECTED),
                runs=campaign.n_runs,
            )
        )
    return points


def knee_point(points: list[TradeoffPoint]) -> TradeoffPoint:
    """The sweet spot: the cheapest level achieving (nearly) the best
    reliability — lowest SDC count, ties broken by lowest slowdown."""
    if not points:
        raise ValueError("empty tradeoff curve")
    best_sdc = min(p.sdc_count for p in points)
    candidates = [p for p in points if p.sdc_count <= best_sdc]
    return min(candidates, key=lambda p: (p.slowdown, p.n_protected))
