"""Plain-text reporting of campaign and simulation results."""

from __future__ import annotations

from typing import Sequence

from repro.faults.campaign import CampaignResult
from repro.faults.outcomes import Outcome
from repro.sim.metrics import SimReport
from repro.utils.tables import TextTable


def sdc_drop_percent(
    baseline: CampaignResult, protected: CampaignResult
) -> float:
    """Percentage drop in SDC outcomes relative to the baseline (the
    paper's headline 98.97% statistic).

    A baseline with zero SDCs yields 0.0 (nothing to drop) rather than
    a division error, so averages over many configurations stay sane.
    """
    if baseline.sdc_count == 0:
        return 0.0
    drop = baseline.sdc_count - protected.sdc_count
    return 100.0 * drop / baseline.sdc_count


def campaign_table(results: Sequence[CampaignResult]) -> TextTable:
    """One row per campaign: configuration and outcome counts."""
    table = TextTable(
        [
            "app", "scheme", "selection", "blocks", "bits", "runs",
            "masked", "sdc", "detected", "corrected", "crash", "sdc%",
        ],
        float_format="{:.2f}",
    )
    for r in results:
        table.add_row(
            [
                r.app_name,
                r.scheme_name,
                r.selection_name,
                r.config.n_blocks,
                r.config.n_bits,
                r.n_runs,
                r.count(Outcome.MASKED),
                r.count(Outcome.SDC),
                r.count(Outcome.DETECTED),
                r.count(Outcome.CORRECTED),
                r.count(Outcome.CRASH),
                100.0 * r.sdc_rate,
            ]
        )
    return table


def performance_table(
    reports: Sequence[SimReport], baseline: SimReport
) -> TextTable:
    """One row per timing run, normalized to the baseline (Fig 7)."""
    table = TextTable(
        [
            "app", "scheme", "protected", "cycles", "norm-time",
            "L1-missed", "norm-missed", "replicas",
        ],
        float_format="{:.3f}",
    )
    for r in reports:
        table.add_row(
            [
                r.app_name,
                r.scheme_name,
                len(r.protected_names),
                r.cycles,
                r.slowdown_vs(baseline),
                r.l1_missed_accesses,
                r.missed_accesses_vs(baseline),
                r.replica_transactions,
            ]
        )
    return table


def vulnerability_table(profiles: Sequence) -> TextTable:
    """One row per (app, scheme, object) vulnerability profile.

    ``profiles`` come from
    :func:`repro.obs.provenance.vulnerability_profiles`; this is the
    text body of ``repro vuln``.  ``top cause`` is the object's most
    frequent provenance cause (ties break alphabetically, so the
    rendering is deterministic).
    """
    table = TextTable(
        [
            "app", "scheme", "object", "region", "liveness", "runs",
            "sdc", "sdc%", "±", "due", "masked", "reads@risk",
            "top cause",
        ],
        float_format="{:.2f}",
    )
    for p in profiles:
        interval = p.sdc_interval()
        top_cause = ""
        if p.cause_counts:
            top_cause = min(
                p.cause_counts, key=lambda c: (-p.cause_counts[c], c)
            )
        table.add_row(
            [
                p.app,
                p.scheme,
                p.object,
                p.region,
                p.liveness,
                p.runs,
                p.sdc_count,
                100.0 * p.sdc_rate,
                100.0 * interval.margin,
                p.due_count,
                p.outcome_counts["masked"],
                p.reads_at_risk,
                top_cause,
            ]
        )
    return table
