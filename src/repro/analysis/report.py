"""Plain-text reporting of campaign and simulation results."""

from __future__ import annotations

from typing import Sequence

from repro.faults.campaign import CampaignResult
from repro.faults.outcomes import Outcome
from repro.sim.metrics import SimReport
from repro.utils.tables import TextTable


def sdc_drop_percent(
    baseline: CampaignResult, protected: CampaignResult
) -> float:
    """Percentage drop in SDC outcomes relative to the baseline (the
    paper's headline 98.97% statistic).

    A baseline with zero SDCs yields 0.0 (nothing to drop) rather than
    a division error, so averages over many configurations stay sane.
    """
    if baseline.sdc_count == 0:
        return 0.0
    drop = baseline.sdc_count - protected.sdc_count
    return 100.0 * drop / baseline.sdc_count


def outcome_count_table(
    identity_headers: Sequence[str],
    entries: Sequence[tuple],
    extra_headers: Sequence[str] = (),
    float_format: str = "{:.2f}",
) -> TextTable:
    """The canonical outcome-count table every surface renders.

    One renderer for every "identity columns + runs + one column per
    :class:`~repro.faults.outcomes.Outcome` + SDC percentage" table
    (``repro campaign``, ``repro stats``, ``repro vuln``), so the
    column order and number formats cannot drift between subcommands.
    ``entries`` yield ``(identity_cells, runs, outcome_counts,
    extra_cells)`` with ``outcome_counts`` keyed by outcome value
    (missing outcomes count zero).
    """
    table = TextTable(
        [
            *identity_headers, "runs",
            *[o.value for o in Outcome], "sdc%",
            *extra_headers,
        ],
        float_format=float_format,
    )
    for identity, runs, counts, extras in entries:
        sdc = counts.get(Outcome.SDC.value, 0)
        table.add_row(
            [
                *identity, runs,
                *[counts.get(o.value, 0) for o in Outcome],
                100.0 * sdc / runs if runs else 0.0,
                *extras,
            ]
        )
    return table


def campaign_table(results: Sequence[CampaignResult]) -> TextTable:
    """One row per campaign: configuration and outcome counts."""
    return outcome_count_table(
        ("app", "scheme", "selection", "blocks", "bits"),
        [
            (
                (r.app_name, r.scheme_name, r.selection_name,
                 r.config.n_blocks, r.config.n_bits),
                r.n_runs,
                {o.value: r.count(o) for o in Outcome},
                (),
            )
            for r in results
        ],
    )


def performance_table(
    reports: Sequence[SimReport], baseline: SimReport
) -> TextTable:
    """One row per timing run, normalized to the baseline (Fig 7)."""
    table = TextTable(
        [
            "app", "scheme", "protected", "cycles", "norm-time",
            "L1-missed", "norm-missed", "replicas",
        ],
        float_format="{:.3f}",
    )
    for r in reports:
        table.add_row(
            [
                r.app_name,
                r.scheme_name,
                len(r.protected_names),
                r.cycles,
                r.slowdown_vs(baseline),
                r.l1_missed_accesses,
                r.missed_accesses_vs(baseline),
                r.replica_transactions,
            ]
        )
    return table


def vulnerability_table(profiles: Sequence) -> TextTable:
    """One row per (app, scheme, object) vulnerability profile.

    ``profiles`` come from
    :func:`repro.obs.provenance.vulnerability_profiles`; this is the
    text body of ``repro vuln``, rendered through the shared
    :func:`outcome_count_table`.  ``top cause`` is the object's most
    frequent provenance cause (ties break alphabetically, so the
    rendering is deterministic).
    """
    entries = []
    for p in profiles:
        top_cause = ""
        if p.cause_counts:
            top_cause = min(
                p.cause_counts, key=lambda c: (-p.cause_counts[c], c)
            )
        entries.append(
            (
                (p.app, p.scheme, p.object, p.region, p.liveness),
                p.runs,
                dict(p.outcome_counts),
                (100.0 * p.sdc_interval().margin, p.reads_at_risk,
                 top_cause),
            )
        )
    return outcome_count_table(
        ("app", "scheme", "object", "region", "liveness"),
        entries,
        extra_headers=("±", "reads@risk", "top cause"),
    )
