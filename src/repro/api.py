"""The stable public API of :mod:`repro`.

This module is the one import surface with a compatibility promise:
everything in ``__all__`` below keeps its name, location and calling
convention across minor releases, and ``tests/test_package_surface.py``
snapshots the list so an accidental change fails CI.  Internals
(``repro.sim``, ``repro.arch``, scheme implementation classes, worker
entry points) may move freely between releases — import them from
their defining modules at your own risk.

Deprecation policy: when a name or keyword here is renamed, the old
spelling keeps working for at least one minor release, emitting a
``DeprecationWarning`` exactly once per process, and is removed only
on a major version bump.  See docs/API.md for the vocabulary
(``jobs``, ``runs``, ``seed``, ``scheme``, ``protect``) and the
current deprecations.

Quickstart::

    from repro.api import ReliabilityManager, create_app

    manager = ReliabilityManager(create_app("P-BICG"))
    result = manager.evaluate(scheme="correction", protect="hot",
                              runs=1000, jobs=4)

    # Grid sweeps with durable, resumable progress:
    from repro.api import Session, SessionConfig, SweepSpec

    spec = SweepSpec(apps=("P-BICG", "A-Laplacian"),
                     schemes=("baseline", "correction"),
                     protects=("hot",), runs=1000)
    session = Session(spec, store="sweep.ckpt",
                      config=SessionConfig(jobs=8))
    sweep = session.run(resume=True)

    # One request value drives every entry point:
    from repro.api import EvaluationRequest, ProtectionSpec

    request = EvaluationRequest(app="P-BICG", runs=1000, jobs=4,
                                protect=ProtectionSpec.parse(
                                    "p=correction,r=detection"))
    result = manager.evaluate(request=request)

    # Design-space exploration with Pareto-front extraction:
    from repro.api import optimize

    search = optimize(app="P-BICG", strategy="greedy", runs=500,
                      store="dse.ckpt", resume=True,
                      max_overhead=0.02)
    print(search.best, search.front)
"""

from repro import __version__
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.core.manager import ReliabilityManager
from repro.core.protection import ProtectionSpec
from repro.core.request import EvaluationRequest
from repro.errors import (
    CheckpointError,
    ConfigError,
    FaultDetected,
    KernelCrash,
    MetricsError,
    ReproError,
    SessionError,
    SessionInterrupted,
    SpecError,
    StoreError,
    TelemetryError,
    UnknownAppError,
    UnknownSchemeError,
)
from repro.faults.adaptive import (
    AdaptiveConfig,
    AdaptiveResult,
    StopDecision,
)
from repro.faults.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
)
from repro.faults.outcomes import Outcome, RunResult
from repro.faults.selection import StratifiedSelection, stratify_by_object
from repro.kernels.registry import (
    APPLICATIONS,
    FLAT_APPLICATIONS,
    create_app,
    resilience_apps,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import ProgressEvent, TtyProgress
from repro.obs.provenance import (
    ProvenanceRecord,
    ProvenanceWriter,
    VulnerabilityProfile,
    read_provenance,
    vulnerability_profiles,
)
from repro.obs.records import (
    RunRecord,
    TelemetryWriter,
    read_decisions,
    read_records,
    write_decisions,
)
from repro.utils.stats import (
    ConfidenceInterval,
    confidence_interval,
    runs_for_margin,
    stratified_interval,
)
from repro.obs.session import SessionLog, read_session_events
from repro.obs.store import ResultsStore, ingest_files
from repro.analysis.html import render_html_report, write_html_report
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.executor import CampaignExecutor
from repro.runtime.session import (
    CellSpec,
    Session,
    SessionConfig,
    SweepResult,
    SweepSpec,
    run_sweep,
)
from repro.analysis.figures import ParetoPoint, pareto_front_series
from repro.analysis.sweep import summarize_sweep
from repro.analysis.tradeoff import tradeoff_curve
from repro.obs.search import read_search_trail
from repro.search.engine import OptimizeResult, optimize
from repro.search.pareto import Evaluation, budget_best, pareto_front
from repro.search.space import DesignPoint, DesignSpace

__all__ = [
    # applications
    "APPLICATIONS",
    "FLAT_APPLICATIONS",
    "create_app",
    "resilience_apps",
    # end-to-end management and the unified evaluation surface
    "ReliabilityManager",
    "EvaluationRequest",
    "ProtectionSpec",
    "GpuConfig",
    "PAPER_CONFIG",
    # campaigns
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CampaignExecutor",
    "Outcome",
    "RunResult",
    # adaptive campaigns and statistics
    "AdaptiveConfig",
    "AdaptiveResult",
    "StopDecision",
    "ConfidenceInterval",
    "confidence_interval",
    "runs_for_margin",
    "stratified_interval",
    "StratifiedSelection",
    "stratify_by_object",
    # sweep sessions
    "SweepSpec",
    "CellSpec",
    "Session",
    "SessionConfig",
    "SweepResult",
    "CheckpointStore",
    "run_sweep",
    "summarize_sweep",
    "tradeoff_curve",
    # design-space exploration
    "optimize",
    "OptimizeResult",
    "DesignPoint",
    "DesignSpace",
    "Evaluation",
    "pareto_front",
    "budget_best",
    "ParetoPoint",
    "pareto_front_series",
    "read_search_trail",
    # observability
    "MetricsRegistry",
    "RunRecord",
    "TelemetryWriter",
    "read_records",
    "write_decisions",
    "read_decisions",
    "SessionLog",
    "read_session_events",
    # provenance and vulnerability attribution
    "ProvenanceRecord",
    "ProvenanceWriter",
    "read_provenance",
    "VulnerabilityProfile",
    "vulnerability_profiles",
    # results warehouse, reporting and live progress
    "ResultsStore",
    "ingest_files",
    "render_html_report",
    "write_html_report",
    "ProgressEvent",
    "TtyProgress",
    # errors
    "ReproError",
    "ConfigError",
    "SpecError",
    "UnknownAppError",
    "UnknownSchemeError",
    "CheckpointError",
    "SessionError",
    "SessionInterrupted",
    "StoreError",
    "TelemetryError",
    "MetricsError",
    "FaultDetected",
    "KernelCrash",
    # metadata
    "__version__",
]
