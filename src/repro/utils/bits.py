"""Bit-level helpers shared by the ECC codec and the fault injector.

All functions operate on non-negative Python integers interpreted as
fixed-width words (the width is passed explicitly where it matters).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def bit_count(value: int) -> int:
    """Number of set bits in ``value`` (population count)."""
    if value < 0:
        raise ValueError("bit_count expects a non-negative integer")
    return value.bit_count()


def flip_bits(value: int, positions: Iterable[int]) -> int:
    """Return ``value`` with each bit in ``positions`` inverted."""
    result = value
    for pos in positions:
        if pos < 0:
            raise ValueError(f"negative bit position {pos}")
        result ^= 1 << pos
    return result


def set_bits(value: int, positions: Iterable[int], bit: int) -> int:
    """Return ``value`` with each position forced to ``bit`` (0 or 1).

    Models a *stuck-at* fault: the returned word reads as if the listed
    cells were stuck at the given logic level.
    """
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    result = value
    for pos in positions:
        if pos < 0:
            raise ValueError(f"negative bit position {pos}")
        if bit:
            result |= 1 << pos
        else:
            result &= ~(1 << pos)
    return result


def extract_bits(value: int, positions: Sequence[int]) -> int:
    """Pack the bits of ``value`` at ``positions`` into a new integer.

    ``positions[0]`` becomes bit 0 of the result, ``positions[1]`` bit 1,
    and so on.  Used by the SECDED codec to gather parity groups.
    """
    result = 0
    for out_pos, in_pos in enumerate(positions):
        if (value >> in_pos) & 1:
            result |= 1 << out_pos
    return result


def hamming_distance(a: int, b: int) -> int:
    """Number of bit positions at which ``a`` and ``b`` differ."""
    return bit_count(a ^ b)


def word_to_bits(value: int, width: int) -> list[int]:
    """Little-endian list of ``width`` bits of ``value``."""
    if value < 0:
        raise ValueError("word_to_bits expects a non-negative integer")
    if value >> width:
        raise ValueError(f"value {value:#x} does not fit in {width} bits")
    return [(value >> i) & 1 for i in range(width)]


def bits_to_word(bits: Sequence[int]) -> int:
    """Inverse of :func:`word_to_bits`."""
    value = 0
    for i, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit {i} is {bit}, expected 0 or 1")
        value |= bit << i
    return value
