"""Canonical JSON: one byte representation per value.

Checkpoint files, sweep manifests and telemetry records are all
compared byte-for-byte in the determinism tests, so every JSON we
persist goes through the same encoder: sorted keys, minimal
separators, no trailing whitespace.  ``canonical_digest`` is the
content address used by the checkpoint store.
"""

from __future__ import annotations

import hashlib
import json


def canonical_json(obj) -> str:
    """Encode ``obj`` as canonical single-line JSON."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def canonical_digest(obj) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    encoded = canonical_json(obj).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
