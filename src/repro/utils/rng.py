"""Deterministic random-number streams for reproducible campaigns.

A fault-injection campaign runs thousands of independent experiments;
each experiment must be reproducible in isolation (so a single SDC run
can be replayed for debugging) while the campaign as a whole stays
statistically sound.  We derive one child seed per (campaign seed,
run index) pair using ``numpy``'s SeedSequence spawning.
"""

from __future__ import annotations

import numpy as np


def derive_seed(root_seed: int, *keys: int) -> int:
    """Derive a 63-bit child seed from a root seed and integer keys.

    The derivation is stable across processes and numpy versions that
    keep SeedSequence semantics (all modern ones do).
    """
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(keys))
    return int(seq.generate_state(1, dtype=np.uint64)[0] >> 1)


class RngStream:
    """A named, seeded random stream wrapping ``numpy.random.Generator``.

    Thin wrapper so call sites read as intent ("pick a word in the
    block") rather than as generic RNG calls.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._child_pool: list["RngStream"] = []

    def child(self, *keys: int) -> "RngStream":
        """Independent child stream identified by integer keys."""
        return RngStream(derive_seed(self.seed, *keys))

    def child_pool(self, n: int) -> list["RngStream"]:
        """The first ``n`` integer-keyed children, derived once.

        ``child_pool(n)[i]`` is seeded identically to ``child(i)``;
        repeated calls return the *same* stream objects instead of
        re-deriving them, so a caller that needs child ``i`` more than
        once (e.g. per fault in a multi-block run) pays the
        SeedSequence derivation only once.  Because the pooled streams
        are shared, draws consume state across calls — callers needing
        a fresh stream must use :meth:`child`.
        """
        pool = self._child_pool
        while len(pool) < n:
            pool.append(self.child(len(pool)))
        return pool[:n]

    def choice_index(self, n: int) -> int:
        """Uniform index in ``[0, n)``."""
        if n <= 0:
            raise ValueError(f"cannot choose from {n} items")
        return int(self._rng.integers(0, n))

    def sample_indices(self, n: int, k: int) -> list[int]:
        """``k`` distinct uniform indices from ``[0, n)``."""
        if k > n:
            raise ValueError(f"cannot sample {k} distinct items from {n}")
        return [int(i) for i in self._rng.choice(n, size=k, replace=False)]

    def weighted_index(self, weights) -> int:
        """Index drawn with probability proportional to ``weights``."""
        w = np.asarray(weights, dtype=np.float64)
        if w.ndim != 1 or w.size == 0:
            raise ValueError("weights must be a non-empty 1-D sequence")
        if np.any(w < 0):
            raise ValueError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must not all be zero")
        return int(self._rng.choice(w.size, p=w / total))

    def weighted_indices(self, weights, k: int) -> list[int]:
        """``k`` distinct indices drawn without replacement, weighted."""
        w = np.asarray(weights, dtype=np.float64)
        nonzero = int(np.count_nonzero(w))
        if k > nonzero:
            raise ValueError(
                f"cannot draw {k} distinct indices from {nonzero} "
                "non-zero-weight items"
            )
        total = w.sum()
        picks = self._rng.choice(w.size, size=k, replace=False, p=w / total)
        return [int(i) for i in picks]

    def prepared_weighted_indices(self, p: np.ndarray, k: int) -> list[int]:
        """Like :meth:`weighted_indices` with pre-normalized weights.

        ``p`` must equal ``weights / weights.sum()`` element-for-
        element; the draw then consumes the generator identically to
        :meth:`weighted_indices`, so samplers that are called thousands
        of times per campaign can hoist the normalization out of the
        loop without perturbing reproducibility.
        """
        picks = self._rng.choice(p.size, size=k, replace=False, p=p)
        return [int(i) for i in picks]

    def coin(self) -> int:
        """A fair coin flip returning 0 or 1 (stuck-at polarity)."""
        return int(self._rng.integers(0, 2))

    def bit_positions(self, width: int, k: int) -> list[int]:
        """``k`` distinct bit positions within a ``width``-bit word."""
        return self.sample_indices(width, k)

    @property
    def generator(self) -> np.random.Generator:
        """Escape hatch: the underlying numpy Generator."""
        return self._rng
