"""Small shared utilities: bit manipulation, RNG streams, statistics,
and plain-text table rendering used by reports and benches."""

from repro.utils.bits import (
    bit_count,
    extract_bits,
    flip_bits,
    hamming_distance,
    set_bits,
    word_to_bits,
)
from repro.utils.rng import RngStream, derive_seed
from repro.utils.stats import (
    RunningStat,
    confidence_interval,
    geometric_mean,
    normalized,
)
from repro.utils.tables import TextTable

__all__ = [
    "bit_count",
    "extract_bits",
    "flip_bits",
    "hamming_distance",
    "set_bits",
    "word_to_bits",
    "RngStream",
    "derive_seed",
    "RunningStat",
    "confidence_interval",
    "geometric_mean",
    "normalized",
    "TextTable",
]
