"""Plain-text table rendering for reports and bench output.

The bench harness prints the same rows the paper's tables and figures
report; this module renders them legibly without any plotting
dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """A fixed-column text table with simple alignment.

    >>> t = TextTable(["app", "overhead"])
    >>> t.add_row(["C-NN", 0.012])
    >>> print(t.render())  # doctest: +SKIP
    """

    def __init__(self, headers: Sequence[str], float_format: str = "{:.4f}"):
        if not headers:
            raise ValueError("a table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.float_format = float_format
        self._rows: list[list[str]] = []

    def add_row(self, values: Sequence[Any]) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, table has "
                f"{len(self.headers)} columns"
            )
        self._rows.append([self._format(v) for v in values])

    def _format(self, value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return self.float_format.format(value)
        return str(value)

    @property
    def row_count(self) -> int:
        return len(self._rows)

    def render(self, indent: str = "") -> str:
        """Format the table as aligned plain text."""
        widths = [len(h) for h in self.headers]
        for row in self._rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        header = "  ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        )
        rule = "  ".join("-" * w for w in widths)
        lines.append(indent + header)
        lines.append(indent + rule)
        for row in self._rows:
            lines.append(
                indent
                + "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
