"""Vectorized seed derivation and cheap Generator construction.

The batched propagation engine plans thousands of per-run fault draws
per second, and the scalar path pays two ``SeedSequence`` derivations
plus two ``default_rng`` constructions per run — more time than the
draws themselves.  This module reimplements exactly the two pieces of
numpy that dominate that cost:

* :func:`derive_seeds` — ``SeedSequence(entropy=root,
  spawn_key=(k,)).generate_state(1, uint64) >> 1`` for a whole vector
  of keys at once (the entropy-pool hash runs as uint32 array sweeps
  across lanes);
* :func:`make_generator` — a ``Generator`` seeded identically to
  ``np.random.default_rng(seed)`` but built by injecting the PCG64
  state computed directly from the seed's entropy pool, which is
  roughly 10x cheaper than the constructor.

Both are *emulations* of numpy internals, so they are trusted only
after :func:`self_check` has compared them against the real
implementation in this process; callers must fall back to the scalar
path when it fails.  The check is cheap and runs once per process.

:func:`weighted_choice` mirrors ``Generator.choice(n, size=k,
replace=False, p=p)`` draw-for-draw (the same uniform variates are
consumed from the generator), because numpy's implementation of that
call carries large constant overhead per invocation.
"""

from __future__ import annotations

import numpy as np

#: SeedSequence entropy-pool constants (numpy _bit_generator.pyx).
_POOL_SIZE = 4
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_XSHIFT = np.uint32(16)

#: PCG64 LCG multiplier; seeding performs two LCG steps around the
#: initial-state addition (O'Neill's pcg64_srandom).
_PCG64_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK128 = (1 << 128) - 1


def _int_to_words(value: int) -> list[int]:
    """``value`` as little-endian uint32 words (numpy's coercion)."""
    if value < 0:
        raise ValueError("seed entropy must be non-negative")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _hash(value: np.ndarray, hash_const: np.uint32):
    value = value ^ hash_const
    hash_const = hash_const * _MULT_A
    value = value * hash_const
    value = value ^ (value >> _XSHIFT)
    return value, hash_const


def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    result = _MIX_MULT_L * x - _MIX_MULT_R * y
    return result ^ (result >> _XSHIFT)


def _entropy_pool(columns: list[np.ndarray]) -> list[np.ndarray]:
    """Run SeedSequence's ``mix_entropy`` over lane columns.

    ``columns[i]`` holds assembled-entropy word ``i`` for every lane;
    the pool state comes back as ``_POOL_SIZE`` lane columns.
    """
    n = columns[0].shape[0]
    zero = np.zeros(n, np.uint32)
    pool: list[np.ndarray] = [zero] * _POOL_SIZE
    hash_const = _INIT_A
    for i in range(_POOL_SIZE):
        src = columns[i] if i < len(columns) else zero
        pool[i], hash_const = _hash(src, hash_const)
    for i_src in range(_POOL_SIZE):
        for i_dst in range(_POOL_SIZE):
            if i_src != i_dst:
                hashed, hash_const = _hash(pool[i_src], hash_const)
                pool[i_dst] = _mix(pool[i_dst], hashed)
    for i_src in range(_POOL_SIZE, len(columns)):
        for i_dst in range(_POOL_SIZE):
            hashed, hash_const = _hash(columns[i_src], hash_const)
            pool[i_dst] = _mix(pool[i_dst], hashed)
    return pool


def _generate_state(pool: list[np.ndarray], n_uint32: int) \
        -> list[np.ndarray]:
    """SeedSequence's ``generate_state`` output words, per lane."""
    out: list[np.ndarray] = []
    hash_const = _INIT_B
    for i in range(n_uint32):
        value = pool[i % _POOL_SIZE] ^ hash_const
        hash_const = hash_const * _MULT_B
        value = value * hash_const
        value = value ^ (value >> _XSHIFT)
        out.append(value)
    return out


def _uint64_pairs(words: list[np.ndarray]) -> list[np.ndarray]:
    """Combine uint32 lane columns into little-endian uint64 columns."""
    return [
        words[2 * i].astype(np.uint64)
        | (words[2 * i + 1].astype(np.uint64) << np.uint64(32))
        for i in range(len(words) // 2)
    ]


def derive_seeds(root_seed: int, keys: np.ndarray) -> np.ndarray:
    """Vectorized :func:`repro.utils.rng.derive_seed` over ``keys``.

    Equals ``[derive_seed(root_seed, int(k)) for k in keys]`` bit for
    bit.  ``keys`` must be non-negative and fit in uint32 (run and
    child indices always do).
    """
    keys = np.asarray(keys, dtype=np.uint64)
    if keys.size and int(keys.max()) >> 32:
        raise ValueError("spawn keys must fit in 32 bits")
    root_words = _int_to_words(root_seed)
    # With a spawn key present, SeedSequence pads the entropy words to
    # the pool size before appending the key words.
    while len(root_words) < _POOL_SIZE:
        root_words.append(0)
    n = keys.shape[0]
    columns = [np.full(n, w, np.uint32) for w in root_words]
    columns.append(keys.astype(np.uint32))
    with np.errstate(over="ignore"):
        pool = _entropy_pool(columns)
        words = _generate_state(pool, 2)
        (combined,) = _uint64_pairs(words)
    return combined >> np.uint64(1)


def derive_child_seeds(seeds: np.ndarray, key: int) -> np.ndarray:
    """Vectorized ``derive_seed(seed, key)`` over per-lane parent seeds.

    ``seeds`` are 63-bit derived seeds (two entropy words, padded to
    the pool size exactly as :func:`derive_seeds` pads the root).
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    if key < 0 or key >> 32:
        raise ValueError("spawn keys must fit in 32 bits")
    n = seeds.shape[0]
    zero = np.zeros(n, np.uint32)
    columns = [
        (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32),
        (seeds >> np.uint64(32)).astype(np.uint32),
        zero,
        zero,
        np.full(n, key, np.uint32),
    ]
    with np.errstate(over="ignore"):
        pool = _entropy_pool(columns)
        words = _generate_state(pool, 2)
        (combined,) = _uint64_pairs(words)
    return combined >> np.uint64(1)


def generator_state_words(seeds: np.ndarray) -> list[np.ndarray]:
    """``SeedSequence(seed).generate_state(4, uint64)`` per lane.

    Returns four uint64 lane columns — the words PCG64 is seeded from.
    """
    seeds = np.asarray(seeds, dtype=np.uint64)
    lo = (seeds & np.uint64(0xFFFFFFFF)).astype(np.uint32)
    hi = (seeds >> np.uint64(32)).astype(np.uint32)
    # A seed below 2**32 coerces to one entropy word and the pool is
    # zero-filled past it; hashing an explicit hi word of zero is
    # identical, so one shape covers both cases.
    with np.errstate(over="ignore"):
        pool = _entropy_pool([lo, hi])
        words = _generate_state(pool, 8)
        return _uint64_pairs(words)


def pcg64_state(w0: int, w1: int, w2: int, w3: int) -> tuple[int, int]:
    """PCG64 (state, inc) seeded from its four ``generate_state`` words."""
    initstate = (w0 << 64) | w1
    initseq = (w2 << 64) | w3
    inc = ((initseq << 1) | 1) & _MASK128
    state = inc  # first LCG step from state 0: 0 * MULT + inc
    state = (state + initstate) & _MASK128
    state = (state * _PCG64_MULT + inc) & _MASK128
    return state, inc


def reseed(
    bit_generator: np.random.PCG64, w0: int, w1: int, w2: int, w3: int
) -> None:
    """Re-seed an existing PCG64 in place from four state words.

    State injection costs ~2us versus ~30us for constructing a fresh
    bit generator, so a batch planner keeps one PCG64 (and one
    Generator wrapping it) and re-seeds it per lane — lanes draw
    sequentially, never concurrently.
    """
    state, inc = pcg64_state(w0, w1, w2, w3)
    bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {"state": state, "inc": inc},
        "has_uint32": 0,
        "uinteger": 0,
    }


def make_generator(w0: int, w1: int, w2: int, w3: int) \
        -> np.random.Generator:
    """A Generator bitwise-identical to ``default_rng(seed)`` whose
    SeedSequence produced these four state words."""
    bit_generator = np.random.PCG64(0)
    reseed(bit_generator, w0, w1, w2, w3)
    return np.random.Generator(bit_generator)


def weighted_choice(
    generator: np.random.Generator, p: np.ndarray, k: int
) -> list[int]:
    """Exact emulation of ``generator.choice(p.size, size=k,
    replace=False, p=p)`` for pre-normalized ``p``.

    Consumes the generator state identically to the real call (same
    uniform draws in the same order), so a campaign may mix this with
    the scalar path without perturbing reproducibility.
    """
    n_uniq = 0
    p = p.copy()
    found = np.zeros(k, dtype=np.int64)
    while n_uniq < k:
        x = generator.random((k - n_uniq,))
        if n_uniq > 0:
            p[found[0:n_uniq]] = 0
        cdf = np.cumsum(p)
        cdf /= cdf[-1]
        new = cdf.searchsorted(x, side="right")
        _, unique_indices = np.unique(new, return_index=True)
        unique_indices.sort()
        new = new.take(unique_indices)
        found[n_uniq:n_uniq + new.size] = new
        n_uniq += new.size
    return [int(i) for i in found]


_SELF_CHECK: bool | None = None


def self_check() -> bool:
    """Whether the emulations match this process's numpy, verified once.

    Exercises seed derivation, generator construction, and the
    weighted-choice emulation against the real implementations; any
    mismatch (a future numpy changing SeedSequence/PCG64/choice
    internals) disables the fast path rather than corrupting
    reproducibility.
    """
    global _SELF_CHECK
    if _SELF_CHECK is not None:
        return _SELF_CHECK
    try:
        _SELF_CHECK = _run_self_check()
    except Exception:
        _SELF_CHECK = False
    return _SELF_CHECK


def _run_self_check() -> bool:
    from repro.utils.rng import derive_seed

    roots = [0, 20210621, 2**31 - 1, 2**40 + 12345]
    keys = np.array([0, 1, 7, 1023, 2**31], dtype=np.uint64)
    for root in roots:
        fast = derive_seeds(root, keys)
        for i, key in enumerate(keys):
            if int(fast[i]) != derive_seed(root, int(key)):
                return False
    seeds = derive_seeds(20210621, np.arange(8, dtype=np.uint64))
    for key in (0, 3):
        children = derive_child_seeds(seeds, key)
        for i in range(seeds.shape[0]):
            if int(children[i]) != derive_seed(int(seeds[i]), key):
                return False
    words = generator_state_words(seeds)
    for i in range(seeds.shape[0]):
        fast_gen = make_generator(*(int(w[i]) for w in words))
        ref_gen = np.random.default_rng(int(seeds[i]))
        if not np.array_equal(fast_gen.random(4), ref_gen.random(4)):
            return False
        if int(fast_gen.integers(0, 32)) != int(ref_gen.integers(0, 32)):
            return False
    p = np.abs(np.sin(np.arange(1, 301, dtype=np.float64)))
    p /= p.sum()
    for seed in (3, 99, 4242):
        for k in (1, 3):
            ref_gen = np.random.default_rng(seed)
            fast_gen = np.random.default_rng(seed)
            want = [int(i) for i in
                    ref_gen.choice(p.size, size=k, replace=False, p=p)]
            if weighted_choice(fast_gen, p, k) != want:
                return False
            if not np.array_equal(ref_gen.random(2), fast_gen.random(2)):
                return False
    return True
