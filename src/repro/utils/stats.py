"""Statistics helpers: running moments, confidence intervals, means.

The paper reports 95% confidence intervals with roughly +/-3% error
margins for 1000-run campaigns (Leveugle et al. statistical fault
injection); :func:`confidence_interval` implements the same normal
approximation for a binomial proportion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class ConfidenceInterval:
    """A proportion estimate with symmetric margin at a given level."""

    proportion: float
    margin: float
    level: float
    runs: int

    @property
    def low(self) -> float:
        return max(0.0, self.proportion - self.margin)

    @property
    def high(self) -> float:
        return min(1.0, self.proportion + self.margin)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.proportion:.4f} +/- {self.margin:.4f} "
            f"({self.level:.0%}, n={self.runs})"
        )


def confidence_interval(
    successes: int, runs: int, level: float = 0.95
) -> ConfidenceInterval:
    """Normal-approximation CI for a binomial proportion.

    For ``runs=1000`` and ``level=0.95`` the worst-case margin (p=0.5)
    is ~3.1%, matching the paper's statistical-significance claim.
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    if not 0 <= successes <= runs:
        raise ValueError(f"successes {successes} outside [0, {runs}]")
    if level not in _Z_VALUES:
        raise ValueError(f"unsupported confidence level {level}")
    p = successes / runs
    margin = _Z_VALUES[level] * math.sqrt(p * (1.0 - p) / runs)
    return ConfidenceInterval(p, margin, level, runs)


def runs_for_margin(margin: float, level: float = 0.95) -> int:
    """Number of runs for a worst-case (p=0.5) CI margin of ``margin``."""
    if margin <= 0:
        raise ValueError("margin must be positive")
    z = _Z_VALUES[level]
    return math.ceil((z / (2.0 * margin)) ** 2)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for normalized slowdowns."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized(values: Sequence[float], baseline: float) -> list[float]:
    """Each value divided by ``baseline`` (the paper's "1.0" bars)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return [v / baseline for v in values]


class RunningStat:
    """Numerically stable running mean/variance (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._max
