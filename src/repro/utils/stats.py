"""Statistics helpers: running moments, confidence intervals, means.

The paper reports 95% confidence intervals with roughly +/-3% error
margins for 1000-run campaigns (Leveugle et al. statistical fault
injection).  :func:`confidence_interval` defaults to the Wilson score
interval, which stays informative at the boundaries: a campaign that
has seen zero SDCs in ``n`` runs still gets a nonzero upper bound
(``z^2 / (n + z^2)``, the continuous analogue of the rule of three),
so an early-stopping loop seeded with it cannot terminate after the
very first MASKED run.  The paper's original normal approximation is
kept behind ``method="normal"`` — for p=0.5 and 1000 runs both give
the ~3.1% margin the paper quotes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}

_CI_METHODS = ("wilson", "normal")


def _z_for(level: float) -> float:
    try:
        return _Z_VALUES[level]
    except KeyError:
        raise ValueError(f"unsupported confidence level {level}") from None


@dataclass(frozen=True)
class ConfidenceInterval:
    """A proportion estimate with an explicit ``[low, high]`` interval.

    ``margin`` is the larger one-sided distance
    ``max(proportion - low, high - proportion)`` — for the (symmetric)
    normal approximation this is the familiar half-width.  ``low`` and
    ``high`` default to the clamped symmetric bounds when not given, so
    legacy two-field construction keeps working, but asymmetric
    intervals (Wilson near p=0 or p=1) carry their true bounds instead
    of silently clamping and then printing a symmetric ``±margin``.
    """

    proportion: float
    margin: float
    level: float
    runs: int
    low: float = field(default=None)  # type: ignore[assignment]
    high: float = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.low is None:
            object.__setattr__(
                self, "low", max(0.0, self.proportion - self.margin))
        if self.high is None:
            object.__setattr__(
                self, "high", min(1.0, self.proportion + self.margin))

    def to_dict(self) -> dict:
        """Canonical-JSON-friendly form, bounds included."""
        return {
            "proportion": self.proportion,
            "margin": self.margin,
            "low": self.low,
            "high": self.high,
            "level": self.level,
            "runs": self.runs,
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.proportion:.4f} [{self.low:.4f}, {self.high:.4f}] "
            f"({self.level:.0%}, n={self.runs})"
        )


def zero_run_interval(level: float = 0.95) -> ConfidenceInterval:
    """The vacuous interval for a summary with no runs at all.

    Zero observations say nothing about the proportion, so the interval
    is the whole of [0, 1] — callers (``repro stats`` on a truncated
    JSONL, an adaptive campaign before its first chunk commits) report
    it cleanly instead of tracebacking on ``runs must be positive``.
    """
    _z_for(level)
    return ConfidenceInterval(0.0, 1.0, level, 0, low=0.0, high=1.0)


def confidence_interval(
    successes: int,
    runs: int,
    level: float = 0.95,
    method: str = "wilson",
) -> ConfidenceInterval:
    """Confidence interval for a binomial proportion.

    The default Wilson score interval is well-behaved at the
    boundaries: ``successes=0`` yields ``high = z^2/(n + z^2) > 0``
    rather than the normal approximation's degenerate zero-width
    interval.  ``method="normal"`` keeps the paper's original formula
    (for ``runs=1000``, ``level=0.95`` the worst-case p=0.5 margin is
    ~3.1%, matching the paper's statistical-significance claim; Wilson
    agrees to three decimals at that size).
    """
    if runs <= 0:
        raise ValueError("runs must be positive")
    if not 0 <= successes <= runs:
        raise ValueError(f"successes {successes} outside [0, {runs}]")
    z = _z_for(level)
    if method not in _CI_METHODS:
        raise ValueError(f"unknown CI method {method!r}")
    p = successes / runs
    if method == "normal":
        margin = z * math.sqrt(p * (1.0 - p) / runs)
        return ConfidenceInterval(p, margin, level, runs)
    z2 = z * z
    denom = 1.0 + z2 / runs
    center = (p + z2 / (2.0 * runs)) / denom
    half = (z / denom) * math.sqrt(
        p * (1.0 - p) / runs + z2 / (4.0 * runs * runs))
    # Snap the exact boundary cases: algebraically low=0 at p=0 and
    # high=1 at p=1, but float rounding can leave a ~1e-17 residue.
    low = 0.0 if successes == 0 else max(0.0, center - half)
    high = 1.0 if successes == runs else min(1.0, center + half)
    margin = max(p - low, high - p)
    return ConfidenceInterval(p, margin, level, runs, low=low, high=high)


def runs_for_margin(
    margin: float, level: float = 0.95, method: str = "wilson"
) -> int:
    """Runs needed for a worst-case (p=0.5) CI margin of ``margin``.

    For Wilson the p=0.5 half-width is ``z / (2 sqrt(n + z^2))``, so
    ``n >= (z / 2m)^2 - z^2`` — a handful fewer runs than the normal
    approximation's ``(z / 2m)^2`` at the same margin.  The count is
    rounded up to an even number so the sizing worst case (exactly
    half the runs succeeding) is realizable and the round trip
    ``confidence_interval(n // 2, n)`` honors the requested margin.
    """
    if margin <= 0:
        raise ValueError("margin must be positive")
    z = _z_for(level)
    if method not in _CI_METHODS:
        raise ValueError(f"unknown CI method {method!r}")
    n = (z / (2.0 * margin)) ** 2
    if method == "wilson":
        n -= z * z
    n = max(math.ceil(n), 2)
    return n + (n % 2)


def stratified_interval(
    strata: Sequence[tuple[float, int, int]], level: float = 0.95
) -> ConfidenceInterval:
    """Recombine per-stratum tallies into one unbiased estimate.

    ``strata`` is a sequence of ``(weight, successes, runs)`` triples;
    weights are normalized to sum to 1.  The point estimate is the
    weighted mean of the per-stratum proportions (unbiased whenever the
    weights are the true stratum population shares), and the combined
    margin is the square root of the weighted sum of squared
    per-stratum Wilson margins — the standard independent-strata
    variance composition.  A stratum with zero runs contributes the
    vacuous margin of 1.0 at its full weight, so unsampled strata widen
    the interval instead of silently vanishing from it.
    """
    _z_for(level)
    strata = list(strata)
    if not strata:
        raise ValueError("stratified_interval of empty strata")
    total_weight = sum(w for w, _, _ in strata)
    if total_weight <= 0:
        raise ValueError("stratum weights must sum to a positive value")
    p_hat = 0.0
    var_sum = 0.0
    total_runs = 0
    for weight, successes, runs in strata:
        if weight < 0:
            raise ValueError("stratum weights must be non-negative")
        w = weight / total_weight
        if runs > 0:
            ci = confidence_interval(successes, runs, level)
            p_hat += w * ci.proportion
            var_sum += (w * ci.margin) ** 2
            total_runs += runs
        else:
            var_sum += w * w  # vacuous margin 1.0 for an unsampled stratum
    margin = math.sqrt(var_sum)
    low = max(0.0, p_hat - margin)
    high = min(1.0, p_hat + margin)
    return ConfidenceInterval(
        p_hat, margin, level, total_runs, low=low, high=high)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the right average for normalized slowdowns."""
    if not values:
        raise ValueError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized(values: Sequence[float], baseline: float) -> list[float]:
    """Each value divided by ``baseline`` (the paper's "1.0" bars)."""
    if baseline == 0:
        raise ValueError("baseline must be non-zero")
    return [v / baseline for v in values]


class RunningStat:
    """Numerically stable running mean/variance (Welford)."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf

    def add(self, value: float) -> None:
        """Fold one sample into the running moments."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._mean

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._min

    @property
    def max(self) -> float:
        if self.count == 0:
            raise ValueError("no samples")
        return self._max
