"""Structured CLI logging with verbosity control.

A deliberately small logger for the command-line layer — stdlib
``logging`` routes every level through one stream, while the CLI needs
the split that keeps its contract with scripts and tests intact:

* **result** lines (tables, rates — the command's actual output) always
  go to stdout;
* **info** lines (progress, "wrote N records to PATH") go to stdout but
  are suppressed by ``--quiet``;
* **debug** lines go to stderr, shown only under ``--verbose``, and
  carry a ``[component]`` prefix for grep-ability;
* **warning/error** lines always go to stderr with a level prefix.

Verbosity is process-global (set once by ``repro.cli.main`` from
``-q``/``-v``); loggers are cheap named views onto it.
"""

from __future__ import annotations

import sys
from typing import Any, TextIO

DEBUG = 10
INFO = 20
QUIET = 30

_level = INFO


def configure(verbose: bool = False, quiet: bool = False) -> None:
    """Set the process-wide verbosity from the CLI flags.

    ``quiet`` wins over ``verbose`` when both are given — scripted
    callers that force ``-q`` expect silence regardless of defaults.
    """
    global _level
    if quiet:
        _level = QUIET
    elif verbose:
        _level = DEBUG
    else:
        _level = INFO


def level() -> int:
    """The current process-wide threshold (one of DEBUG/INFO/QUIET)."""
    return _level


class Logger:
    """A named view onto the process-wide verbosity."""

    def __init__(self, name: str):
        self.name = name

    def _write(self, stream: TextIO, text: str) -> None:
        # A downstream `| head` closing the pipe is a normal way to
        # consume CLI output, not an error worth a traceback.
        try:
            stream.write(text + "\n")
        except BrokenPipeError:
            pass

    def debug(self, msg: str, *args: Any) -> None:
        """Diagnostic detail; stderr, only under ``--verbose``."""
        if _level <= DEBUG:
            self._write(sys.stderr, f"[{self.name}] {msg % args if args else msg}")

    def info(self, msg: str, *args: Any) -> None:
        """Progress/context; stdout, suppressed by ``--quiet``."""
        if _level <= INFO:
            self._write(sys.stdout, msg % args if args else msg)

    def result(self, msg: str, *args: Any) -> None:
        """The command's actual output; always on stdout."""
        self._write(sys.stdout, msg % args if args else msg)

    def warning(self, msg: str, *args: Any) -> None:
        """Always on stderr, ``warning:`` prefix."""
        self._write(sys.stderr,
                    f"warning: {msg % args if args else msg}")

    def error(self, msg: str, *args: Any) -> None:
        """Always on stderr, ``error:`` prefix."""
        self._write(sys.stderr, f"error: {msg % args if args else msg}")


def get_logger(name: str) -> Logger:
    """A logger named after its component (module or subcommand)."""
    return Logger(name)
