"""Per-run telemetry records: schema, JSONL writer, validating reader.

One :class:`RunRecord` captures everything reproducible about a single
fault-injection run — its index and derived seed, the campaign
identity, the injected fault specs, the outcome and error metric, and
the scheme's counters.  Records are built inside
:meth:`~repro.faults.campaign.Campaign.run_one`, travel back through
the parallel executor inside the chunk results, and are merged into
run-index order, so a telemetry file is byte-identical for any worker
count.

Serialization is canonical JSON (sorted keys, fixed separators, one
record per line) precisely so that byte-level comparison is a valid
determinism check.  Wall-clock data never enters a record; latency and
utilization live in the :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterable, Iterator

from repro.errors import TelemetryError
from repro.faults.model import FaultSpec
from repro.faults.outcomes import Outcome

#: Bumped whenever the record shape changes incompatibly.
RUN_RECORD_VERSION = 1

#: Required top-level keys and their JSON types, the wire schema that
#: :func:`validate_record` enforces.
RUN_RECORD_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "version": int,
    "run_index": int,
    "seed": int,
    "app": str,
    "scheme": str,
    "selection": str,
    "n_blocks": int,
    "n_bits": int,
    "outcome": str,
    "error": (int, float),
    "detail": str,
    "faults": list,
    "counters": dict,
}

#: Required keys of each entry of a record's ``faults`` list.
FAULT_SCHEMA: dict[str, type] = {
    "block_addr": int,
    "word_index": int,
    "bit_positions": list,
    "stuck_values": list,
}


#: Bumped whenever the stop-decision record shape changes incompatibly.
DECISION_RECORD_VERSION = 1

#: Required top-level keys of one adaptive stop-decision record.
DECISION_RECORD_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "version": int,
    "committed": int,
    "sdc": int,
    "stop": bool,
    "interval": dict,
}

#: Required keys of a decision record's embedded interval image
#: (:meth:`repro.utils.stats.ConfidenceInterval.to_dict`).
INTERVAL_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "proportion": (int, float),
    "margin": (int, float),
    "low": (int, float),
    "high": (int, float),
    "level": (int, float),
    "runs": int,
}


__all__ = [
    "RUN_RECORD_VERSION",
    "RUN_RECORD_SCHEMA",
    "DECISION_RECORD_VERSION",
    "DECISION_RECORD_SCHEMA",
    "FAULT_SCHEMA",
    "INTERVAL_SCHEMA",
    "JsonlWriter",
    "RunRecord",
    "TelemetryError",
    "TelemetryWriter",
    "iter_records",
    "iter_validated_jsonl",
    "iter_validated_lines",
    "read_decisions",
    "read_records",
    "records_in_order",
    "validate_decision",
    "validate_record",
    "write_decisions",
]


@dataclass(frozen=True)
class RunRecord:
    """The deterministic telemetry of one fault-injection run."""

    run_index: int
    seed: int
    app: str
    scheme: str
    selection: str
    n_blocks: int
    n_bits: int
    outcome: str
    error: float
    detail: str
    faults: tuple[FaultSpec, ...]
    #: Scheme counters (sorted name/value pairs) observed after the run.
    counters: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        """The record as a JSON-ready plain dict."""
        return {
            "version": RUN_RECORD_VERSION,
            "run_index": self.run_index,
            "seed": self.seed,
            "app": self.app,
            "scheme": self.scheme,
            "selection": self.selection,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "outcome": self.outcome,
            "error": self.error,
            "detail": self.detail,
            "faults": [
                {
                    "block_addr": f.block_addr,
                    "word_index": f.word_index,
                    "bit_positions": list(f.bit_positions),
                    "stuck_values": list(f.stuck_values),
                }
                for f in self.faults
            ],
            "counters": {name: value for name, value in self.counters},
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "RunRecord":
        """Rebuild a record from a validated :meth:`to_dict` image."""
        validate_record(data)
        return cls(
            run_index=data["run_index"],
            seed=data["seed"],
            app=data["app"],
            scheme=data["scheme"],
            selection=data["selection"],
            n_blocks=data["n_blocks"],
            n_bits=data["n_bits"],
            outcome=data["outcome"],
            error=float(data["error"]),
            detail=data["detail"],
            faults=tuple(
                FaultSpec(
                    f["block_addr"],
                    f["word_index"],
                    tuple(f["bit_positions"]),
                    tuple(f["stuck_values"]),
                )
                for f in data["faults"]
            ),
            counters=tuple(sorted(data["counters"].items())),
        )


_OUTCOME_VALUES = frozenset(o.value for o in Outcome)


def validate_record(data: dict) -> None:
    """Check one decoded record against :data:`RUN_RECORD_SCHEMA`.

    Raises :class:`TelemetryError` on any missing key, wrong type,
    unknown outcome, or malformed fault entry.
    """
    if not isinstance(data, dict):
        raise TelemetryError(f"record must be an object, got {type(data)}")
    for key, typ in RUN_RECORD_SCHEMA.items():
        if key not in data:
            raise TelemetryError(f"record missing key {key!r}")
        if not isinstance(data[key], typ) or isinstance(data[key], bool):
            raise TelemetryError(
                f"record key {key!r} has type {type(data[key]).__name__}"
            )
    if data["version"] != RUN_RECORD_VERSION:
        raise TelemetryError(
            f"unsupported record version {data['version']} "
            f"(expected {RUN_RECORD_VERSION})"
        )
    if data["run_index"] < 0:
        raise TelemetryError("run_index must be non-negative")
    if data["outcome"] not in _OUTCOME_VALUES:
        raise TelemetryError(f"unknown outcome {data['outcome']!r}")
    for entry in data["faults"]:
        if not isinstance(entry, dict):
            raise TelemetryError("fault entry must be an object")
        for key, typ in FAULT_SCHEMA.items():
            if key not in entry or not isinstance(entry[key], typ):
                raise TelemetryError(f"fault entry key {key!r} bad/missing")
        if len(entry["bit_positions"]) != len(entry["stuck_values"]):
            raise TelemetryError("fault bit/value length mismatch")
    for name, value in data["counters"].items():
        if not isinstance(name, str) or not isinstance(value, int):
            raise TelemetryError("counters must map str -> int")


class JsonlWriter:
    """Append-only canonical-JSONL sink for record streams.

    Shared base of the telemetry and provenance writers: anything with
    a ``to_json()`` canonical single-line encoding is written one LF
    line each, in the order given — callers hand over result streams
    that are already in run-index order.  Use as a context manager.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh: IO[str] | None = None
        self.n_written = 0

    def __enter__(self) -> "JsonlWriter":
        self._fh = open(self.path, "w", encoding="utf-8", newline="\n")
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def write(self, record) -> None:
        """Append one record as a canonical JSON line."""
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8", newline="\n")
        self._fh.write(record.to_json() + "\n")
        self.n_written += 1

    def close(self) -> None:
        """Flush and close the underlying file."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class TelemetryWriter(JsonlWriter):
    """Append-only JSONL sink for :class:`RunRecord` streams."""

    def write_result(self, result) -> int:
        """Append every record of a campaign result; returns the count.

        ``result`` is a :class:`~repro.faults.campaign.CampaignResult`
        executed with ``collect_records=True``; its ``records`` list is
        already merged into run-index order by the executor.
        """
        if not result.records:
            raise TelemetryError(
                f"{result.app_name}: no telemetry records collected "
                "(campaign must run with collect_records=True)"
            )
        for record in result.records:
            self.write(record)
        return len(result.records)


def iter_validated_lines(
    lines: Iterable[str], validate, label: str = "<stream>"
) -> Iterator[dict]:
    """Yield decoded dicts from JSONL lines, one per non-blank line.

    Each line is parsed and passed through ``validate`` (a callable
    raising :class:`TelemetryError` on a bad record); any failure is
    re-raised with a ``label:lineno:`` prefix.  The source-agnostic
    core of :func:`iter_validated_jsonl`, also fed directly from stdin
    by ``repro stats -`` / ``repro vuln -``.
    """
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TelemetryError(
                f"{label}:{lineno}: not valid JSON ({exc})"
            ) from None
        try:
            validate(data)
        except TelemetryError as exc:
            raise TelemetryError(f"{label}:{lineno}: {exc}") from None
        yield data


def iter_validated_jsonl(path: str, validate) -> Iterator[dict]:
    """Yield decoded dicts from a JSONL file, one per non-blank line.

    File-opening wrapper over :func:`iter_validated_lines`; failures
    carry a ``path:lineno:`` prefix.  Shared by the telemetry and
    provenance readers.
    """
    with open(path, "r", encoding="utf-8") as fh:
        yield from iter_validated_lines(fh, validate, label=path)


def iter_records(path: str) -> Iterator[dict]:
    """Yield validated record dicts from a telemetry JSONL file."""
    return iter_validated_jsonl(path, validate_record)


def read_records(path: str) -> list[dict]:
    """Load and validate every record of a telemetry JSONL file."""
    return list(iter_records(path))


def validate_decision(data: dict) -> None:
    """Check one decoded stop-decision record against the schema.

    Raises :class:`TelemetryError` on missing keys, wrong types, or an
    internally inconsistent tally (``sdc`` exceeding ``committed``).
    """
    if not isinstance(data, dict):
        raise TelemetryError(
            f"decision must be an object, got {type(data)}"
        )
    for key, typ in DECISION_RECORD_SCHEMA.items():
        if key not in data:
            raise TelemetryError(f"decision missing key {key!r}")
        value = data[key]
        if not isinstance(value, typ) \
                or (typ is not bool and isinstance(value, bool)):
            raise TelemetryError(
                f"decision key {key!r} has type {type(value).__name__}"
            )
    if data["version"] != DECISION_RECORD_VERSION:
        raise TelemetryError(
            f"unsupported decision version {data['version']} "
            f"(expected {DECISION_RECORD_VERSION})"
        )
    if data["committed"] <= 0:
        raise TelemetryError("decision committed count must be positive")
    if not 0 <= data["sdc"] <= data["committed"]:
        raise TelemetryError("decision sdc count outside [0, committed]")
    for key, typ in INTERVAL_SCHEMA.items():
        value = data["interval"].get(key)
        if not isinstance(value, typ) or isinstance(value, bool):
            raise TelemetryError(
                f"decision interval key {key!r} bad/missing"
            )


def write_decisions(path: str, decisions: Iterable) -> int:
    """Write an adaptive campaign's stop-decision trail as JSONL.

    ``decisions`` is the
    :attr:`~repro.faults.adaptive.AdaptiveResult.decisions` list; each
    becomes one canonical JSON line, so the file — like run telemetry —
    is byte-identical for any worker count or batch size.  Returns the
    number of lines written.
    """
    n = 0
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        for decision in decisions:
            data = {"version": DECISION_RECORD_VERSION}
            data.update(decision.to_dict())
            fh.write(json.dumps(
                data, sort_keys=True, separators=(",", ":")
            ) + "\n")
            n += 1
    return n


def read_decisions(path: str) -> list[dict]:
    """Load and validate a stop-decision JSONL file."""
    decisions = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            try:
                validate_decision(data)
            except TelemetryError as exc:
                raise TelemetryError(f"{path}:{lineno}: {exc}") from None
            decisions.append(data)
    return decisions


def records_in_order(records: Iterable[RunRecord]) -> list[RunRecord]:
    """Sort records by run index, rejecting duplicates.

    The executor's merge path keeps chunk outputs ordered already; this
    is the defensive re-check used when records from multiple sources
    are combined.
    """
    ordered = sorted(records, key=lambda r: r.run_index)
    for before, after in zip(ordered, ordered[1:]):
        if after.run_index == before.run_index:
            raise TelemetryError(
                f"duplicate telemetry record for run {after.run_index}"
            )
    return ordered
