"""Results warehouse: a queryable SQLite store for campaign corpora.

The repo's telemetry surfaces are append-only files — run-record
JSONL, provenance JSONL, session event logs, adaptive stop-decision
trails, ``BENCH_*.json`` snapshots.  Each is canonical JSON and
byte-identical at any ``--jobs``/``--batch``, which makes them perfect
warehouse feedstock: a *cell* (one coherent record stream) is keyed by
the content address of its canonical records
(:func:`repro.utils.canonical.canonical_digest`), so ingesting the
same campaign output twice — or the same campaign re-run at a
different parallelism — is an idempotent no-op.  That content-
addressed dedup is the substrate a fleet-scale job API can sit on:
workers push files at will, the store keeps one copy of each result.

Every row also stores its record's canonical-JSON line verbatim, so
:meth:`ResultsStore.export` reproduces the source JSONL byte-for-byte
— ingest → export round-trips are part of the test suite's
determinism contract.

All failures (unreadable file, schema-version mismatch, truncated or
corrupt JSONL, unknown cell) raise :class:`~repro.errors.StoreError`,
which the CLI maps to exit code 7.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Iterable

from repro.errors import StoreError, TelemetryError
from repro.obs.provenance import (
    PROVENANCE_RECORD_VERSION,
    validate_provenance,
)
from repro.obs.records import (
    DECISION_RECORD_VERSION,
    RUN_RECORD_VERSION,
    iter_validated_lines,
    validate_decision,
    validate_record,
)
from repro.obs.session import SESSION_EVENT_VERSION, validate_event
from repro.utils.canonical import canonical_digest, canonical_json
from repro.utils.stats import confidence_interval, zero_run_interval

#: Bumped whenever the warehouse table layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

#: The record kinds the warehouse understands.  ``ingest`` sniffs the
#: kind from the file's first record when not told explicitly.
KINDS = ("runs", "provenance", "decisions", "session", "bench")

_TABLES = """
CREATE TABLE meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE cells (
    digest    TEXT PRIMARY KEY,
    kind      TEXT NOT NULL,
    label     TEXT NOT NULL,
    app       TEXT NOT NULL DEFAULT '',
    scheme    TEXT NOT NULL DEFAULT '',
    selection TEXT NOT NULL DEFAULT '',
    n_blocks  INTEGER NOT NULL DEFAULT 0,
    n_bits    INTEGER NOT NULL DEFAULT 0,
    rows      INTEGER NOT NULL,
    source    TEXT NOT NULL
);
CREATE TABLE runs (
    cell      TEXT NOT NULL,
    run_index INTEGER NOT NULL,
    seed      INTEGER NOT NULL,
    outcome   TEXT NOT NULL,
    error     REAL NOT NULL,
    record    TEXT NOT NULL,
    PRIMARY KEY (cell, run_index)
);
CREATE TABLE provenance (
    cell      TEXT NOT NULL,
    run_index INTEGER NOT NULL,
    object    TEXT NOT NULL,
    cause     TEXT NOT NULL,
    evidence  TEXT NOT NULL,
    outcome   TEXT NOT NULL,
    record    TEXT NOT NULL,
    PRIMARY KEY (cell, run_index)
);
CREATE TABLE decisions (
    cell      TEXT NOT NULL,
    seq       INTEGER NOT NULL,
    committed INTEGER NOT NULL,
    sdc       INTEGER NOT NULL,
    stop      INTEGER NOT NULL,
    margin    REAL NOT NULL,
    record    TEXT NOT NULL,
    PRIMARY KEY (cell, seq)
);
CREATE TABLE session_events (
    cell   TEXT NOT NULL,
    seq    INTEGER NOT NULL,
    kind   TEXT NOT NULL,
    record TEXT NOT NULL,
    PRIMARY KEY (cell, seq)
);
CREATE TABLE bench (
    cell   TEXT PRIMARY KEY,
    name   TEXT NOT NULL,
    record TEXT NOT NULL
);
"""

def _meta_stamps() -> dict[str, str]:
    """Version stamps written into ``meta`` when a store is created,
    so a report (and any future reader) can state exactly which
    schemas the corpus was validated against.  Computed lazily: the
    package ``__version__`` is not yet bound while ``repro.obs`` is
    importing."""
    import repro

    return {
        "store_schema_version": str(STORE_SCHEMA_VERSION),
        "repro_version": repro.__version__,
        "run_record_version": str(RUN_RECORD_VERSION),
        "provenance_record_version": str(PROVENANCE_RECORD_VERSION),
        "decision_record_version": str(DECISION_RECORD_VERSION),
        "session_event_version": str(SESSION_EVENT_VERSION),
    }


def _group_key(record: dict) -> tuple:
    """The run-cell identity of one run/provenance record."""
    return (record["app"], record["scheme"], record["selection"],
            record["n_blocks"], record["n_bits"])


def detect_kind(path: str) -> str:
    """Sniff a file's record kind from its first record.

    JSONL kinds are recognized by marker keys of their first line;
    anything that parses as one whole-file JSON object is a bench
    snapshot.  Raises :class:`StoreError` when nothing matches.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise StoreError(f"cannot read {path}: {exc}") from None
    first = next((ln for ln in text.splitlines() if ln.strip()), "")
    try:
        data = json.loads(first)
    except json.JSONDecodeError:
        data = None
    if isinstance(data, dict):
        if "faults" in data and "counters" in data:
            return "runs"
        if "cause" in data and "sites" in data:
            return "provenance"
        if "committed" in data and "interval" in data:
            return "decisions"
        if "seq" in data and "kind" in data:
            return "session"
    try:
        whole = json.loads(text)
    except json.JSONDecodeError:
        whole = None
    if isinstance(whole, dict):
        return "bench"
    raise StoreError(
        f"{path}: cannot detect record kind (expected one of {KINDS}; "
        "pass --kind to override)"
    )


class ResultsStore:
    """A SQLite-backed, content-addressed warehouse of campaign results.

    Usable as a context manager; all mutation happens inside
    :meth:`ingest`, one transaction per source file.  The store keeps
    the schema-version stamps of the code that created it and refuses
    to open a store written under a different
    :data:`STORE_SCHEMA_VERSION`.
    """

    def __init__(self, path: str):
        self.path = str(path)
        try:
            self._conn = sqlite3.connect(self.path)
        except sqlite3.Error as exc:
            raise StoreError(
                f"cannot open store {self.path}: {exc}"
            ) from None
        try:
            self._initialize()
        except StoreError:
            self._conn.close()
            raise
        except sqlite3.Error as exc:
            self._conn.close()
            raise StoreError(
                f"{self.path} is not a results store: {exc}"
            ) from None

    # -- lifecycle ------------------------------------------------------
    def _initialize(self) -> None:
        has_meta = self._conn.execute(
            "SELECT name FROM sqlite_master "
            "WHERE type='table' AND name='meta'"
        ).fetchone()
        if has_meta is None:
            if self._conn.execute(
                    "SELECT name FROM sqlite_master").fetchone():
                raise StoreError(
                    f"{self.path} is a SQLite database but not a "
                    "results store"
                )
            with self._conn:
                self._conn.executescript(_TABLES)
                self._conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    sorted(_meta_stamps().items()),
                )
            return
        found = self._meta_value("store_schema_version")
        if found != str(STORE_SCHEMA_VERSION):
            raise StoreError(
                f"{self.path}: store schema version {found!r} "
                f"(this build reads {STORE_SCHEMA_VERSION})"
            )

    def _meta_value(self, key: str) -> str | None:
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- ingest ---------------------------------------------------------
    def ingest(self, path: str, kind: str | None = None) -> list[dict]:
        """Ingest one source file; returns one receipt per cell.

        ``kind`` overrides :func:`detect_kind`.  Each receipt is
        ``{"digest", "kind", "label", "rows", "deduped"}`` —
        ``deduped=True`` marks a cell whose content address already
        exists, in which case nothing is written (the idempotent
        no-op re-ingesting any already-warehoused file produces).
        Any unreadable, truncated, or schema-invalid source raises
        :class:`StoreError` with the offending ``path:lineno``.
        """
        if kind is None:
            kind = detect_kind(path)
        if kind not in KINDS:
            raise StoreError(f"unknown record kind {kind!r} "
                             f"(expected one of {KINDS})")
        try:
            if kind == "bench":
                cells = [self._load_bench(path)]
            else:
                cells = self._load_jsonl(path, kind)
        except OSError as exc:
            raise StoreError(f"cannot read {path}: {exc}") from None
        except TelemetryError as exc:
            raise StoreError(str(exc)) from None
        receipts = []
        try:
            with self._conn:
                for cell in cells:
                    receipts.append(self._store_cell(path, cell))
        except sqlite3.Error as exc:
            raise StoreError(
                f"ingest of {path} failed: {exc}"
            ) from None
        return receipts

    def _load_jsonl(self, path: str, kind: str) -> list[dict]:
        """Parse + validate one JSONL source into cell dicts."""
        validate = {
            "runs": validate_record,
            "provenance": validate_provenance,
            "decisions": validate_decision,
            "session": self._validate_session_event,
        }[kind]
        with open(path, "r", encoding="utf-8") as fh:
            records = list(iter_validated_lines(fh, validate,
                                                label=path))
        if not records:
            raise StoreError(f"{path}: no records to ingest")
        label = os.path.splitext(os.path.basename(path))[0]
        if kind in ("runs", "provenance"):
            # One cell per campaign identity, in first-seen order;
            # record order inside a cell is file order (ascending run
            # index), which export reproduces.
            groups: dict[tuple, list[dict]] = {}
            for record in records:
                groups.setdefault(_group_key(record), []).append(record)
            return [
                {
                    "kind": kind,
                    "records": rows,
                    "label": f"{key[0]}~{key[1]}~{key[2]}"
                             f"~{key[3]}x{key[4]}",
                    "identity": key,
                }
                for key, rows in groups.items()
            ]
        return [{"kind": kind, "records": records, "label": label,
                 "identity": None}]

    @staticmethod
    def _validate_session_event(data: dict) -> None:
        validate_event(data)

    def _load_bench(self, path: str) -> dict:
        with open(path, "r", encoding="utf-8") as fh:
            try:
                snapshot = json.load(fh)
            except json.JSONDecodeError as exc:
                raise StoreError(
                    f"{path}: not valid JSON ({exc})"
                ) from None
        if not isinstance(snapshot, dict):
            raise StoreError(f"{path}: bench snapshot must be an object")
        name = os.path.splitext(os.path.basename(path))[0]
        if name.startswith("BENCH_"):
            name = name[len("BENCH_"):]
        return {"kind": "bench", "records": [snapshot], "label": name,
                "identity": None}

    def _store_cell(self, source: str, cell: dict) -> dict:
        kind, records = cell["kind"], cell["records"]
        if kind == "bench":
            digest = canonical_digest({
                "kind": "bench", "name": cell["label"],
                "snapshot": records[0],
            })
        else:
            digest = canonical_digest({
                "kind": kind, "records": records,
            })
        receipt = {
            "digest": digest, "kind": kind, "label": cell["label"],
            "rows": len(records), "deduped": False,
        }
        exists = self._conn.execute(
            "SELECT 1 FROM cells WHERE digest = ?", (digest,)
        ).fetchone()
        if exists is not None:
            receipt["deduped"] = True
            return receipt
        identity = cell["identity"] or ("", "", "", 0, 0)
        self._conn.execute(
            "INSERT INTO cells (digest, kind, label, app, scheme, "
            "selection, n_blocks, n_bits, rows, source) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (digest, kind, cell["label"], *identity, len(records),
             os.path.basename(source)),
        )
        if kind == "runs":
            self._conn.executemany(
                "INSERT INTO runs (cell, run_index, seed, outcome, "
                "error, record) VALUES (?, ?, ?, ?, ?, ?)",
                [(digest, r["run_index"], r["seed"], r["outcome"],
                  float(r["error"]), canonical_json(r))
                 for r in records],
            )
        elif kind == "provenance":
            self._conn.executemany(
                "INSERT INTO provenance (cell, run_index, object, "
                "cause, evidence, outcome, record) "
                "VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(digest, r["run_index"],
                  r["sites"][0]["object"] if r["sites"] else "",
                  r["cause"], r["evidence"], r["outcome"],
                  canonical_json(r))
                 for r in records],
            )
        elif kind == "decisions":
            self._conn.executemany(
                "INSERT INTO decisions (cell, seq, committed, sdc, "
                "stop, margin, record) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(digest, seq, r["committed"], r["sdc"],
                  int(r["stop"]), float(r["interval"]["margin"]),
                  canonical_json(r))
                 for seq, r in enumerate(records)],
            )
        elif kind == "session":
            self._conn.executemany(
                "INSERT INTO session_events (cell, seq, kind, record) "
                "VALUES (?, ?, ?, ?)",
                [(digest, r["seq"], r["kind"], canonical_json(r))
                 for r in records],
            )
        else:  # bench
            self._conn.execute(
                "INSERT INTO bench (cell, name, record) "
                "VALUES (?, ?, ?)",
                (digest, cell["label"], canonical_json(records[0])),
            )
        return receipt

    # -- queries --------------------------------------------------------
    def meta(self) -> dict[str, str]:
        """The store's metadata stamps (schema + library versions)."""
        try:
            rows = self._conn.execute(
                "SELECT key, value FROM meta ORDER BY key"
            ).fetchall()
        except sqlite3.Error as exc:
            raise StoreError(f"{self.path}: {exc}") from None
        return dict(rows)

    def cells(self) -> list[dict]:
        """Every warehoused cell, in ingest order."""
        rows = self._conn.execute(
            "SELECT digest, kind, label, app, scheme, selection, "
            "n_blocks, n_bits, rows, source FROM cells ORDER BY rowid"
        ).fetchall()
        keys = ("digest", "kind", "label", "app", "scheme",
                "selection", "n_blocks", "n_bits", "rows", "source")
        return [dict(zip(keys, row)) for row in rows]

    def query(
        self, app: str | None = None, scheme: str | None = None,
        level: float = 0.95,
    ) -> list[dict]:
        """Per-cell reliability summaries over the warehoused runs.

        One summary per run cell (sorted by app, scheme, selection,
        fault shape): outcome tallies plus the Wilson CI on the SDC
        rate.  ``app``/``scheme`` filter exactly.
        """
        clauses, params = [], []
        if app is not None:
            clauses.append("c.app = ?")
            params.append(app)
        if scheme is not None:
            clauses.append("c.scheme = ?")
            params.append(scheme)
        where = "WHERE c.kind = 'runs'"
        if clauses:
            where += " AND " + " AND ".join(clauses)
        cells = self._conn.execute(
            f"SELECT c.digest, c.label, c.app, c.scheme, c.selection, "
            f"c.n_blocks, c.n_bits, c.rows FROM cells c {where} "
            f"ORDER BY c.app, c.scheme, c.selection, c.n_blocks, "
            f"c.n_bits, c.digest",
            params,
        ).fetchall()
        summaries = []
        for (digest, label, app_name, scheme_name, selection,
             n_blocks, n_bits, n_rows) in cells:
            outcome_rows = self._conn.execute(
                "SELECT outcome, COUNT(*) FROM runs WHERE cell = ? "
                "GROUP BY outcome ORDER BY outcome", (digest,)
            ).fetchall()
            outcomes = dict(outcome_rows)
            sdc = outcomes.get("sdc", 0)
            interval = (confidence_interval(sdc, n_rows, level)
                        if n_rows else zero_run_interval(level))
            summaries.append({
                "digest": digest,
                "label": label,
                "app": app_name,
                "scheme": scheme_name,
                "selection": selection,
                "n_blocks": n_blocks,
                "n_bits": n_bits,
                "runs": n_rows,
                "outcomes": outcomes,
                "sdc_interval": interval.to_dict(),
            })
        return summaries

    def export(self, digest: str) -> str:
        """Reproduce one cell's source stream, byte-identical.

        JSONL cells come back as their canonical record lines in
        original order (ascending run index / sequence); a bench cell
        comes back as its single canonical JSON object plus newline.
        Raises :class:`StoreError` for an unknown digest.
        """
        row = self._conn.execute(
            "SELECT kind FROM cells WHERE digest = ?", (digest,)
        ).fetchone()
        if row is None:
            raise StoreError(
                f"{self.path}: no cell with digest {digest!r}"
            )
        kind = row[0]
        order = {
            "runs": ("runs", "run_index"),
            "provenance": ("provenance", "run_index"),
            "decisions": ("decisions", "seq"),
            "session": ("session_events", "seq"),
            "bench": ("bench", "rowid"),
        }[kind]
        lines = self._conn.execute(
            f"SELECT record FROM {order[0]} WHERE cell = ? "
            f"ORDER BY {order[1]}", (digest,)
        ).fetchall()
        return "".join(line + "\n" for (line,) in lines)

    # -- bulk views used by the report ----------------------------------
    def provenance_records(self) -> list[dict]:
        """Every warehoused provenance record, in cell/run order."""
        rows = self._conn.execute(
            "SELECT p.record FROM provenance p JOIN cells c "
            "ON p.cell = c.digest "
            "ORDER BY c.app, c.scheme, c.selection, c.n_blocks, "
            "c.n_bits, c.digest, p.run_index"
        ).fetchall()
        return [json.loads(record) for (record,) in rows]

    def cause_counts(self) -> list[tuple[str, str, str, int]]:
        """(app, scheme, cause, runs) tallies over the provenance."""
        return self._conn.execute(
            "SELECT c.app, c.scheme, p.cause, COUNT(*) "
            "FROM provenance p JOIN cells c ON p.cell = c.digest "
            "GROUP BY c.app, c.scheme, p.cause "
            "ORDER BY c.app, c.scheme, p.cause"
        ).fetchall()

    def decision_trails(self) -> list[dict]:
        """Every adaptive stop trail: label + ordered decision rows."""
        cells = self._conn.execute(
            "SELECT digest, label FROM cells WHERE kind = 'decisions' "
            "ORDER BY label, digest"
        ).fetchall()
        trails = []
        for digest, label in cells:
            rows = self._conn.execute(
                "SELECT record FROM decisions WHERE cell = ? "
                "ORDER BY seq", (digest,)
            ).fetchall()
            trails.append({
                "digest": digest,
                "label": label,
                "decisions": [json.loads(r) for (r,) in rows],
            })
        return trails

    def bench_snapshots(self) -> list[dict]:
        """Every bench snapshot: name, digest, and the payload."""
        rows = self._conn.execute(
            "SELECT b.name, b.cell, b.record FROM bench b "
            "ORDER BY b.name, b.cell"
        ).fetchall()
        return [
            {"name": name, "digest": digest,
             "snapshot": json.loads(record)}
            for name, digest, record in rows
        ]


def ingest_files(
    store: ResultsStore, paths: Iterable[str],
    kind: str | None = None,
) -> list[dict]:
    """Ingest many files into ``store``; receipts in argument order."""
    receipts = []
    for path in paths:
        receipts.extend(store.ingest(path, kind=kind))
    return receipts
