"""Perfetto / Chrome ``trace_events`` export of a trace session.

The exported file is the JSON object format of the Trace Event spec
(``{"traceEvents": [...], ...}``): load it at https://ui.perfetto.dev
or ``chrome://tracing``.  Timestamps are simulated GPU cycles carried
in the microsecond field, so 1 µs in the viewer reads as 1 core cycle.

Every span and instant carries the owning data object in
``args["obj"]`` — select a track and filter by the argument to see
which object's traffic occupies an SM, a DRAM bank or a NoC link.

Serialization is canonical (sorted keys, fixed separators), so two
exports of deterministic sessions are byte-comparable — the jobs=1
vs jobs=N golden-trace equivalence test relies on this.

Campaign lifecycle spans bridge into the same document:
:func:`campaign_lifecycle_events` renders a campaign result (and its
adaptive stop decisions) onto the dedicated :data:`PID_CAMPAIGN`
process — a campaign-wide span, committed-chunk spans, one outcome
instant per run, one instant per stop decision — with the run index
as the clock.  Passed as ``extra_events`` to :func:`chrome_trace`,
they land next to the simulator tracks in one Perfetto view.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.faults.outcomes import Outcome
from repro.obs.trace import (
    PID_CAMPAIGN,
    PID_COUNTERS,
    TID_CAMPAIGN_DECISIONS,
    TID_CAMPAIGN_RUNS,
    TID_CAMPAIGN_SPANS,
    TID_MAIN,
    TraceSession,
)

#: Phase codes this exporter emits (and the validator accepts).
_PHASES = frozenset({"X", "i", "C", "M"})

#: Keys every exported event must carry, per phase.
_REQUIRED_KEYS = {
    "X": ("name", "cat", "ph", "ts", "dur", "pid", "tid"),
    "i": ("name", "cat", "ph", "ts", "pid", "tid", "s"),
    "C": ("name", "ph", "ts", "pid", "args"),
    "M": ("name", "ph", "pid", "args"),
}

#: Counter-track names derived from interval samples.
INTERVAL_COUNTERS = ("ipc", "mshr_occupancy", "row_hit_rate")


class TraceExportError(ReproError):
    """An exported trace document failed validation."""


def campaign_lifecycle_events(result, decisions=None) -> list[dict]:
    """Campaign lifecycle as ``trace_events`` on :data:`PID_CAMPAIGN`.

    ``result`` is a :class:`~repro.faults.campaign.CampaignResult`
    (duck-typed: only its names, config, counts and record lists are
    touched); ``decisions`` the optional
    :class:`~repro.faults.adaptive.StopDecision` trail.  The clock is
    the run index — position in the deterministic run sequence — so
    the rendered events are byte-identical at any ``--jobs``/
    ``--batch``: chunk spans come from the *committed* decision
    boundaries, never from worker scheduling.

    Per-run outcome instants prefer the result's provenance records
    (each instant then carries the cause, evidence and primary fault
    object in ``args``), falling back to telemetry records, else no
    run track is emitted.
    """
    events: list[dict[str, Any]] = [
        {
            "ph": "M", "pid": PID_CAMPAIGN, "tid": TID_MAIN,
            "name": "process_name",
            "args": {"name": "campaign lifecycle"},
        },
        {
            "ph": "M", "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_SPANS,
            "name": "thread_name", "args": {"name": "campaign"},
        },
        {
            "ph": "M", "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_RUNS,
            "name": "thread_name", "args": {"name": "runs"},
        },
        {
            "ph": "M", "pid": PID_CAMPAIGN,
            "tid": TID_CAMPAIGN_DECISIONS,
            "name": "thread_name", "args": {"name": "adaptive decisions"},
        },
    ]
    n_runs = result.n_runs
    events.append({
        "ph": "X", "ts": 0, "dur": max(n_runs, 1),
        "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_SPANS,
        "cat": "campaign",
        "name": f"campaign {result.app_name}/{result.scheme_name}",
        "args": {
            "app": result.app_name,
            "scheme": result.scheme_name,
            "selection": result.selection_name,
            "runs": n_runs,
        },
    })
    for decision in decisions or ():
        events.append({
            "ph": "i", "ts": decision.committed, "s": "t",
            "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_DECISIONS,
            "cat": "campaign", "name": "stop-decision",
            "args": {
                "committed": decision.committed,
                "sdc": decision.sdc,
                "margin": decision.interval.margin,
                "stop": decision.stop,
            },
        })
    # Chunk spans between committed decision boundaries — a partition
    # of the run index space that every worker layout agrees on.
    prev = 0
    for decision in decisions or ():
        events.append({
            "ph": "X", "ts": prev, "dur": decision.committed - prev,
            "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_SPANS,
            "cat": "campaign", "name": "chunk",
            "args": {
                "committed": decision.committed,
                "sdc": decision.sdc,
                "stop": decision.stop,
            },
        })
        prev = decision.committed
    if result.provenance:
        for record in result.provenance:
            args = {"cause": record.cause, "evidence": record.evidence}
            if record.sites:
                args["obj"] = record.sites[0].object
            events.append({
                "ph": "i", "ts": record.run_index, "s": "t",
                "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_RUNS,
                "cat": "campaign", "name": record.outcome,
                "args": args,
            })
    elif result.records:
        for record in result.records:
            events.append({
                "ph": "i", "ts": record.run_index, "s": "t",
                "pid": PID_CAMPAIGN, "tid": TID_CAMPAIGN_RUNS,
                "cat": "campaign", "name": record.outcome,
            })
    return events


def chrome_trace(
    session: TraceSession, label: str = "",
    extra_events: list[dict] | None = None,
) -> dict:
    """Render a session as a Chrome/Perfetto ``trace_events`` document.

    ``extra_events`` (e.g. :func:`campaign_lifecycle_events` output)
    are appended verbatim after the session's own events.
    """
    events: list[dict[str, Any]] = []
    for pid, name in sorted(session.process_names.items()):
        events.append({
            "ph": "M", "pid": pid, "tid": TID_MAIN,
            "name": "process_name", "args": {"name": name},
        })
    for (pid, tid), name in sorted(session.thread_names.items()):
        events.append({
            "ph": "M", "pid": pid, "tid": tid,
            "name": "thread_name", "args": {"name": name},
        })
    for ev in session.events:
        args: dict[str, Any] = dict(ev.args) if ev.args else {}
        if ev.obj is not None:
            args["obj"] = ev.obj
        entry: dict[str, Any] = {
            "ph": ev.ph, "ts": ev.ts, "pid": ev.pid, "tid": ev.tid,
            "cat": ev.cat, "name": ev.name,
        }
        if ev.ph == "X":
            entry["dur"] = ev.dur
        elif ev.ph == "i":
            entry["s"] = "t"  # thread-scoped instant
        if args or ev.ph == "C":
            entry["args"] = args
        events.append(entry)
    for sample in session.samples:
        ts = sample["cycle"]
        for name in INTERVAL_COUNTERS:
            if name in sample:
                events.append({
                    "ph": "C", "ts": ts, "pid": PID_COUNTERS,
                    "tid": TID_MAIN, "name": name,
                    "args": {"value": sample[name]},
                })
        obj_bytes = sample.get("object_read_bytes") or {}
        if obj_bytes:
            events.append({
                "ph": "C", "ts": ts, "pid": PID_COUNTERS,
                "tid": TID_MAIN, "name": "object_read_bytes",
                "args": dict(obj_bytes),
            })
    if session.samples and PID_COUNTERS not in session.process_names:
        events.insert(0, {
            "ph": "M", "pid": PID_COUNTERS, "tid": TID_MAIN,
            "name": "process_name", "args": {"name": "interval counters"},
        })
    if extra_events:
        events.extend(extra_events)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "clock": "gpu-core-cycles",
            "events_emitted": session.emitted,
            "events_dropped": session.dropped,
            "interval_cycles": session.config.interval_cycles,
            "sample_rate": session.config.sample_rate,
            "sample_seed": session.config.seed,
        },
    }


def render_chrome_trace(
    session: TraceSession, label: str = "",
    extra_events: list[dict] | None = None,
) -> str:
    """Canonical JSON text of :func:`chrome_trace` (byte-comparable)."""
    return json.dumps(
        chrome_trace(session, label=label, extra_events=extra_events),
        sort_keys=True, separators=(",", ":"),
    ) + "\n"


def write_chrome_trace(
    session: TraceSession, path: str, label: str = "",
    extra_events: list[dict] | None = None,
) -> int:
    """Write the session's trace to ``path``; returns the event count."""
    doc = chrome_trace(session, label=label, extra_events=extra_events)
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(json.dumps(doc, sort_keys=True, separators=(",", ":")))
        fh.write("\n")
    return len(doc["traceEvents"])


def validate_trace_events(doc: Any) -> int:
    """Check a trace document against the subset of the Trace Event
    format this exporter produces; returns the number of events.

    Raises :class:`TraceExportError` on a malformed document — used by
    the export tests and the CI trace smoke step.
    """
    if not isinstance(doc, dict):
        raise TraceExportError(f"trace must be an object, got {type(doc)}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise TraceExportError("traceEvents must be a non-empty list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise TraceExportError(f"event {i}: not an object")
        ph = ev.get("ph")
        if ph not in _PHASES:
            raise TraceExportError(f"event {i}: unknown phase {ph!r}")
        for key in _REQUIRED_KEYS[ph]:
            if key not in ev:
                raise TraceExportError(
                    f"event {i} (ph={ph}): missing key {key!r}"
                )
        for key in ("pid", "tid"):
            if key in ev and not isinstance(ev[key], int):
                raise TraceExportError(f"event {i}: {key} must be int")
        if "ts" in ev:
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                raise TraceExportError(
                    f"event {i}: ts must be a non-negative number"
                )
        if ph == "X":
            dur = ev["dur"]
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TraceExportError(
                    f"event {i}: dur must be a non-negative number"
                )
        if ph == "C":
            args = ev["args"]
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                raise TraceExportError(
                    f"event {i}: counter args must map name -> number"
                )
        if ph == "M":
            if ev["name"] not in ("process_name", "thread_name"):
                raise TraceExportError(
                    f"event {i}: unknown metadata {ev['name']!r}"
                )
            if not isinstance(ev.get("args", {}).get("name"), str):
                raise TraceExportError(
                    f"event {i}: metadata args.name must be a string"
                )
        elif ev.get("pid") == PID_CAMPAIGN:
            # Campaign-lifecycle track contract: everything is in the
            # "campaign" category, and the run track's instants are
            # named by the outcome taxonomy.
            if ev.get("cat") != "campaign":
                raise TraceExportError(
                    f"event {i}: campaign-track events must have "
                    "cat 'campaign'"
                )
            if ph == "i" and ev.get("tid") == TID_CAMPAIGN_RUNS \
                    and ev["name"] not in _OUTCOME_NAMES:
                raise TraceExportError(
                    f"event {i}: run instant name {ev['name']!r} is "
                    "not an outcome"
                )
    return len(events)


_OUTCOME_NAMES = frozenset(o.value for o in Outcome)


def validate_trace_file(path: str) -> int:
    """Load and validate an exported trace file; returns event count."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise TraceExportError(f"{path}: not valid JSON ({exc})") \
                from None
    try:
        return validate_trace_events(doc)
    except TraceExportError as exc:
        raise TraceExportError(f"{path}: {exc}") from None
