"""Telemetry-file summarization backing ``repro stats``.

Groups the records of a JSONL telemetry file by campaign identity
(app, scheme, selection, fault grid), tallies outcomes, and reports
the SDC rate with its confidence interval plus error-magnitude and
fault-placement statistics — a compact audit of what a campaign (or a
whole tradeoff sweep) actually did, reproducible from the file alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.outcomes import Outcome
from repro.obs.records import read_records
from repro.utils.stats import (
    ConfidenceInterval,
    confidence_interval,
    zero_run_interval,
)


@dataclass
class GroupSummary:
    """Aggregated statistics of one campaign's records."""

    app: str
    scheme: str
    selection: str
    n_blocks: int
    n_bits: int
    runs: int = 0
    outcome_counts: dict[str, int] = field(
        default_factory=lambda: {o.value: 0 for o in Outcome}
    )
    error_total: float = 0.0
    error_max: float = 0.0
    fault_bits: int = 0
    fault_blocks: set[int] = field(default_factory=set)

    @property
    def sdc_count(self) -> int:
        """Number of silent-data-corruption runs in the group."""
        return self.outcome_counts[Outcome.SDC.value]

    @property
    def sdc_rate(self) -> float:
        """Fraction of runs ending in SDC."""
        return self.sdc_count / self.runs if self.runs else 0.0

    def sdc_interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Confidence interval on the group's SDC rate.

        A group with zero runs (a truncated or filtered-empty stream)
        reports the vacuous [0, 1] interval instead of raising, so
        ``repro stats`` always renders.
        """
        if self.runs == 0:
            return zero_run_interval(level)
        return confidence_interval(self.sdc_count, self.runs, level)

    @property
    def mean_error(self) -> float:
        """Mean error metric over the group's runs."""
        return self.error_total / self.runs if self.runs else 0.0

    def to_dict(self) -> dict:
        """JSON-ready image of the group (``repro stats --json``).

        Deterministic for a given record stream — sets render as
        counts, floats stay Python floats — so the canonical encoding
        is byte-stable.
        """
        return {
            "app": self.app,
            "scheme": self.scheme,
            "selection": self.selection,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "runs": self.runs,
            "outcomes": dict(self.outcome_counts),
            "sdc_rate": self.sdc_rate,
            "sdc_interval": self.sdc_interval().to_dict(),
            "mean_error": self.mean_error,
            "error_max": self.error_max,
            "fault_bits": self.fault_bits,
            "distinct_blocks": len(self.fault_blocks),
        }


@dataclass
class TelemetrySummary:
    """Everything ``repro stats`` reports about one telemetry file."""

    path: str
    n_records: int
    groups: list[GroupSummary]

    def render(self) -> str:
        """Multi-line human-readable summary table + per-group notes.

        The outcome-count body goes through the canonical
        :func:`repro.analysis.report.outcome_count_table` (imported
        lazily to keep obs free of analysis dependencies), so
        ``repro stats`` and ``repro vuln`` cannot drift apart.
        """
        from repro.analysis.report import outcome_count_table

        lines = [f"{self.path}: {self.n_records} run record(s), "
                 f"{len(self.groups)} campaign(s)"]
        table = outcome_count_table(
            ("app", "scheme", "grid"),
            [
                (
                    (g.app, g.scheme, f"{g.n_blocks}x{g.n_bits}b"),
                    g.runs,
                    dict(g.outcome_counts),
                    (len(g.fault_blocks),),
                )
                for g in self.groups
            ],
            extra_headers=("distinct blocks",),
        )
        lines.append(table.render())
        for g in self.groups:
            lines.append(
                f"  {g.app}/{g.scheme}: SDC {g.sdc_interval()}, "
                f"mean error {g.mean_error:.4g} "
                f"(max {g.error_max:.4g}), "
                f"{g.fault_bits} stuck bit(s) injected"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready image of the whole summary."""
        return {
            "path": self.path,
            "n_records": self.n_records,
            "groups": [group.to_dict() for group in self.groups],
        }


def summarize_records(path: str, records: list[dict]) -> TelemetrySummary:
    """Build a :class:`TelemetrySummary` from validated record dicts."""
    groups: dict[tuple, GroupSummary] = {}
    for rec in records:
        key = (rec["app"], rec["scheme"], rec["selection"],
               rec["n_blocks"], rec["n_bits"])
        group = groups.get(key)
        if group is None:
            group = GroupSummary(*key)
            groups[key] = group
        group.runs += 1
        group.outcome_counts[rec["outcome"]] += 1
        group.error_total += rec["error"]
        group.error_max = max(group.error_max, rec["error"])
        for fault in rec["faults"]:
            group.fault_bits += len(fault["bit_positions"])
            group.fault_blocks.add(fault["block_addr"])
    return TelemetrySummary(
        path=path, n_records=len(records), groups=list(groups.values())
    )


def summarize_file(path: str) -> TelemetrySummary:
    """Validate and summarize a telemetry JSONL file."""
    return summarize_records(path, read_records(path))
