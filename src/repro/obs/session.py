"""Sweep-session observability: a JSONL event log.

While :class:`~repro.obs.records.RunRecord` streams are deterministic
per-run telemetry, a session's *event log* narrates orchestration —
planning, chunk completions (and whether each came from a worker or
the checkpoint store), retries, timeouts, fallbacks, interruption.
Those depend on wall-clock behavior and are explicitly **not** part of
any byte-identity guarantee; they exist so an operator can reconstruct
what a long campaign did overnight.

One event per line, canonical JSON, validated on read like the run
telemetry.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import IO, Iterator

from repro.errors import TelemetryError
from repro.utils.canonical import canonical_json

#: Bumped whenever the event shape changes incompatibly.
SESSION_EVENT_VERSION = 1

#: The closed vocabulary of event kinds.
EVENT_KINDS = (
    "plan",         # session planned its work units
    "chunk",        # one chunk completed (source: run|checkpoint|serial)
    "retry",        # a chunk attempt failed and will be retried
    "timeout",      # a chunk attempt exceeded its deadline
    "fallback",     # the session degraded to in-process serial execution
    "early_stop",   # adaptive cells under target margin skipped chunks
    "progress",     # mirrored live-progress observation (detail field)
    "interrupted",  # the session stopped early with durable progress
    "finish",       # the session completed every planned chunk
)

#: Valid ``source`` values of a ``chunk`` event.
CHUNK_SOURCES = ("run", "serial", "checkpoint")


@dataclass(frozen=True)
class SessionEvent:
    """One line of a session event log."""

    seq: int
    kind: str
    cell: str = ""
    start: int = -1
    stop: int = -1
    attempt: int = 0
    source: str = ""
    detail: str = ""

    def to_dict(self) -> dict:
        """Schema-complete dict image (includes the schema version)."""
        return {
            "version": SESSION_EVENT_VERSION,
            "seq": self.seq,
            "kind": self.kind,
            "cell": self.cell,
            "start": self.start,
            "stop": self.stop,
            "attempt": self.attempt,
            "source": self.source,
            "detail": self.detail,
        }

    def to_json(self) -> str:
        """One canonical-JSON line, as written to the log file."""
        return canonical_json(self.to_dict())


def validate_event(data: dict) -> None:
    """Check one decoded event; raises :class:`TelemetryError`."""
    if not isinstance(data, dict):
        raise TelemetryError(
            f"session event must be an object, got {type(data).__name__}"
        )
    schema = {
        "version": int, "seq": int, "kind": str, "cell": str,
        "start": int, "stop": int, "attempt": int, "source": str,
        "detail": str,
    }
    for key, typ in schema.items():
        if key not in data:
            raise TelemetryError(f"session event missing key {key!r}")
        if not isinstance(data[key], typ) or isinstance(data[key], bool):
            raise TelemetryError(
                f"session event key {key!r} has type "
                f"{type(data[key]).__name__}"
            )
    if data["version"] != SESSION_EVENT_VERSION:
        raise TelemetryError(
            f"unsupported session event version {data['version']}"
        )
    if data["kind"] not in EVENT_KINDS:
        raise TelemetryError(f"unknown session event kind "
                             f"{data['kind']!r}")
    if data["kind"] == "chunk" and data["source"] not in CHUNK_SOURCES:
        raise TelemetryError(
            f"chunk event source {data['source']!r} not in "
            f"{CHUNK_SOURCES}"
        )


class SessionLog:
    """Append-only JSONL sink for :class:`SessionEvent` streams."""

    def __init__(self, path: str):
        self.path = path
        self._fh: IO[str] | None = None
        self._seq = 0

    def __enter__(self) -> "SessionLog":
        self._open()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _open(self) -> None:
        if self._fh is None:
            self._fh = open(self.path, "w", encoding="utf-8",
                            newline="\n")

    def emit(self, kind: str, **fields) -> SessionEvent:
        """Append one event; sequence numbers are assigned here."""
        event = SessionEvent(seq=self._seq, kind=kind, **fields)
        validate_event(event.to_dict())
        self._open()
        self._fh.write(event.to_json() + "\n")
        self._fh.flush()
        self._seq += 1
        return event

    @property
    def n_written(self) -> int:
        return self._seq

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def iter_session_events(path: str) -> Iterator[dict]:
    """Yield validated event dicts from a session log file."""
    with open(path, "r", encoding="utf-8") as fh:
        expected_seq = 0
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not valid JSON ({exc})"
                ) from None
            try:
                validate_event(data)
            except TelemetryError as exc:
                raise TelemetryError(f"{path}:{lineno}: {exc}") from None
            if data["seq"] != expected_seq:
                raise TelemetryError(
                    f"{path}:{lineno}: sequence gap (got {data['seq']}, "
                    f"expected {expected_seq})"
                )
            expected_seq += 1
            yield data


def read_session_events(path: str) -> list[dict]:
    """Load and validate every event of a session log file."""
    return list(iter_session_events(path))
