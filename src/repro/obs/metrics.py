"""Counters and histograms for run-level observability.

A :class:`MetricsRegistry` is the sink that the simulator (SM stalls,
MSHR/compare-queue pressure, DRAM bank-queue and row-hit
distributions), the campaign runner (per-outcome latency, fault
placement) and the parallel executor (chunk timings, worker
utilization, app-cache hits) all report into.  Registries live per
process; a worker serializes its registry to a plain-dict *snapshot*
(:meth:`MetricsRegistry.snapshot`) that travels home with the chunk
result and is folded into the parent's registry with
:meth:`MetricsRegistry.merge_snapshot` — so parallel campaigns end up
with the same aggregate metrics a serial run would produce.

Metrics are observability only: nothing in the registry feeds back
into simulation or campaign results, and the deterministic telemetry
records (:mod:`repro.obs.records`) never include registry values, so
wall-clock noise cannot break run-for-run reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MetricsError

#: Default histogram bucket upper bounds: exponential, base 2, from 1
#: to ~1M — wide enough for cycle counts and millisecond latencies
#: alike.  The last bucket is the +inf overflow.
DEFAULT_BUCKET_BOUNDS = tuple(2 ** i for i in range(21))


@dataclass
class Counter:
    """A monotonically adjustable integer metric."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (default 1) to the counter."""
        self.value += int(n)

    def set(self, value: int) -> None:
        """Overwrite the counter (for gauges sampled from elsewhere)."""
        self.value = int(value)


@dataclass
class Histogram:
    """A fixed-bucket histogram with exact count/total/min/max.

    ``bounds[i]`` is the inclusive upper edge of bucket ``i``; one
    extra overflow bucket catches everything above the last bound.
    """

    bounds: tuple[float, ...] = DEFAULT_BUCKET_BOUNDS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    vmin: float = float("inf")
    vmax: float = float("-inf")

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        self.vmin = min(self.vmin, value)
        self.vmax = max(self.vmax, value)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram into this one.

        Raises :class:`~repro.errors.MetricsError` when the bucket
        bounds differ — the counts would land in incomparable buckets.
        """
        if tuple(other.bounds) != tuple(self.bounds):
            raise MetricsError(
                "cannot merge histograms with different bucket bounds"
            )
        self.count += other.count
        self.total += other.total
        if other.count:
            self.vmin = min(self.vmin, other.vmin)
            self.vmax = max(self.vmax, other.vmax)
        for i, n in enumerate(other.counts):
            self.counts[i] += n


class MetricsRegistry:
    """A named collection of counters and histograms.

    Names are dotted paths (``"sim.stalls.mshr_full"``); both metric
    kinds are created on first use, so reporting code never has to
    pre-register anything.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter called ``name``, created at zero if absent."""
        c = self._counters.get(name)
        if c is None:
            c = Counter()
            self._counters[name] = c
        return c

    def histogram(
        self, name: str, bounds: tuple[float, ...] | None = None
    ) -> Histogram:
        """The histogram called ``name``, created empty if absent."""
        h = self._histograms.get(name)
        if h is None:
            h = Histogram(bounds=bounds or DEFAULT_BUCKET_BOUNDS)
            self._histograms[name] = h
        return h

    def inc(self, name: str, n: int = 1) -> None:
        """Shorthand for ``counter(name).inc(n)``."""
        self.counter(name).inc(n)

    def observe(self, name: str, value: float) -> None:
        """Shorthand for ``histogram(name).observe(value)``."""
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, int]:
        """Current counter values, keyed by name."""
        return {name: c.value for name, c in sorted(self._counters.items())}

    @property
    def histograms(self) -> dict[str, Histogram]:
        """The live histogram objects, keyed by name."""
        return dict(sorted(self._histograms.items()))

    def snapshot(self) -> dict:
        """A picklable plain-dict image of every metric.

        The inverse is :meth:`merge_snapshot`; worker processes ship
        snapshots home inside their chunk results.
        """
        return {
            "counters": self.counters,
            "histograms": {
                name: {
                    "bounds": list(h.bounds),
                    "counts": list(h.counts),
                    "count": h.count,
                    "total": h.total,
                    "vmin": h.vmin,
                    "vmax": h.vmax,
                }
                for name, h in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snap: dict | None) -> None:
        """Fold a :meth:`snapshot` dict into this registry (additive).

        Every histogram in the snapshot must share its bucket bounds
        with the registry's histogram of the same name (absent names
        adopt the snapshot's bounds); a mismatch — workers configured
        with different bucket layouts — raises
        :class:`~repro.errors.MetricsError` naming the metric instead
        of silently mixing incomparable buckets.
        """
        if not snap:
            return
        for name, value in snap.get("counters", {}).items():
            self.inc(name, value)
        for name, data in snap.get("histograms", {}).items():
            other = Histogram(
                bounds=tuple(data["bounds"]),
                counts=list(data["counts"]),
                count=data["count"],
                total=data["total"],
                vmin=data["vmin"],
                vmax=data["vmax"],
            )
            mine = self._histograms.get(name)
            if mine is not None \
                    and tuple(mine.bounds) != tuple(other.bounds):
                raise MetricsError(
                    f"histogram {name!r}: snapshot bucket bounds do not "
                    "match this registry's — the snapshot comes from a "
                    "registry configured with a different bucket layout"
                )
            self.histogram(name, bounds=other.bounds).merge(other)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry into this one (additive)."""
        self.merge_snapshot(other.snapshot())

    def render(self) -> str:
        """Human-readable multi-line dump of every metric."""
        lines = []
        for name, value in self.counters.items():
            lines.append(f"{name} = {value}")
        for name, h in self.histograms.items():
            if not h.count:
                continue
            lines.append(
                f"{name}: n={h.count} mean={h.mean:.3g} "
                f"min={h.vmin:.3g} max={h.vmax:.3g}"
            )
        return "\n".join(lines)
