"""Run-level observability: metrics registry + per-run telemetry.

Two complementary surfaces:

* :class:`~repro.obs.metrics.MetricsRegistry` — in-process counters
  and histograms that the timing simulator, the campaign runner and
  the parallel executor report into (pressure, latency, utilization —
  things that may vary run to run and machine to machine);
* :class:`~repro.obs.records.RunRecord` — the deterministic per-run
  JSONL telemetry (seed, faults, outcome, error, scheme counters)
  whose byte-identity across worker counts is itself a tested
  invariant.

``repro stats <file>`` (see :mod:`repro.obs.summary`) summarizes a
telemetry file from the command line.

A third surface is the cycle-level trace subsystem
(:mod:`repro.obs.trace` / :mod:`repro.obs.perfetto`): a
:class:`~repro.obs.trace.TraceSession` records typed, data-object-
attributed events from an instrumented timing simulation into a
bounded ring buffer and exports them as Perfetto/Chrome
``trace_events`` JSON (``repro trace``).  :mod:`repro.obs.log` is the
CLI's verbosity-aware structured logger.
"""

from repro.obs.log import Logger, configure, get_logger
from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.perfetto import (
    TraceExportError,
    chrome_trace,
    render_chrome_trace,
    validate_trace_events,
    validate_trace_file,
    write_chrome_trace,
)
from repro.obs.trace import (
    TRACE_CATEGORIES,
    UNATTRIBUTED,
    ObjectMap,
    ObjectTraceStats,
    TraceConfig,
    TraceEvent,
    TraceSession,
)
from repro.obs.progress import (
    PROGRESS_EVENT_VERSION,
    ProgressEvent,
    TtyProgress,
)
from repro.obs.records import (
    RUN_RECORD_VERSION,
    RunRecord,
    TelemetryError,
    TelemetryWriter,
    iter_records,
    read_records,
    records_in_order,
    validate_record,
)
from repro.obs.store import (
    STORE_SCHEMA_VERSION,
    ResultsStore,
    detect_kind,
    ingest_files,
)
from repro.obs.session import (
    SESSION_EVENT_VERSION,
    SessionEvent,
    SessionLog,
    iter_session_events,
    read_session_events,
    validate_event,
)
from repro.obs.summary import (
    GroupSummary,
    TelemetrySummary,
    summarize_file,
    summarize_records,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RUN_RECORD_VERSION",
    "RunRecord",
    "TelemetryError",
    "TelemetryWriter",
    "iter_records",
    "read_records",
    "records_in_order",
    "validate_record",
    "GroupSummary",
    "TelemetrySummary",
    "summarize_file",
    "summarize_records",
    "SESSION_EVENT_VERSION",
    "SessionEvent",
    "SessionLog",
    "iter_session_events",
    "read_session_events",
    "validate_event",
    "PROGRESS_EVENT_VERSION",
    "ProgressEvent",
    "TtyProgress",
    "STORE_SCHEMA_VERSION",
    "ResultsStore",
    "detect_kind",
    "ingest_files",
    "Logger",
    "configure",
    "get_logger",
    "TRACE_CATEGORIES",
    "UNATTRIBUTED",
    "ObjectMap",
    "ObjectTraceStats",
    "TraceConfig",
    "TraceEvent",
    "TraceSession",
    "TraceExportError",
    "chrome_trace",
    "render_chrome_trace",
    "validate_trace_events",
    "validate_trace_file",
    "write_chrome_trace",
]
