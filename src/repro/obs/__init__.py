"""Run-level observability: metrics registry + per-run telemetry.

Two complementary surfaces:

* :class:`~repro.obs.metrics.MetricsRegistry` — in-process counters
  and histograms that the timing simulator, the campaign runner and
  the parallel executor report into (pressure, latency, utilization —
  things that may vary run to run and machine to machine);
* :class:`~repro.obs.records.RunRecord` — the deterministic per-run
  JSONL telemetry (seed, faults, outcome, error, scheme counters)
  whose byte-identity across worker counts is itself a tested
  invariant.

``repro stats <file>`` (see :mod:`repro.obs.summary`) summarizes a
telemetry file from the command line.
"""

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.records import (
    RUN_RECORD_VERSION,
    RunRecord,
    TelemetryError,
    TelemetryWriter,
    iter_records,
    read_records,
    records_in_order,
    validate_record,
)
from repro.obs.summary import (
    GroupSummary,
    TelemetrySummary,
    summarize_file,
    summarize_records,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "RUN_RECORD_VERSION",
    "RunRecord",
    "TelemetryError",
    "TelemetryWriter",
    "iter_records",
    "read_records",
    "records_in_order",
    "validate_record",
    "GroupSummary",
    "TelemetrySummary",
    "summarize_file",
    "summarize_records",
]
