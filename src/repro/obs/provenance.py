"""Fault-provenance records and per-object vulnerability attribution.

The telemetry surface (:mod:`repro.obs.records`) says *what* outcome
each injected run produced; this module says *why*.  One
:class:`ProvenanceRecord` per injected run captures the fault site
(owning object, word offset, bit masks, hot/rest region, liveness
class), the propagation story measured against the golden read
timeline (first corrupted read position, how many reads consume
corrupted bytes, per-consuming-object fan-out), and a masking or
detection *cause* from a small taxonomy (:data:`PROVENANCE_CAUSES`).

Every field derives from the campaign's deterministic inputs — the
:class:`GoldenEvidence` base captured once from the fault-free
reference execution, plus the run's ``(seed, run_index)``-derived
faults and its :class:`~repro.faults.outcomes.RunResult` — never from
how the run happened to execute.  The batch engine's analytic lanes
(:mod:`repro.faults.batch`) therefore emit byte-identical records to
scalar execution, labeled ``evidence: "analytic"``; a lane is labeled
analytic exactly when the classifier *can* decide it, a property of
the faults and the golden evidence, not of the execution strategy.
Like run telemetry, provenance JSONL is canonical JSON, one record per
line, byte-identical at any ``--jobs``/``--batch``.

"Read position" here means the index into the golden run's positional
read stream (:meth:`~repro.obs.trace.GoldenTimeline.reads`) — the
propagation story is an *exposure* measure over the fault-free
timeline, which is what keeps it strategy-invariant.

:func:`vulnerability_profiles` aggregates record streams into a
DVF-style per-object table (SDC/DUE/masked breakdown with Wilson CIs,
reads-at-risk, liveness exposure) backing the ``repro vuln``
subcommand and the vulnerability heatmap in
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.arch.address_space import BLOCK_BYTES, DataObject
from repro.core.schemes import make_scheme
from repro.errors import FaultDetected, TelemetryError
from repro.faults.injector import merge_fault_masks, overlay_read_value
from repro.faults.model import FaultSpec
from repro.faults.outcomes import Outcome, RunResult
from repro.obs.records import JsonlWriter, iter_validated_jsonl
from repro.obs.trace import GoldenTimeline
from repro.utils.stats import (
    ConfidenceInterval,
    confidence_interval,
    zero_run_interval,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.campaign import Campaign

#: Bumped whenever the provenance record shape changes incompatibly.
PROVENANCE_RECORD_VERSION = 1

#: The masking/detection cause taxonomy.  Masked runs: the stuck bits
#: agree with the data underneath (``value-agrees``), the word is on no
#: read path (``dead-word``), every read sees post-overwrite content
#: the fault agrees with (``overwritten-before-read``), the SECDED
#: decode repaired the cluster (``secded-corrected``), or corrupted
#: data was really consumed yet the output stayed within threshold
#: (``tolerated``).  Loud runs: ``replica-detected`` (detection scheme
#: mismatch), ``secded-due`` (detected-uncorrectable ECC error),
#: ``crash``.  ``replica-voted`` is the correction scheme repairing
#: reads; ``output-corrupted`` is SDC.
PROVENANCE_CAUSES = (
    "value-agrees",
    "dead-word",
    "overwritten-before-read",
    "tolerated",
    "secded-corrected",
    "secded-due",
    "replica-detected",
    "replica-voted",
    "output-corrupted",
    "crash",
)

#: How a record's classification was established: ``analytic`` lanes
#: are decided from the golden evidence alone (the batch engine skips
#: execution for them), ``executed`` lanes ran the application.  The
#: label is a property of (faults, golden evidence) — identical no
#: matter which strategy actually produced the record.
EVIDENCE_KINDS = ("analytic", "executed")

#: Paper vocabulary for the fault site's object class.
REGIONS = ("hot", "rest")

#: Liveness exposure classes: the golden-timeline window of the object
#: (``dead``/``input``/``working``), or ``internal`` for objects
#: consumed only by scheme-internal reads the positional trace cannot
#: see.
LIVENESS_CLASSES = ("dead", "input", "working", "internal")

#: Required keys of each entry of a record's ``sites`` list.
SITE_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "object": str,
    "region": str,
    "liveness": str,
    "block_addr": int,
    "word_index": int,
    "byte_offset": int,
    "bit_positions": list,
    "stuck_values": list,
    "visible": bool,
}

#: Required top-level keys and their JSON types — the wire schema that
#: :func:`validate_provenance` enforces.
PROVENANCE_RECORD_SCHEMA: dict[str, type | tuple[type, ...]] = {
    "version": int,
    "run_index": int,
    "seed": int,
    "app": str,
    "scheme": str,
    "selection": str,
    "n_blocks": int,
    "n_bits": int,
    "outcome": str,
    "evidence": str,
    "cause": str,
    "sites": list,
    "first_corrupted_read": (int, type(None)),
    "corrupted_reads": int,
    "consumers": dict,
    "detection": (dict, type(None)),
}

__all__ = [
    "EVIDENCE_KINDS",
    "GoldenEvidence",
    "LIVENESS_CLASSES",
    "PROVENANCE_CAUSES",
    "PROVENANCE_RECORD_SCHEMA",
    "PROVENANCE_RECORD_VERSION",
    "ProvenanceRecord",
    "ProvenanceSite",
    "ProvenanceWriter",
    "REGIONS",
    "SITE_SCHEMA",
    "VulnerabilityProfile",
    "iter_provenance",
    "read_provenance",
    "top_sdc_objects",
    "validate_provenance",
    "vulnerability_profiles",
]

_OUTCOME_VALUES = frozenset(o.value for o in Outcome)


@dataclass(frozen=True, slots=True)
class ProvenanceSite:
    """Where one injected fault cluster lives, in data-centric terms."""

    object: str
    region: str
    liveness: str
    block_addr: int
    word_index: int
    #: Offset of the faulted word's first byte within its object's
    #: data (may point into block padding past ``nbytes``).
    byte_offset: int
    bit_positions: tuple[int, ...]
    stuck_values: tuple[int, ...]
    #: Whether the fault's own stuck bits diverge from the object's
    #: content at injection time (in-bounds bytes only).
    visible: bool

    def to_dict(self) -> dict:
        """The site as a JSON-ready plain dict."""
        return {
            "object": self.object,
            "region": self.region,
            "liveness": self.liveness,
            "block_addr": self.block_addr,
            "word_index": self.word_index,
            "byte_offset": self.byte_offset,
            "bit_positions": list(self.bit_positions),
            "stuck_values": list(self.stuck_values),
            "visible": self.visible,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceSite":
        return cls(
            object=data["object"],
            region=data["region"],
            liveness=data["liveness"],
            block_addr=data["block_addr"],
            word_index=data["word_index"],
            byte_offset=data["byte_offset"],
            bit_positions=tuple(data["bit_positions"]),
            stuck_values=tuple(data["stuck_values"]),
            visible=data["visible"],
        )


@dataclass(frozen=True, slots=True)
class ProvenanceRecord:
    """The deterministic provenance of one fault-injection run."""

    run_index: int
    seed: int
    app: str
    scheme: str
    selection: str
    n_blocks: int
    n_bits: int
    outcome: str
    evidence: str
    cause: str
    sites: tuple[ProvenanceSite, ...]
    #: Position in the golden read stream of the first read consuming
    #: corrupted bytes (``None`` when no read ever does).
    first_corrupted_read: int | None
    #: How many golden-stream reads consume corrupted bytes.
    corrupted_reads: int
    #: Per consuming object, its count of corrupted reads.
    consumers: tuple[tuple[str, int], ...] = ()
    #: ``(object, read position)`` where the detection scheme fires,
    #: when derivable from the golden evidence alone; ``None``
    #: otherwise.
    detection: tuple[str, int] | None = None

    def to_dict(self) -> dict:
        """The record as a JSON-ready plain dict."""
        return {
            "version": PROVENANCE_RECORD_VERSION,
            "run_index": self.run_index,
            "seed": self.seed,
            "app": self.app,
            "scheme": self.scheme,
            "selection": self.selection,
            "n_blocks": self.n_blocks,
            "n_bits": self.n_bits,
            "outcome": self.outcome,
            "evidence": self.evidence,
            "cause": self.cause,
            "sites": [site.to_dict() for site in self.sites],
            "first_corrupted_read": self.first_corrupted_read,
            "corrupted_reads": self.corrupted_reads,
            "consumers": {name: n for name, n in self.consumers},
            "detection": None if self.detection is None else {
                "object": self.detection[0],
                "read_position": self.detection[1],
            },
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, fixed separators)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    @classmethod
    def from_dict(cls, data: dict) -> "ProvenanceRecord":
        """Rebuild a record from a validated :meth:`to_dict` image."""
        validate_provenance(data)
        detection = data["detection"]
        return cls(
            run_index=data["run_index"],
            seed=data["seed"],
            app=data["app"],
            scheme=data["scheme"],
            selection=data["selection"],
            n_blocks=data["n_blocks"],
            n_bits=data["n_bits"],
            outcome=data["outcome"],
            evidence=data["evidence"],
            cause=data["cause"],
            sites=tuple(
                ProvenanceSite.from_dict(site) for site in data["sites"]
            ),
            first_corrupted_read=data["first_corrupted_read"],
            corrupted_reads=data["corrupted_reads"],
            consumers=tuple(sorted(data["consumers"].items())),
            detection=None if detection is None else (
                detection["object"], detection["read_position"]
            ),
        )


def validate_provenance(data: dict) -> None:
    """Check one decoded record against the provenance wire schema.

    Raises :class:`~repro.errors.TelemetryError` on any missing key,
    wrong type, unknown outcome/evidence/cause, or malformed site.
    """
    if not isinstance(data, dict):
        raise TelemetryError(
            f"provenance record must be an object, got {type(data)}"
        )
    for key, typ in PROVENANCE_RECORD_SCHEMA.items():
        if key not in data:
            raise TelemetryError(f"provenance record missing key {key!r}")
        value = data[key]
        if not isinstance(value, typ) \
                or (typ is not bool and isinstance(value, bool)):
            raise TelemetryError(
                f"provenance key {key!r} has type {type(value).__name__}"
            )
    if data["version"] != PROVENANCE_RECORD_VERSION:
        raise TelemetryError(
            f"unsupported provenance version {data['version']} "
            f"(expected {PROVENANCE_RECORD_VERSION})"
        )
    if data["run_index"] < 0:
        raise TelemetryError("run_index must be non-negative")
    if data["outcome"] not in _OUTCOME_VALUES:
        raise TelemetryError(f"unknown outcome {data['outcome']!r}")
    if data["evidence"] not in EVIDENCE_KINDS:
        raise TelemetryError(f"unknown evidence {data['evidence']!r}")
    if data["cause"] not in PROVENANCE_CAUSES:
        raise TelemetryError(f"unknown cause {data['cause']!r}")
    if data["corrupted_reads"] < 0:
        raise TelemetryError("corrupted_reads must be non-negative")
    first = data["first_corrupted_read"]
    if first is not None and first < 0:
        raise TelemetryError("first_corrupted_read must be non-negative")
    if (first is None) != (data["corrupted_reads"] == 0):
        raise TelemetryError(
            "first_corrupted_read and corrupted_reads disagree on "
            "whether any read consumed corrupted bytes"
        )
    for entry in data["sites"]:
        if not isinstance(entry, dict):
            raise TelemetryError("site entry must be an object")
        for key, typ in SITE_SCHEMA.items():
            value = entry.get(key)
            if key not in entry or not isinstance(value, typ) \
                    or (typ is not bool and isinstance(value, bool)):
                raise TelemetryError(f"site key {key!r} bad/missing")
        if entry["region"] not in REGIONS:
            raise TelemetryError(f"unknown region {entry['region']!r}")
        if entry["liveness"] not in LIVENESS_CLASSES:
            raise TelemetryError(
                f"unknown liveness {entry['liveness']!r}"
            )
        if len(entry["bit_positions"]) != len(entry["stuck_values"]):
            raise TelemetryError("site bit/value length mismatch")
    for name, n in data["consumers"].items():
        if not isinstance(name, str) or not isinstance(n, int) \
                or isinstance(n, bool) or n <= 0:
            raise TelemetryError(
                "consumers must map object name -> positive read count"
            )
    detection = data["detection"]
    if detection is not None:
        if not isinstance(detection.get("object"), str) \
                or not isinstance(detection.get("read_position"), int) \
                or isinstance(detection.get("read_position"), bool):
            raise TelemetryError(
                "detection must carry object/read_position"
            )


class ProvenanceWriter(JsonlWriter):
    """Append-only JSONL sink for :class:`ProvenanceRecord` streams."""

    def write_result(self, result) -> int:
        """Append every provenance record of a campaign result.

        ``result`` is a :class:`~repro.faults.campaign.CampaignResult`
        executed with ``collect_provenance=True``; its ``provenance``
        list is already merged into run-index order.
        """
        if not result.provenance:
            raise TelemetryError(
                f"{result.app_name}: no provenance records collected "
                "(campaign must run with collect_provenance=True)"
            )
        for record in result.provenance:
            self.write(record)
        return len(result.provenance)


def iter_provenance(path: str):
    """Yield validated record dicts from a provenance JSONL file."""
    return iter_validated_jsonl(path, validate_provenance)


def read_provenance(path: str) -> list[dict]:
    """Load and validate every record of a provenance JSONL file."""
    return list(iter_provenance(path))


class GoldenEvidence:
    """The fault-free evidence base shared by the batch classifier and
    the provenance derivation.

    Captured once per campaign (per process): the golden read/write
    timeline with writable-object snapshots, the scheme's clean
    counters, prefix read counts and first-read positions, plus the
    layout caches.  Both :class:`~repro.faults.batch.BatchEngine` and
    the scalar :meth:`~repro.faults.campaign.Campaign.run_one` derive
    their analytic verdicts and provenance records from this one
    object, which is what makes the streams byte-identical across
    execution strategies.
    """

    def __init__(self, campaign: "Campaign"):
        c = self.campaign = campaign
        #: Fault-block address -> owning object (shared layout).
        self._block_objects: dict[int, DataObject] = {}
        #: Byte address -> fault-free byte value in the base image.
        self._base_bytes: dict[int, int] = {}
        #: run_index -> overlay analysis cached by the classifier for
        #: the provenance derivation of the same run (popped on use;
        #: populated only when the campaign collects provenance, so
        #: telemetry-only campaigns never grow it).
        self._overlay_memo: dict[int, tuple] = {}
        memory = c._run_memory()
        self.base_memory = (
            c._base_memory if c._base_memory is not None else c._pristine
        )
        protected = [memory.object(n) for n in c.protected_names]
        scheme = make_scheme(c.scheme_name, memory, protected)
        self.protected = scheme.protected_names
        self.kind = scheme.scheme_name
        # Record every data consumption path via the golden timeline:
        # scheme reads (protected or not) AND direct
        # ``memory.read_object`` calls from kernel code ("raw" — they
        # bypass the scheme entirely, so divergence they observe can
        # neither be detected nor corrected), plus write events and
        # read-time content snapshots of writable objects for the
        # outcome-equivalence pruning.
        self.timeline, output = GoldenTimeline.capture(c.app, memory, scheme)
        reads = self.timeline.reads()
        self.reads = reads
        self.clean_counters = dict(vars(scheme.stats))
        self.zero_counters = {k: 0 for k in self.clean_counters}
        # Prefix read counts and first-read positions drive the
        # DETECTED stats reconstruction; per-object protected read
        # counts drive the CORRECTED vote tallies; first *unchecked*
        # (unprotected or raw) positions decide when divergent data
        # escapes the scheme.
        self.prot_prefix: list[int] = []
        self.unprot_prefix: list[int] = []
        self.first_prot_read: dict[str, int] = {}
        self.first_read: dict[str, int] = {}
        self.first_unchecked: dict[str, int] = {}
        self.prot_read_count: dict[str, int] = {}
        #: Per object, its positions in the golden read stream — the
        #: propagation story's coordinate system.
        self.read_positions: dict[str, list[int]] = {}
        n_prot = n_unprot = 0
        for i, (name, kind) in enumerate(reads):
            if kind == "prot":
                n_prot += 1
                self.first_prot_read.setdefault(name, i)
                self.prot_read_count[name] = \
                    self.prot_read_count.get(name, 0) + 1
            else:
                if kind == "unprot":
                    n_unprot += 1
                self.first_unchecked.setdefault(name, i)
            self.first_read.setdefault(name, i)
            self.read_positions.setdefault(name, []).append(i)
            self.prot_prefix.append(n_prot)
            self.unprot_prefix.append(n_unprot)
        self.liveness = self.timeline.liveness()
        self.hot_names = set(c.app.hot_object_names)
        # The analytic shortcuts are sound only if the fault-free
        # reference behaves exactly like the golden run; anything else
        # (a nondeterministic app, a scheme that corrects spuriously)
        # routes every lane through real execution instead.
        metric = None
        clean_ok = (
            isinstance(output, np.ndarray)
            and output.shape == c._golden.shape
            and output.dtype == c._golden.dtype
            and output.tobytes() == c._golden.tobytes()
            and scheme.stats.corrected_reads == 0
        )
        if clean_ok:
            metric = c.app.error_metric.compare(c._golden, output)
            clean_ok = not metric.is_sdc
        self.analytic = clean_ok
        self.clean_metric = metric

    # ------------------------------------------------------------------
    # Layout lookups (memoized, shared by classifier and provenance)
    # ------------------------------------------------------------------
    def object_for_block(self, block_addr: int) -> DataObject:
        """The data object owning ``block_addr`` (memoized lookup)."""
        obj = self._block_objects.get(block_addr)
        if obj is None:
            obj = self.campaign._pristine.object_at(block_addr)
            self._block_objects[block_addr] = obj
        return obj

    def base_byte(self, byte_addr: int) -> int:
        """Fault-free byte value at ``byte_addr`` (block-bulk cached)."""
        value = self._base_bytes.get(byte_addr)
        if value is None:
            # Fill the whole 128B block in one bulk read: faulted
            # bytes cluster within a block, so one fetch serves every
            # byte the overlay scan and the site records will touch.
            block = byte_addr - byte_addr % BLOCK_BYTES
            cache = self._base_bytes
            for i, raw in enumerate(
                    self.base_memory.read_block(block).tolist()):
                cache[block + i] = raw
            value = cache[byte_addr]
        return value

    def liveness_class(self, name: str) -> str:
        """The object's exposure class for provenance sites."""
        entry = self.liveness.get(name)
        if entry is not None:
            return entry.window
        if name in self.timeline.ever_read:
            return "internal"
        return "dead"

    # ------------------------------------------------------------------
    # Divergence analysis (moved here from BatchEngine)
    # ------------------------------------------------------------------
    def _overlay_analysis(
        self, faults: list[FaultSpec]
    ) -> tuple[dict[str, DataObject], set[str],
               dict[str, list[int]], dict[str, dict]]:
        """One pass over the merged overlays of ``faults``.

        Returns ``(sited, inbounds, ro_divergent, writable_masks)``:
        every faulted object (padding-only hits included), the subset
        with in-bounds bytes, per read-only object the sorted offsets
        whose faulted read differs from the clean byte, and per
        writable object its in-bounds byte masks.  Both the analytic
        classifier and the provenance derivation consume this shape,
        so it is computed once per run (see ``_overlay_memo``).
        """
        masks = merge_fault_masks(faults)
        sited: dict[str, DataObject] = {}
        inbounds: set[str] = set()
        ro_divergent: dict[str, list[int]] = {}
        writable_masks: dict[str, dict[int, tuple[int, int]]] = {}
        for byte_addr in sorted(masks):
            or_mask, and_mask = masks[byte_addr]
            # Word faults never straddle the 128B block, so the byte's
            # block is its fault's block — the memoized lookup applies.
            obj = self.object_for_block(
                byte_addr - byte_addr % BLOCK_BYTES
            )
            sited.setdefault(obj.name, obj)
            offset = byte_addr - obj.base_addr
            if offset >= obj.nbytes:
                continue  # block padding: invisible to every read
            inbounds.add(obj.name)
            if not obj.read_only:
                writable_masks.setdefault(obj.name, {})[offset] = \
                    (or_mask, and_mask)
                continue
            raw = self.base_byte(byte_addr)
            if overlay_read_value(raw, or_mask, and_mask) != raw:
                ro_divergent.setdefault(obj.name, []).append(offset)
        return sited, inbounds, ro_divergent, writable_masks

    def analyze(
        self, faults: list[FaultSpec], run_index: int | None = None
    ) -> tuple[dict[str, list[int]], bool, list[str]]:
        """Visible divergence of the merged overlays of ``faults``.

        Returns ``(divergent, must_exec, prunes)``: per read-only
        object, the sorted offsets whose faulted read differs from the
        clean byte; whether some writable-object overlay disagrees
        with the golden timeline's read-time snapshots (so the lane
        must execute for real); and the equivalence-class prune tags
        earned by writable faults proven invisible (``dead`` — the
        object is never read at all; ``agrees`` — the stuck bits match
        the object's content at every consumption point, overwritten
        windows included).

        With ``run_index`` given and provenance collection active, the
        overlay pass is cached for :meth:`provenance` of the same run.
        """
        analysis = self._overlay_analysis(faults)
        if run_index is not None and self.campaign.collect_provenance:
            self._overlay_memo[run_index] = analysis
        _sited, _inbounds, divergent, writable = analysis
        must_exec = False
        prunes: list[str] = []
        for name, byte_masks in writable.items():
            tag = self.writable_verdict(name, byte_masks)
            if tag is None:
                must_exec = True
            else:
                prunes.append(tag)
        return divergent, must_exec, prunes

    def writable_verdict(
        self, name: str, byte_masks: dict[int, tuple[int, int]]
    ) -> str | None:
        """Prune tag for a writable object's faults, ``None`` to run.

        ``dead``: the object is on no read path at all (scheme-internal
        reads included), so its content can never influence execution.
        ``agrees``: the stuck bits are a no-op against the object's
        raw content at every golden-run read — by the clean-prefix
        induction (writes store raw values, overlays re-apply on read)
        the faulted execution is then bitwise identical to the clean
        one.  Any snapshot mismatch — or a read path the timeline
        could not snapshot — means only real execution can tell.
        """
        timeline = self.timeline
        if name not in timeline.ever_read:
            return "dead"
        snapshots = timeline.read_values.get(name)
        if not snapshots:
            return None  # read somewhere we could not snapshot
        for offset, (or_mask, and_mask) in byte_masks.items():
            for snap in snapshots:
                raw = snap[offset]
                if overlay_read_value(raw, or_mask, and_mask) != raw:
                    return None
        return "agrees"

    def classify_analytic(self, run_index: int, faults: list[FaultSpec]):
        """Classify without executing; ``None`` if the lane must run.

        Returns ``(RunResult, counters_dict, prune_tags)`` for lanes
        whose outcome is fully determined by the clean read trace and
        the golden timeline.
        """
        divergent, must_exec, prunes = self.analyze(faults, run_index)
        if must_exec:
            # A writable-object fault that disagrees with some read-
            # time snapshot bites data written *during* the run; only
            # real execution can tell its visibility.
            return None
        visible: dict[str, list[int]] = {}
        for name, offsets in divergent.items():
            if name in self.first_read:
                visible[name] = offsets
            elif name in self.timeline.ever_read:
                # Consumed only by scheme-internal reads — a path the
                # positional trace cannot reason about, so execute.
                return None
            else:
                # Provably on no read path at all: the divergence is
                # invisible, the lane is bitwise clean.
                prunes.append("unread")
        divergent = visible
        prot_read = {
            name: offsets for name, offsets in divergent.items()
            if name in self.protected and name in self.first_prot_read
        }
        # Positions where some divergent object's data first escapes
        # the scheme (read unprotected, or read raw past the scheme).
        unchecked = [
            self.first_unchecked[name] for name in divergent
            if name in self.first_unchecked
        ]
        if self.kind == "detection" and prot_read:
            i_star, det_name = min(
                (self.first_prot_read[name], name) for name in prot_read
            )
            if any(pos < i_star for pos in unchecked):
                return None
            exc = FaultDetected(
                det_name, prot_read[det_name][0] // BLOCK_BYTES
            )
            counters = dict(self.zero_counters)
            counters["protected_reads"] = self.prot_prefix[i_star]
            counters["comparisons"] = self.prot_prefix[i_star]
            counters["unprotected_reads"] = self.unprot_prefix[i_star]
            return (
                RunResult(run_index, Outcome.DETECTED, 0.0, str(exc)),
                counters,
                prunes,
            )
        if unchecked:
            return None
        if prot_read:
            if self.kind != "correction":
                return None
            corrected_reads = sum(
                self.prot_read_count[name] for name in prot_read
            )
            corrected_bytes = sum(
                self.prot_read_count[name] * len(offsets)
                for name, offsets in prot_read.items()
            )
            counters = dict(self.clean_counters)
            counters["corrected_bytes"] = corrected_bytes
            counters["corrected_reads"] = corrected_reads
            return (
                RunResult(
                    run_index, Outcome.CORRECTED,
                    self.clean_metric.error,
                    f"{corrected_bytes} byte(s) voted out",
                ),
                counters,
                prunes,
            )
        return (
            RunResult(run_index, Outcome.MASKED, self.clean_metric.error),
            dict(self.clean_counters),
            prunes,
        )

    # ------------------------------------------------------------------
    # Provenance derivation
    # ------------------------------------------------------------------
    def provenance(
        self,
        run_index: int,
        seed: int,
        faults: list[FaultSpec],
        result: RunResult,
        evidence: str | None = None,
        secded_verdicts: list | None = None,
    ) -> ProvenanceRecord:
        """Derive the run's :class:`ProvenanceRecord`.

        ``evidence`` may be passed by the batch engine (which already
        knows which lanes it decided analytically); when ``None`` it
        is recomputed from the same classifier, so scalar and batched
        campaigns label lanes identically.  ``secded_verdicts`` are the
        per-fault :class:`~repro.faults.secded_filter.EccVerdict` s of
        a SECDED campaign's filtering pass.
        """
        c = self.campaign
        if c.config.secded:
            return self._provenance_secded(
                run_index, seed, faults, result, secded_verdicts
            )
        if evidence is None:
            evidence = "executed"
            if self.analytic \
                    and self.classify_analytic(run_index, faults) is not None:
                evidence = "analytic"
        # The classifier caches its overlay pass per run (both in the
        # batch engine and in the recompute just above); reuse it so
        # provenance does not rescan the merged masks.
        analysis = self._overlay_memo.pop(run_index, None)
        if analysis is None:
            analysis = self._overlay_analysis(faults)
        sited, inbounds, ro_divergent, writable_masks = analysis
        first, total, consumers = self._propagation(
            ro_divergent, writable_masks
        )
        cause = self._cause(
            result.outcome, sited, inbounds, ro_divergent, writable_masks
        )
        detection = self._detection(result.outcome, ro_divergent)
        return ProvenanceRecord(
            run_index=run_index,
            seed=seed,
            app=c.app.name,
            scheme=c.scheme_name,
            selection=c.selection.name,
            n_blocks=c.config.n_blocks,
            n_bits=c.config.n_bits,
            outcome=result.outcome.value,
            evidence=evidence,
            cause=cause,
            sites=self._sites(faults),
            first_corrupted_read=first,
            corrupted_reads=total,
            consumers=tuple(sorted(consumers.items())),
            detection=detection,
        )

    def _sites(self, faults: list[FaultSpec]) -> tuple[ProvenanceSite, ...]:
        """One site per fault cluster, with injection-time visibility.

        Per-site visibility is evaluated against the fault's *own*
        masks (not the cross-fault merge), so a site's record is
        independent of what other clusters hit the same run.
        """
        sites = []
        for fault in faults:
            obj = self.object_for_block(fault.block_addr)
            # Visibility is a plain disjunction over the fault's own
            # bytes, so iteration order cannot affect the record.
            visible = False
            for byte_addr, (or_mask, and_mask) in \
                    fault.byte_masks().items():
                offset = byte_addr - obj.base_addr
                if offset >= obj.nbytes:
                    continue
                raw = self.base_byte(byte_addr)
                if overlay_read_value(raw, or_mask, and_mask) != raw:
                    visible = True
                    break
            sites.append(ProvenanceSite(
                object=obj.name,
                region="hot" if obj.name in self.hot_names else "rest",
                liveness=self.liveness_class(obj.name),
                block_addr=fault.block_addr,
                word_index=fault.word_index,
                byte_offset=fault.word_addr - obj.base_addr,
                bit_positions=tuple(fault.bit_positions),
                stuck_values=tuple(fault.stuck_values),
                visible=visible,
            ))
        return tuple(sites)

    def _propagation(
        self,
        ro_divergent: dict[str, list[int]],
        writable_masks: dict[str, dict[int, tuple[int, int]]],
    ) -> tuple[int | None, int, dict[str, int]]:
        """Exposure over the golden read stream: which positional
        reads consume corrupted bytes, per consuming object."""
        consumers: dict[str, int] = {}
        first: int | None = None
        total = 0
        for name in sorted(set(ro_divergent) | set(writable_masks)):
            positions = self.read_positions.get(name, [])
            if not positions:
                continue
            if name in ro_divergent:
                # Read-only divergence persists: every read consumes it.
                corrupted = positions
            else:
                snapshots = self.timeline.read_values.get(name) or []
                byte_masks = writable_masks[name]
                corrupted = []
                if len(snapshots) == len(positions):
                    for pos, snap in zip(positions, snapshots):
                        for offset, (or_mask, and_mask) in \
                                byte_masks.items():
                            raw = snap[offset]
                            if overlay_read_value(
                                    raw, or_mask, and_mask) != raw:
                                corrupted.append(pos)
                                break
            if corrupted:
                consumers[name] = len(corrupted)
                total += len(corrupted)
                if first is None or corrupted[0] < first:
                    first = corrupted[0]
        return first, total, consumers

    def _cause(
        self,
        outcome: Outcome,
        sited: dict[str, DataObject],
        inbounds: set[str],
        ro_divergent: dict[str, list[int]],
        writable_masks: dict[str, dict[int, tuple[int, int]]],
    ) -> str:
        if outcome is Outcome.SDC:
            return "output-corrupted"
        if outcome is Outcome.CRASH:
            return "crash"
        if outcome is Outcome.DETECTED:
            return "replica-detected"
        if outcome is Outcome.CORRECTED:
            return "replica-voted"
        # MASKED: per sited object, how the fault was absorbed.
        tags = []
        for name, obj in sited.items():
            if name not in inbounds:
                tags.append("dead-word")  # block padding only
            elif obj.read_only:
                if name not in ro_divergent:
                    tags.append("value-agrees")
                elif name not in self.timeline.ever_read:
                    tags.append("dead-word")
                else:
                    # Divergence was consumed (positionally or by
                    # scheme internals) yet the output held.
                    tags.append("tolerated")
            else:
                verdict = self.writable_verdict(
                    name, writable_masks[name]
                )
                if verdict == "dead":
                    tags.append("dead-word")
                elif verdict == "agrees":
                    base_agrees = all(
                        overlay_read_value(
                            self.base_byte(obj.base_addr + offset),
                            or_mask, and_mask,
                        ) == self.base_byte(obj.base_addr + offset)
                        for offset, (or_mask, and_mask)
                        in writable_masks[name].items()
                    )
                    tags.append(
                        "value-agrees" if base_agrees
                        else "overwritten-before-read"
                    )
                else:
                    tags.append("tolerated")
        for tag in ("tolerated", "overwritten-before-read",
                    "dead-word", "value-agrees"):
            if tag in tags:
                return tag
        return "dead-word"

    def _detection(
        self, outcome: Outcome, ro_divergent: dict[str, list[int]]
    ) -> tuple[str, int] | None:
        """Where the detection scheme fires, when the golden evidence
        can tell (read-only divergence under the detection scheme with
        no earlier unchecked escape); ``None`` otherwise."""
        if outcome is not Outcome.DETECTED or self.kind != "detection":
            return None
        prot_names = [
            name for name in ro_divergent
            if name in self.protected and name in self.first_prot_read
        ]
        if not prot_names:
            return None
        unchecked = [
            self.first_unchecked[name] for name in ro_divergent
            if name in self.first_unchecked
        ]
        i_star, det_name = min(
            (self.first_prot_read[name], name) for name in prot_names
        )
        if any(pos < i_star for pos in unchecked):
            return None
        return det_name, i_star

    def _provenance_secded(
        self,
        run_index: int,
        seed: int,
        faults: list[FaultSpec],
        result: RunResult,
        verdicts: list | None,
    ) -> ProvenanceRecord:
        """SECDED campaigns: causes come from the ECC verdicts; the
        propagation story is nulled (what the application observes is
        the post-decode delivery, not the injected overlay, so the
        golden-stream exposure measure does not apply)."""
        from repro.faults.secded_filter import (
            EccVerdict,
            apply_filtered_faults,
        )

        c = self.campaign
        if verdicts is None:
            # Recompute exactly as the run did: sequential filtering
            # against a fresh per-run memory (earlier delivered
            # overlays are visible to later decodes).
            verdicts, _due = apply_filtered_faults(c._run_memory(), faults)
        delivered = (EccVerdict.MISCORRECTED, EccVerdict.ESCAPED)
        sites = []
        for fault, verdict in zip(faults, verdicts):
            obj = self.object_for_block(fault.block_addr)
            sites.append(ProvenanceSite(
                object=obj.name,
                region="hot" if obj.name in self.hot_names else "rest",
                liveness=self.liveness_class(obj.name),
                block_addr=fault.block_addr,
                word_index=fault.word_index,
                byte_offset=fault.word_addr - obj.base_addr,
                bit_positions=tuple(fault.bit_positions),
                stuck_values=tuple(fault.stuck_values),
                visible=verdict in delivered,
            ))
        outcome = result.outcome
        if outcome is Outcome.SDC:
            cause = "output-corrupted"
        elif outcome is Outcome.CRASH:
            cause = "crash"
        elif outcome is Outcome.DETECTED:
            cause = (
                "secded-due"
                if any(v is EccVerdict.DUE for v in verdicts)
                else "replica-detected"
            )
        elif outcome is Outcome.CORRECTED:
            cause = "replica-voted"
        elif any(v in delivered for v in verdicts):
            cause = "tolerated"
        elif any(v is EccVerdict.CORRECTED for v in verdicts):
            cause = "secded-corrected"
        else:
            cause = "value-agrees"
        return ProvenanceRecord(
            run_index=run_index,
            seed=seed,
            app=c.app.name,
            scheme=c.scheme_name,
            selection=c.selection.name,
            n_blocks=c.config.n_blocks,
            n_bits=c.config.n_bits,
            outcome=outcome.value,
            evidence="executed",
            cause=cause,
            sites=tuple(sites),
            first_corrupted_read=None,
            corrupted_reads=0,
            consumers=(),
            detection=None,
        )


@dataclass
class VulnerabilityProfile:
    """DVF-style vulnerability digest of one object under one scheme.

    A run is attributed to every object its fault clusters sit in
    (multi-site runs count once per distinct sited object), so the
    profile answers "what happened to runs that hit this object".
    ``reads_at_risk`` sums the object's corrupted-read exposure over
    the golden read stream.
    """

    app: str
    scheme: str
    object: str
    region: str
    liveness: str
    runs: int = 0
    outcome_counts: dict[str, int] = field(
        default_factory=lambda: {o.value: 0 for o in Outcome}
    )
    cause_counts: dict[str, int] = field(default_factory=dict)
    reads_at_risk: int = 0

    @property
    def sdc_count(self) -> int:
        return self.outcome_counts[Outcome.SDC.value]

    @property
    def sdc_rate(self) -> float:
        return self.sdc_count / self.runs if self.runs else 0.0

    @property
    def due_count(self) -> int:
        """Loud terminations attributed to this object."""
        return (self.outcome_counts[Outcome.DETECTED.value]
                + self.outcome_counts[Outcome.CRASH.value])

    def sdc_interval(self, level: float = 0.95) -> ConfidenceInterval:
        """Wilson CI on the object's SDC attribution rate."""
        if self.runs == 0:
            return zero_run_interval(level)
        return confidence_interval(self.sdc_count, self.runs, level)

    def to_dict(self) -> dict:
        """Canonical-JSON-ready image of the profile."""
        return {
            "app": self.app,
            "scheme": self.scheme,
            "object": self.object,
            "region": self.region,
            "liveness": self.liveness,
            "runs": self.runs,
            "outcomes": dict(self.outcome_counts),
            "causes": dict(sorted(self.cause_counts.items())),
            "reads_at_risk": self.reads_at_risk,
            "sdc_rate": self.sdc_rate,
            "sdc_interval": self.sdc_interval().to_dict(),
        }


def vulnerability_profiles(
    records: Iterable[dict],
) -> list[VulnerabilityProfile]:
    """Aggregate provenance records into per-object profiles.

    ``records`` are wire-form dicts (:func:`read_provenance` output or
    :meth:`ProvenanceRecord.to_dict` images).  Profiles are keyed by
    ``(app, scheme, object)`` and returned in that sort order, so the
    table is deterministic for a given record stream.
    """
    profiles: dict[tuple[str, str, str], VulnerabilityProfile] = {}
    for rec in records:
        if hasattr(rec, "to_dict"):
            rec = rec.to_dict()
        seen: set[str] = set()
        for site in rec["sites"]:
            name = site["object"]
            if name in seen:
                continue
            seen.add(name)
            key = (rec["app"], rec["scheme"], name)
            profile = profiles.get(key)
            if profile is None:
                profile = VulnerabilityProfile(
                    app=rec["app"], scheme=rec["scheme"], object=name,
                    region=site["region"], liveness=site["liveness"],
                )
                profiles[key] = profile
            profile.runs += 1
            profile.outcome_counts[rec["outcome"]] += 1
            profile.cause_counts[rec["cause"]] = \
                profile.cause_counts.get(rec["cause"], 0) + 1
            profile.reads_at_risk += rec["consumers"].get(name, 0)
    return [profiles[key] for key in sorted(profiles)]


def top_sdc_objects(
    profiles: Iterable[VulnerabilityProfile], n: int | None = None
) -> list[VulnerabilityProfile]:
    """Profiles ranked by SDC attribution (count, then rate), the
    ranking the paper's protect-the-hot-objects argument rests on."""
    ranked = sorted(
        profiles,
        key=lambda p: (-p.sdc_count, -p.sdc_rate, p.app, p.scheme,
                       p.object),
    )
    return ranked if n is None else ranked[:n]
