"""Search-trail JSONL: the design-space explorer's decision log.

``repro optimize`` narrates its search as one canonical-JSON line per
round: what the strategy proposed, which proposals were new versus
already cached, the objective values of every new evaluation, and the
Pareto front after the round.  A header line pins the search identity
(application, design space, strategy, seeds).

Because every quantity in the trail is a deterministic function of
the search spec — campaign results derive from ``(seed, run_index)``,
strategies from the search seed, and timing/footprint objectives from
the configuration alone — the file is **byte-identical at any
``--jobs``/``--batch`` setting and across interrupt/resume**, the
same guarantee the telemetry and provenance streams give.  That makes
the trail diffable evidence in the A/B determinism suite.
"""

from __future__ import annotations

from repro.errors import TelemetryError
from repro.utils.canonical import canonical_json

#: Trail format version stamped into the header line.
TRAIL_VERSION = 1


class SearchTrailWriter:
    """Stream search rounds to a JSONL file (context manager).

    Lines are canonical JSON with ``\\n`` newlines regardless of
    platform, flushed per round so an interrupted search leaves a
    valid prefix of the replayed trail.
    """

    def __init__(self, path: str):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8", newline="\n")
        self.n_written = 0

    def __enter__(self) -> "SearchTrailWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def close(self) -> None:
        """Close the underlying file (idempotent)."""
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def _write(self, doc: dict) -> None:
        self._fh.write(canonical_json(doc) + "\n")
        self._fh.flush()
        self.n_written += 1

    def write_header(self, doc: dict) -> None:
        """Write the search-identity header line."""
        self._write({"type": "search", "version": TRAIL_VERSION, **doc})

    def write_round(self, doc: dict) -> None:
        """Write one round's decision line."""
        self._write({"type": "round", **doc})


#: Keys every round line must carry.
_ROUND_KEYS = frozenset(
    ("type", "round", "proposed", "new", "cached", "evaluations",
     "front")
)


def validate_trail_line(doc: dict) -> dict:
    """Validate one parsed trail line; raises
    :class:`~repro.errors.TelemetryError` on schema violations."""
    if not isinstance(doc, dict) or "type" not in doc:
        raise TelemetryError(f"not a trail line: {doc!r}")
    if doc["type"] == "search":
        for key in ("version", "app", "space", "strategy"):
            if key not in doc:
                raise TelemetryError(
                    f"trail header missing key {key!r}")
        if doc["version"] != TRAIL_VERSION:
            raise TelemetryError(
                f"trail version {doc['version']!r} unsupported "
                f"(expected {TRAIL_VERSION})"
            )
        return doc
    if doc["type"] == "round":
        missing = _ROUND_KEYS - set(doc)
        if missing:
            raise TelemetryError(
                f"trail round missing key(s) {sorted(missing)}")
        return doc
    raise TelemetryError(f"unknown trail line type {doc['type']!r}")


def read_search_trail(path: str) -> list[dict]:
    """Read and validate a search trail; returns its parsed lines.

    The first line must be the header; every later line a round.
    Defects raise :class:`~repro.errors.TelemetryError` naming the
    line number.
    """
    import json

    lines: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                doc = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: not JSON ({exc})"
                ) from None
            try:
                validate_trail_line(doc)
            except TelemetryError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: {exc}"
                ) from None
            expected = "search" if not lines else "round"
            if doc["type"] != expected:
                raise TelemetryError(
                    f"{path}:{lineno}: expected a {expected} line, "
                    f"got {doc['type']!r}"
                )
            lines.append(doc)
    if not lines:
        raise TelemetryError(f"{path}: empty search trail")
    return lines
