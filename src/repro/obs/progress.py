"""Live campaign progress: chunk-granularity events and a TTY line.

A :class:`ProgressEvent` is emitted by the execution drivers — the
parallel executor, the adaptive wave loop, and sweep sessions — once
per completed chunk: runs done so far, effective runs per second, the
ETA those two imply, and (for adaptive campaigns) the Wilson CI margin
over the committed prefix.  Progress is *observational*: events carry
wall-clock data, are explicitly outside every byte-identity guarantee,
and are **off by default** — a campaign without a progress sink takes
exactly the pre-progress code path (the disabled-path timing guard in
``benchmarks/bench_store_ingest.py`` pins this).

Sinks are plain callables taking one event.  :class:`TtyProgress`
renders a single rewriting status line on stderr (``repro campaign
--progress``); sweep sessions additionally mirror each event into the
session JSONL log as a ``progress`` event (see
:mod:`repro.obs.session`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import IO

#: Bumped whenever the event shape changes incompatibly.
PROGRESS_EVENT_VERSION = 1

#: The closed vocabulary of progress phases.
PROGRESS_PHASES = (
    "campaign",  # exhaustive campaign, fixed budget
    "adaptive",  # CI-driven campaign (margin carries the stop rule)
    "sweep",     # sweep session (cell labels the current grid cell)
)


@dataclass(frozen=True)
class ProgressEvent:
    """One chunk-boundary progress observation.

    ``done``/``total`` count runs (chunk-granular, monotonic within a
    phase); ``elapsed_s`` is wall time since the driver started;
    ``margin`` is the Wilson CI margin over the committed prefix where
    a stopping rule is active, else ``None``; ``cell`` labels the
    sweep cell an event belongs to (empty for single campaigns).
    """

    phase: str
    done: int
    total: int
    elapsed_s: float
    cell: str = ""
    margin: float | None = None

    @property
    def fraction(self) -> float:
        """Completed fraction of the budget in [0, 1]."""
        return self.done / self.total if self.total else 0.0

    @property
    def runs_per_sec(self) -> float:
        """Effective throughput so far (0.0 until the clock ticks)."""
        return self.done / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def eta_s(self) -> float | None:
        """Seconds to finish at the current rate; None when unknown."""
        rate = self.runs_per_sec
        if rate <= 0 or self.done >= self.total:
            return None
        return (self.total - self.done) / rate

    def to_dict(self) -> dict:
        """JSON-ready image (schema-versioned, wall-clock included)."""
        return {
            "version": PROGRESS_EVENT_VERSION,
            "phase": self.phase,
            "done": self.done,
            "total": self.total,
            "elapsed_s": round(self.elapsed_s, 3),
            "runs_per_sec": round(self.runs_per_sec, 1),
            "eta_s": (None if self.eta_s is None
                      else round(self.eta_s, 1)),
            "margin": self.margin,
            "cell": self.cell,
        }

    def to_detail(self) -> str:
        """Compact ``key=value`` form for session-event mirroring."""
        parts = [
            f"done={self.done}/{self.total}",
            f"rps={self.runs_per_sec:.1f}",
        ]
        if self.eta_s is not None:
            parts.append(f"eta={self.eta_s:.1f}s")
        if self.margin is not None:
            parts.append(f"margin={self.margin:.4f}")
        return " ".join(parts)

    def render(self) -> str:
        """One human-readable status line."""
        head = self.phase if not self.cell else f"{self.phase} {self.cell}"
        line = (f"{head}: {self.done}/{self.total} runs "
                f"({100.0 * self.fraction:.1f}%)")
        if self.runs_per_sec > 0:
            line += f", {self.runs_per_sec:.1f} runs/s"
        if self.eta_s is not None:
            line += f", eta {self.eta_s:.1f}s"
        if self.margin is not None:
            line += f", CI margin {self.margin:.4f}"
        return line


class TtyProgress:
    """Progress sink rendering one rewriting status line.

    On a TTY the line rewrites in place (``\\r`` + pad-out); on a pipe
    each event becomes its own line so logs stay readable.  Call
    :meth:`close` (or use as a context manager) to terminate the line.
    """

    def __init__(self, stream: IO[str] | None = None):
        self.stream = stream if stream is not None else sys.stderr
        self.n_events = 0
        self._last_len = 0

    @property
    def _tty(self) -> bool:
        isatty = getattr(self.stream, "isatty", None)
        return bool(isatty()) if isatty is not None else False

    def __call__(self, event: ProgressEvent) -> None:
        line = event.render()
        try:
            if self._tty:
                pad = " " * max(0, self._last_len - len(line))
                self.stream.write("\r" + line + pad)
            else:
                self.stream.write(line + "\n")
            self.stream.flush()
        except BrokenPipeError:
            return
        self._last_len = len(line)
        self.n_events += 1

    def close(self) -> None:
        """Finish the in-place line with a newline (idempotent)."""
        if self._tty and self.n_events and self._last_len:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except BrokenPipeError:
                pass
        self._last_len = 0

    def __enter__(self) -> "TtyProgress":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
