"""Cycle-level event tracing for the timing simulator.

A :class:`TraceSession` records typed events and spans emitted by the
instrumented simulator — warp issue and stall spans per SM, the
L1 access→miss→MSHR→fill lifecycle, L2 service spans, DRAM bank-busy
and bus-transfer spans per channel, interconnect link occupancy — into
a bounded ring buffer, each tagged with the *data object* whose
traffic caused it.  Attribution uses two complementary mechanisms:

* the **request context** — the LD/ST unit stamps the session with the
  owning object's name before descending into the shared memory
  hierarchy, so every event the nested calls emit inherits an exact
  label (replica transactions included);
* the **address-space map** (:class:`ObjectMap`) — a sorted-interval
  resolver built from the application's :class:`DeviceMemory`
  allocations, used when no context is active (e.g. stores).

Alongside discrete events, an interval sampler captures per-N-cycle
time series (IPC, MSHR occupancy, DRAM row-hit rate, per-object read
bandwidth); the series both exports as Perfetto counter tracks (see
:mod:`repro.obs.perfetto`) and folds into a
:class:`~repro.obs.metrics.MetricsRegistry`.

Instrumentation is *attach-time*: components are wrapped only when a
session is installed (see ``_attach_tracer`` hooks in the ``sim`` and
``arch`` modules), so a simulation without a tracer runs byte-for-byte
the uninstrumented code — no hook branches, no allocations.

Everything recorded is deterministic for a given (trace, config,
sampling seed): timestamps are simulated cycles, sampling uses a
dedicated seeded RNG, and no wall-clock value ever enters an event —
which makes byte-comparison of exported traces a valid reproducibility
check.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Any, Iterable, NamedTuple

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover
    from repro.arch.address_space import DataObject, DeviceMemory
    from repro.obs.metrics import MetricsRegistry

#: Event categories a session can record (``TraceConfig.categories``
#: filters against these).
TRACE_CATEGORIES = (
    "kernel",   # per-kernel timeline spans
    "warp",     # warp issue instants and stall spans
    "cache",    # L1 lifecycle: misses, fills, merges, evictions
    "l2",       # L2 slice service spans
    "dram",     # bank-busy and bus-transfer spans
    "noc",      # interconnect link occupancy
    "mshr",     # MSHR occupancy counters and structural stalls
)

#: Attribution label for traffic that resolves to no known data object
#: (e.g. replica regions when no request context is active).
UNATTRIBUTED = "(unattributed)"

# ----------------------------------------------------------------------
# Track numbering (Perfetto pid/tid space).  Processes group tracks:
# one per SM, one per L2 slice / DRAM channel / NoC partition, plus a
# timeline and a counter process.
PID_TIMELINE = 1
PID_COUNTERS = 2
#: Campaign-lifecycle process: campaign/chunk spans, per-run outcome
#: instants and adaptive stop decisions (see
#: :func:`repro.obs.perfetto.campaign_lifecycle_events`).  Its clock
#: is the run index, not simulated cycles.
PID_CAMPAIGN = 3
PID_SM_BASE = 100
PID_L2_BASE = 300
PID_DRAM_BASE = 400
PID_NOC_BASE = 500

TID_MAIN = 0
#: Campaign-lifecycle thread tracks under :data:`PID_CAMPAIGN`.
TID_CAMPAIGN_SPANS = 0
TID_CAMPAIGN_RUNS = 1
TID_CAMPAIGN_DECISIONS = 2
#: Thread track of an SM's LD/ST unit (L1/MSHR lifecycle events).
TID_LDST = 9000
#: Thread track of a DRAM channel's shared data bus.
TID_DRAM_BUS = 9001


class TraceEvent(NamedTuple):
    """One recorded event, directly mappable to a ``trace_events`` entry.

    ``ph`` follows the Chrome trace-event phase codes this subsystem
    emits: ``"X"`` (complete span, ``dur`` cycles), ``"i"`` (instant)
    or ``"C"`` (counter sample; values live in ``args``).
    """

    ts: int
    dur: int
    ph: str
    cat: str
    name: str
    pid: int
    tid: int
    obj: str | None
    args: dict[str, Any] | None


@dataclass(frozen=True)
class TraceConfig:
    """Knobs of one :class:`TraceSession`.

    ``max_events`` bounds the ring buffer (oldest events are evicted
    first and counted in ``TraceSession.dropped``).  ``sample_rate``
    thins the high-frequency event classes (cache lifecycle, DRAM and
    NoC spans, issue instants) with a dedicated RNG seeded by
    ``seed`` — structural events (kernel spans, stalls) are always
    kept.  ``interval_cycles`` is the time-series sampling period.
    """

    max_events: int = 65536
    interval_cycles: int = 1024
    sample_rate: float = 1.0
    seed: int = 20210621
    categories: frozenset[str] | None = None

    def __post_init__(self) -> None:
        if self.max_events <= 0:
            raise ConfigError("max_events must be positive")
        if self.interval_cycles <= 0:
            raise ConfigError("interval_cycles must be positive")
        if not 0.0 <= self.sample_rate <= 1.0:
            raise ConfigError("sample_rate must be in [0, 1]")
        if self.categories is not None:
            unknown = set(self.categories) - set(TRACE_CATEGORIES)
            if unknown:
                raise ConfigError(
                    f"unknown trace categories {sorted(unknown)}; "
                    f"known: {TRACE_CATEGORIES}"
                )


@dataclass(frozen=True)
class ObjectLiveness:
    """Read/write liveness of one data object over the golden run.

    Positions are indices into the :class:`GoldenTimeline` event
    stream, so "written after its last read" style questions are
    simple integer comparisons.
    """

    name: str
    reads: int
    writes: int
    first_read: int | None
    last_read: int | None
    first_write: int | None
    last_write: int | None

    @property
    def never_read(self) -> bool:
        return self.reads == 0

    @property
    def window(self) -> str:
        """Coarse liveness class: ``dead`` (never read), ``input``
        (read but never written during execution) or ``working``
        (both read and written)."""
        if self.reads == 0:
            return "dead"
        if self.writes == 0:
            return "input"
        return "working"


class GoldenTimeline:
    """The golden run's complete read/write timeline, with read-time
    content snapshots of every writable object.

    Captured once per campaign from the fault-free reference
    execution, this is the evidence base for outcome-equivalence
    pruning (:mod:`repro.faults.batch`): a stuck-at fault is provably
    MASKED without simulating when its bits agree with the object's
    content at *every* moment the object is consumed — which covers
    sites that are dead (never read at all) and sites overwritten
    before their next read with bits the fault agrees with.  The
    soundness induction lives in docs/MODELING.md: writes store raw
    values and overlays re-apply on read, so agreement at every
    clean-run read point implies the faulted execution is bitwise
    identical to the clean one.

    * :attr:`events` — ``(name, kind)`` per consumption/production
      point, ``kind`` in ``{"prot", "unprot", "raw", "write"}`` —
      scheme-checked reads of protected objects, scheme reads of
      unprotected objects, direct ``read_object`` consumption that
      bypasses the scheme, and ``write_object`` stores.
    * :attr:`read_values` — for each *writable* object, its raw byte
      content at every read (any path, scheme internals included).
    * :attr:`ever_read` — every object name seen on any read path,
      scheme-internal ``read_object`` calls included; absence here is
      proof the object's content can never influence execution.
    """

    def __init__(self) -> None:
        self.events: list[tuple[str, str]] = []
        self.read_values: dict[str, list[bytes]] = {}
        self.ever_read: set[str] = set()

    def reads(self) -> list[tuple[str, str]]:
        """The read-only view of the event stream (no writes), in the
        ``(name, kind)`` shape the batch classifier consumes."""
        return [(n, k) for n, k in self.events if k != "write"]

    def liveness(self) -> dict[str, "ObjectLiveness"]:
        """Per-object liveness digests over the whole timeline."""
        agg: dict[str, dict[str, Any]] = {}
        for pos, (name, kind) in enumerate(self.events):
            entry = agg.setdefault(name, {
                "reads": 0, "writes": 0,
                "first_read": None, "last_read": None,
                "first_write": None, "last_write": None,
            })
            slot = "write" if kind == "write" else "read"
            entry[f"{slot}s"] += 1
            if entry[f"first_{slot}"] is None:
                entry[f"first_{slot}"] = pos
            entry[f"last_{slot}"] = pos
        return {
            name: ObjectLiveness(name=name, **entry)
            for name, entry in sorted(agg.items())
        }

    @classmethod
    def capture(cls, app, memory: "DeviceMemory", scheme):
        """Execute ``app`` fault-free on ``memory`` under ``scheme``,
        recording the full timeline; returns ``(timeline, output)``.

        Hooks the three consumption/production surfaces (the kernel
        contract allows no others): ``scheme.read`` for checked input
        reads, ``memory.read_object`` for direct reads (scheme
        internals flagged so they don't double-count as "raw"), and
        ``memory.write_object`` for stores.  Writable-object content
        is snapshotted at every read so fault agreement can later be
        checked against the exact bytes that were live at each
        consumption point.
        """
        import numpy as np

        timeline = cls()
        events = timeline.events
        inner_read = scheme.read
        inner_read_object = memory.read_object
        inner_write_object = memory.write_object
        in_scheme = [False]

        def snapshot(obj) -> None:
            if not obj.read_only:
                timeline.read_values.setdefault(obj.name, []).append(
                    inner_read_object(obj).tobytes()
                )

        def recording_read(obj):
            kind = "prot" if obj.name in scheme.protected_names \
                else "unprot"
            events.append((obj.name, kind))
            timeline.ever_read.add(obj.name)
            snapshot(obj)
            in_scheme[0] = True
            try:
                return inner_read(obj)
            finally:
                in_scheme[0] = False

        def recording_read_object(obj):
            timeline.ever_read.add(obj.name)
            if not in_scheme[0]:
                events.append((obj.name, "raw"))
                snapshot(obj)
            return inner_read_object(obj)

        def recording_write_object(obj, values):
            events.append((obj.name, "write"))
            return inner_write_object(obj, values)

        scheme.read = recording_read
        memory.read_object = recording_read_object
        memory.write_object = recording_write_object
        try:
            with np.errstate(all="ignore"):
                output = app.execute(memory, scheme)
        finally:
            del scheme.read  # drop the shadowing instance attributes
            del memory.read_object
            del memory.write_object
        return timeline, output


class ObjectMap:
    """Sorted-interval resolver from device addresses to object names.

    Built from the application's address space; replica regions and
    alignment pads resolve to ``None``.  Lookups are O(log n) bisects —
    only ever paid while tracing is enabled.
    """

    def __init__(self, objects: Iterable["DataObject"]):
        from repro.arch.address_space import BLOCK_BYTES

        spans = sorted(
            (obj.base_addr,
             obj.base_addr + obj.n_blocks * BLOCK_BYTES,
             obj.name)
            for obj in objects
        )
        self._bases = [s[0] for s in spans]
        self._ends = [s[1] for s in spans]
        self._names = [s[2] for s in spans]

    @classmethod
    def from_memory(cls, memory: "DeviceMemory") -> "ObjectMap":
        return cls(memory.objects)

    def resolve(self, addr: int) -> str | None:
        """Name of the object whose (block-padded) span covers ``addr``."""
        i = bisect_right(self._bases, addr) - 1
        if i >= 0 and addr < self._ends[i]:
            return self._names[i]
        return None

    def __len__(self) -> int:
        return len(self._names)


@dataclass
class ObjectTraceStats:
    """Per-object traffic attribution accumulated by a session.

    Unlike the ring buffer these totals are never evicted, so the
    attribution summary covers the *whole* run even when the event
    buffer wrapped.
    """

    loads: int = 0
    l1_misses: int = 0
    mshr_merges: int = 0
    stall_cycles: int = 0
    l2_accesses: int = 0
    l2_misses: int = 0
    dram_reads: int = 0
    dram_busy_cycles: int = 0
    dram_bus_cycles: int = 0
    noc_bytes: int = 0
    read_bytes: int = 0

    def to_dict(self) -> dict[str, int]:
        """All counters as a plain dict (JSON-summary shape)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class TraceSession:
    """Bounded, sampled, object-attributed event recorder.

    One session instruments one simulation (``simulate_trace`` /
    ``simulate_app`` with ``tracer=...``).  The hooks communicate
    through three tiny pieces of shared state:

    * :attr:`now` — the cycle of the load/store currently descending
      the hierarchy (components below the LD/ST unit have their own
      precise times and ignore it);
    * :attr:`ctx_obj` — the data object owning the in-flight request;
    * :attr:`last_stall_reason` — set by the LD/ST unit on structural
      stalls so the SM-level hook can label the warp's stall span.

    **Hot-path layout.**  The recorder never builds a
    :class:`TraceEvent` while the simulation runs.  Everything static
    about an emission site — phase, category, name, pid, tid and the
    ``args`` key tuple — is interned once at hook-attach time into a
    *site id* (:meth:`site`), and :meth:`record` appends only the
    dynamic payload ``(site, ts, dur, obj, args)`` to a flat ring
    list.  The ring is bounded by amortized compaction: appends run
    until twice ``max_events``, then the oldest half is sliced off in
    one C-level ``del``, so steady-state memory stays within
    2 × ``max_events`` records while the per-event cost is a single
    tuple append.  Named events (``TraceEvent``), ``args`` dicts and
    formatted strings are materialized lazily by :attr:`events` at
    export time — deferred stringification keeps allocation churn out
    of the simulated loop.
    """

    def __init__(self, config: TraceConfig | None = None):
        self.config = config or TraceConfig()
        cap = self.config.max_events
        self._cap = cap
        self._compact_at = 2 * cap
        #: Ring storage: ``(site_id, ts, dur, obj, args)`` tuples.
        self._buf: list[tuple] = []
        #: Records compacted away so far (evicted ring entries).
        self._trimmed = 0
        #: Interned site descriptors:
        #: ``(ph, cat, name, pid, tid, argkeys)``.
        self._sites: list[tuple] = []
        self._site_ids: dict[tuple, int] = {}
        # Hook-shared request context.
        self.now = 0
        self.ctx_obj: str | None = None
        self.last_stall_reason: str | None = None
        self._rng = random.Random(self.config.seed)
        self._object_map: ObjectMap | None = None
        self._categories = (
            set(self.config.categories)
            if self.config.categories is not None else None
        )
        self.object_stats: dict[str, ObjectTraceStats] = {}
        #: Interval time-series samples, in cycle order.
        self.samples: list[dict[str, Any]] = []
        self._interval_obj_bytes: dict[str, int] = {}
        self._process_names: dict[int, str] = {}
        self._thread_names: dict[tuple[int, int], str] = {}

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def set_object_map(self, memory: "DeviceMemory") -> None:
        """Install the address-space map used to attribute raw addresses."""
        self._object_map = ObjectMap.from_memory(memory)

    @property
    def object_map(self) -> ObjectMap | None:
        return self._object_map

    def attribute(self, addr: int) -> str:
        """Owning object of ``addr``: request context first, then the
        address-space map, then :data:`UNATTRIBUTED`."""
        if self.ctx_obj is not None:
            return self.ctx_obj
        if self._object_map is not None:
            name = self._object_map.resolve(addr)
            if name is not None:
                return name
        return UNATTRIBUTED

    def obj(self, name: str) -> ObjectTraceStats:
        """The attribution accumulator for object ``name``."""
        stats = self.object_stats.get(name)
        if stats is None:
            stats = ObjectTraceStats()
            self.object_stats[name] = stats
        return stats

    # ------------------------------------------------------------------
    # Sampling and emission
    # ------------------------------------------------------------------
    def sampled(self) -> bool:
        """Deterministic coin flip for high-frequency event classes."""
        rate = self.config.sample_rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        return self._rng.random() < rate

    def register_track(
        self, pid: int, name: str,
        tid: int | None = None, tid_name: str | None = None,
    ) -> None:
        """Name a process (and optionally one of its threads)."""
        self._process_names.setdefault(pid, name)
        if tid is not None and tid_name is not None:
            self._thread_names.setdefault((pid, tid), tid_name)

    @property
    def process_names(self) -> dict[int, str]:
        return dict(self._process_names)

    @property
    def thread_names(self) -> dict[tuple[int, int], str]:
        return dict(self._thread_names)

    def site(
        self,
        cat: str,
        name: str,
        pid: int,
        tid: int,
        ph: str = "X",
        argkeys: tuple[str, ...] | None = None,
    ) -> int:
        """Intern a static emission-site descriptor; returns its id.

        Hooks call this once at attach time and pass the id to
        :meth:`record` per event.  A filtered-out category interns to
        ``-1``, which :meth:`record` discards — the category check is
        thereby paid once per site instead of once per event.
        ``argkeys``, when given, names the slots of the raw ``args``
        tuple :meth:`record` receives; :attr:`events` zips them back
        into the ``args`` dict at export time.
        """
        if self._categories is not None and cat not in self._categories:
            return -1
        key = (ph, cat, name, pid, tid, argkeys)
        sid = self._site_ids.get(key)
        if sid is None:
            sid = len(self._sites)
            self._sites.append(key)
            self._site_ids[key] = sid
        return sid

    def record(
        self, sid: int, ts: int, dur: int,
        obj: str | None = None, args: Any = None,
    ) -> None:
        """Record one event at an interned site (the hot path).

        ``args`` is either a prebuilt dict or a raw tuple matching the
        site's ``argkeys``; both are materialized only at export.
        """
        if sid < 0:
            return
        buf = self._buf
        buf.append((sid, ts, dur, obj, args))
        if len(buf) >= self._compact_at:
            self._compact()

    def _compact(self) -> None:
        """Evict the over-capacity prefix of the ring in one slice.

        Hot hooks append to :attr:`_buf` directly (bypassing
        :meth:`record`) and rely on the interval sampler's
        :meth:`add_sample` calling this, so the ring's memory bound is
        enforced at interval granularity on that path.  The
        :attr:`events`/:attr:`emitted`/:attr:`dropped` accessors are
        compaction-timing independent — they slice/count from
        ``_trimmed`` plus the live tail — so *when* compaction runs
        never changes any output.
        """
        buf = self._buf
        cut = len(buf) - self._cap
        if cut > 0:
            del buf[:cut]
            self._trimmed += cut

    def emit(
        self,
        cat: str,
        name: str,
        ts: int,
        dur: int,
        pid: int,
        tid: int,
        obj: str | None = None,
        args: dict[str, Any] | None = None,
        ph: str = "X",
    ) -> None:
        """Record one event; oldest events are evicted when the ring is
        full (and counted in :attr:`dropped`).

        Convenience wrapper over :meth:`site` + :meth:`record` for
        cold call sites (kernel spans, tests); hot hooks pre-intern.
        """
        self.record(self.site(cat, name, pid, tid, ph), ts, dur, obj, args)

    def instant(
        self, cat: str, name: str, ts: int, pid: int, tid: int,
        obj: str | None = None, args: dict[str, Any] | None = None,
    ) -> None:
        """Record a zero-duration event."""
        self.emit(cat, name, ts, 0, pid, tid, obj, args, ph="i")

    def counter(
        self, cat: str, name: str, ts: int, pid: int,
        values: dict[str, float],
    ) -> None:
        """Record a counter sample (one series per ``values`` key)."""
        self.emit(cat, name, ts, 0, pid, TID_MAIN, None, values, ph="C")

    @property
    def emitted(self) -> int:
        """Events recorded (category-filtered emissions excluded)."""
        return self._trimmed + len(self._buf)

    @property
    def dropped(self) -> int:
        """Events evicted from the bounded ring (oldest first)."""
        over = self.emitted - self._cap
        return over if over > 0 else 0

    @property
    def events(self) -> list[TraceEvent]:
        """The newest ``max_events`` records, materialized in order.

        Event names, ``args`` dicts and :class:`TraceEvent` objects
        are built here — at export/inspection time — not while the
        simulation runs.
        """
        buf = self._buf
        if len(buf) > self._cap:
            buf = buf[len(buf) - self._cap:]
        sites = self._sites
        out: list[TraceEvent] = []
        for sid, ts, dur, obj, args in buf:
            ph, cat, name, pid, tid, argkeys = sites[sid]
            if argkeys is not None and type(args) is tuple:
                args = dict(zip(argkeys, args))
            out.append(
                TraceEvent(ts, dur, ph, cat, name, pid, tid, obj, args)
            )
        return out

    # ------------------------------------------------------------------
    # Interval time series
    # ------------------------------------------------------------------
    def account_read_bytes(self, obj_name: str, nbytes: int) -> None:
        """Credit DRAM read bytes to ``obj_name`` for the current
        sampling interval (and the whole-run attribution totals)."""
        self.obj(obj_name).read_bytes += nbytes
        bucket = self._interval_obj_bytes
        bucket[obj_name] = bucket.get(obj_name, 0) + nbytes

    def add_sample(self, cycle: int, **series: float) -> None:
        """Close the current interval: record one time-series sample and
        the per-object read-bandwidth bucket, then reset the bucket."""
        if len(self._buf) >= self._compact_at:
            self._compact()
        bucket = self._interval_obj_bytes
        obj_bytes = dict(sorted(bucket.items()))
        bucket.clear()  # same dict object: hooks hold a reference
        sample = {"cycle": int(cycle)}
        sample.update(series)
        sample["object_read_bytes"] = obj_bytes
        self.samples.append(sample)

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def object_summary(self) -> dict[str, dict[str, int]]:
        """Whole-run per-object attribution, sorted by object name."""
        return {
            name: stats.to_dict()
            for name, stats in sorted(self.object_stats.items())
        }

    def publish_metrics(self, metrics: "MetricsRegistry") -> None:
        """Fold the session's aggregates into a metrics registry."""
        metrics.inc("trace.events.emitted", self.emitted)
        metrics.inc("trace.events.kept", min(self._cap, len(self._buf)))
        metrics.inc("trace.events.dropped", self.dropped)
        metrics.inc("trace.samples", len(self.samples))
        for sample in self.samples:
            metrics.observe("trace.interval.ipc", sample.get("ipc", 0.0))
            metrics.observe(
                "trace.interval.mshr_occupancy",
                sample.get("mshr_occupancy", 0.0),
            )
            if sample.get("dram_requests", 0):
                metrics.observe(
                    "trace.interval.row_hit_pct",
                    100.0 * sample.get("row_hit_rate", 0.0),
                )
        for name, stats in sorted(self.object_stats.items()):
            metrics.inc(f"trace.object.{name}.read_bytes",
                        stats.read_bytes)
            metrics.inc(f"trace.object.{name}.loads", stats.loads)
