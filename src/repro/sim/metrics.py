"""Timing-simulation result records."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class StallBreakdown:
    """Why warps could not issue (in scheduler decisions, not cycles)."""

    memory_wait: int = 0
    mshr_full: int = 0
    compare_queue_full: int = 0


@dataclass
class SimReport:
    """Outcome of one timing simulation run."""

    app_name: str
    scheme_name: str
    protected_names: tuple[str, ...]
    cycles: int
    kernel_cycles: dict[str, int]
    instructions: int
    #: Demand read transactions sent below L1 (true misses, no merges).
    demand_misses: int
    #: Extra read transactions for replica copies (detection/correction).
    replica_transactions: int
    #: Write-through store transactions sent below L1.
    store_transactions: int
    l1_accesses: int
    l1_hits: int
    l2_accesses: int
    l2_hits: int
    dram_requests: int
    dram_row_hits: int
    stalls: StallBreakdown = field(default_factory=StallBreakdown)
    #: Total cycles requests queued behind busy DRAM banks.
    dram_bank_queue_cycles: int = 0
    #: Total cycles ready lines waited for the channel data bus.
    dram_bus_queue_cycles: int = 0

    @property
    def l1_missed_accesses(self) -> int:
        """The Figure 7 companion metric: read transactions below L1,
        including replica traffic."""
        return self.demand_misses + self.replica_transactions

    @property
    def l1_hit_rate(self) -> float:
        return self.l1_hits / self.l1_accesses if self.l1_accesses else 0.0

    @property
    def l2_hit_rate(self) -> float:
        return self.l2_hits / self.l2_accesses if self.l2_accesses else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def slowdown_vs(self, baseline: "SimReport") -> float:
        """Execution time normalized to a baseline run (Fig 7 y-axis)."""
        if baseline.cycles == 0:
            raise ValueError("baseline has zero cycles")
        return self.cycles / baseline.cycles

    def missed_accesses_vs(self, baseline: "SimReport") -> float:
        """L1-missed accesses normalized to a baseline run."""
        if baseline.l1_missed_accesses == 0:
            raise ValueError("baseline has zero missed accesses")
        return self.l1_missed_accesses / baseline.l1_missed_accesses

    def summary(self) -> str:
        """One-line human-readable report."""
        prot = ",".join(self.protected_names) or "-"
        return (
            f"{self.app_name} [{self.scheme_name}; protected: {prot}] "
            f"cycles={self.cycles} ipc={self.ipc:.2f} "
            f"L1 hit={self.l1_hit_rate:.1%} "
            f"missed-accesses={self.l1_missed_accesses} "
            f"(replicas {self.replica_transactions})"
        )
