"""Streaming multiprocessor model: CTA residency and warp issue.

Each SM keeps a queue of CTAs assigned to it, admits them up to the
``max_ctas_per_sm``/``max_warps_per_sm`` limits, and every cycle
issues up to ``issue_width`` warp-instructions round-robin across
ready resident warps.  When no warp can issue, the SM's clock jumps to
the earliest warp-resume time — the event-driven shortcut that keeps
simulation cost proportional to work, not to cycles.
"""

from __future__ import annotations

from repro.arch.config import GpuConfig
from repro.kernels.trace import Compute, CtaTrace, Load, Store
from repro.sim.ldst import LdstUnit, SimStats
from repro.sim.warp import WarpRunner

_FAR_FUTURE = 1 << 62


class _ResidentCta:
    __slots__ = ("warps", "remaining")

    def __init__(self, cta: CtaTrace):
        self.warps = [WarpRunner(w) for w in cta.warps]
        self.remaining = sum(1 for w in self.warps if not w.done)


class SmCore:
    """One SM: CTA admission, warp scheduling, LD/ST issue."""

    def __init__(
        self,
        sm_id: int,
        config: GpuConfig,
        ldst: LdstUnit,
        stats: SimStats,
    ):
        self.sm_id = sm_id
        self.config = config
        self.ldst = ldst
        self.stats = stats
        self.cycle = 0
        self._cta_queue: list[CtaTrace] = []
        self._resident: list[_ResidentCta] = []
        self._warps: list[WarpRunner] = []
        self._warp_cta: dict[int, _ResidentCta] = {}
        self._rr = 0

    # ------------------------------------------------------------------
    # Kernel orchestration
    # ------------------------------------------------------------------
    def start_kernel(self, ctas: list[CtaTrace], start_cycle: int) -> None:
        """Queue this SM's share of a kernel's CTAs."""
        if self._warps or self._cta_queue:
            raise RuntimeError(f"SM{self.sm_id} still busy")
        self.cycle = max(self.cycle, start_cycle)
        self._cta_queue = list(ctas)
        self._rr = 0
        self._admit()

    def _admit(self) -> None:
        while self._cta_queue:
            cta = self._cta_queue[0]
            if len(self._resident) >= self.config.max_ctas_per_sm:
                return
            if len(self._warps) + len(cta.warps) \
                    > self.config.max_warps_per_sm:
                # Admit at least one CTA even if oversized, otherwise a
                # CTA larger than the warp limit would deadlock.
                if self._warps:
                    return
            self._cta_queue.pop(0)
            resident = _ResidentCta(cta)
            self._resident.append(resident)
            for warp in resident.warps:
                if not warp.done:
                    warp.resume_time = self.cycle
                    self._warps.append(warp)
                    self._warp_cta[id(warp)] = resident

    @property
    def active(self) -> bool:
        return bool(self._warps or self._cta_queue)

    # ------------------------------------------------------------------
    # Cycle execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Issue at the current cycle, then advance the local clock."""
        slots = self.config.issue_width
        n = len(self._warps)
        issued_any = False
        retired = False
        scanned = 0
        while slots > 0 and scanned < n:
            warp = self._warps[(self._rr + scanned) % n]
            scanned += 1
            if warp.done or warp.resume_time > self.cycle:
                continue
            used = self._issue(warp, slots)
            if used:
                issued_any = True
                slots -= used
            if warp.done:
                retired = True
        if retired:
            self._retire()
            n = len(self._warps)
        if n:
            self._rr = (self._rr + 1) % max(n, 1)

        if not self.active:
            return
        if issued_any:
            self.cycle += 1
            return
        # Nothing could issue: jump to the earliest resume time.
        next_time = _FAR_FUTURE
        for warp in self._warps:
            if not warp.done and warp.resume_time < next_time:
                next_time = warp.resume_time
        self.cycle = max(self.cycle + 1, next_time)

    def _issue(self, warp: WarpRunner, slots: int) -> int:
        # NOTE: the traced variant in _attach_tracer duplicates this
        # body (fused instrumentation) — keep the two in lockstep.
        inst = warp.current()
        if isinstance(inst, Compute):
            if inst.wait and warp.outstanding_max > self.cycle:
                self.stats.stalls.memory_wait += 1
                warp.resume_time = warp.outstanding_max
                return 0
            if inst.wait:
                warp.outstanding_max = 0
            if warp.compute_remaining == 0:
                warp.compute_remaining = inst.count
            take = min(slots, warp.compute_remaining)
            warp.compute_remaining -= take
            self.stats.instructions += take
            if warp.compute_remaining == 0:
                warp.advance()
            return take

        if isinstance(inst, Load):
            used = 0
            while warp.txn_index < len(inst.addrs) and used < slots:
                addr = inst.addrs[warp.txn_index]
                ready, stall_until = self.ldst.load(
                    self.cycle, inst.obj, addr
                )
                if stall_until is not None:
                    warp.resume_time = max(stall_until, self.cycle + 1)
                    return used
                used += 1
                warp.txn_index += 1
                self.stats.instructions += 1
                if ready > warp.outstanding_max:
                    warp.outstanding_max = ready
            if warp.txn_index >= len(inst.addrs):
                warp.advance()
            return used

        if isinstance(inst, Store):
            used = 0
            while warp.txn_index < len(inst.addrs) and used < slots:
                self.ldst.store(self.cycle, inst.addrs[warp.txn_index])
                used += 1
                warp.txn_index += 1
                self.stats.instructions += 1
            if warp.txn_index >= len(inst.addrs):
                warp.advance()
            return used

        raise TypeError(f"unknown instruction {inst!r}")

    # ------------------------------------------------------------------
    # Cycle-level tracing (attach-time instrumentation)
    # ------------------------------------------------------------------
    def _attach_tracer(self, tracer) -> None:
        """Instrument this SM for a trace session.

        ``_issue`` is rebound to a wrapper that emits per-warp stall
        spans (always kept — stalls are the structural events the
        paper's overhead analysis cares about) and sampled issue
        instants, each on the warp's own thread track inside this SM's
        process group.  The stall reason comes from the stats delta for
        compute waits and from the LD/ST unit's shared context for
        structural (MSHR / compare-queue) stalls.
        """
        from repro.obs.trace import PID_SM_BASE, TID_LDST

        pid = PID_SM_BASE + self.sm_id
        tracer.register_track(pid, f"SM {self.sm_id}", TID_LDST, "LD/ST")
        self.ldst._attach_tracer(tracer, pid)
        # Fused instrumentation: the traced variant duplicates
        # ``_issue``'s body (keep the two in lockstep!) instead of
        # wrapping it, so stall reasons fall out of the branches the
        # scheduler takes anyway — no stats-delta re-derivation, no
        # second call frame.  All attribute chains the slot loop would
        # repeat are bound once here; event sites are interned outside
        # the loop (stall-reason and per-warp sites lazily, on first
        # use) and the payload goes straight into the session ring.
        stats = self.stats
        stalls = self.stats.stalls
        ldst_load = self.ldst.load    # traced — attached above
        ldst_store = self.ldst.store  # traced — attached above
        site = tracer.site
        sampled = tracer.sampled
        always = tracer.config.sample_rate >= 1.0
        buf_append = tracer._buf.append
        stall_sites: dict[tuple[str, int], int] = {}
        issue_sites: dict[int, int] = {}
        issue_sites_get = issue_sites.get
        # ``used`` never exceeds the issue width, so every instant args
        # tuple the hook can emit is interned once and shared.
        used_args = tuple(
            (i,) for i in range(self.config.issue_width + 1)
        )

        def _stall_span(reason: str, warp, cycle: int, obj) -> None:
            # A stalled warp has not advanced, so its current
            # instruction names the object it is blocked on.
            key = (reason, warp.warp_id)
            sid = stall_sites.get(key)
            if sid is None:
                sid = site("warp", "stall:" + reason, pid, warp.warp_id)
                stall_sites[key] = sid
            if sid >= 0:
                buf_append((sid, cycle,
                            max(warp.resume_time - cycle, 1), obj, None))

        def traced_issue(warp, slots: int) -> int:
            cycle = self.cycle
            inst = warp.current()
            if isinstance(inst, Compute):
                if inst.wait and warp.outstanding_max > cycle:
                    stalls.memory_wait += 1
                    warp.resume_time = warp.outstanding_max
                    _stall_span("memory_wait", warp, cycle, None)
                    return 0
                if inst.wait:
                    warp.outstanding_max = 0
                if warp.compute_remaining == 0:
                    warp.compute_remaining = inst.count
                used = min(slots, warp.compute_remaining)
                warp.compute_remaining -= used
                stats.instructions += used
                if warp.compute_remaining == 0:
                    warp.advance()
            elif isinstance(inst, Load):
                used = 0
                addrs = inst.addrs
                obj_name = inst.obj
                txn = warp.txn_index
                n = len(addrs)
                while txn < n and used < slots:
                    ready, stall_until = ldst_load(
                        cycle, obj_name, addrs[txn]
                    )
                    if stall_until is not None:
                        warp.resume_time = max(stall_until, cycle + 1)
                        warp.txn_index = txn
                        reason = tracer.last_stall_reason
                        tracer.last_stall_reason = None
                        _stall_span(reason, warp, cycle, obj_name)
                        return used
                    used += 1
                    txn += 1
                    stats.instructions += 1
                    if ready > warp.outstanding_max:
                        warp.outstanding_max = ready
                warp.txn_index = txn
                if txn >= n:
                    warp.advance()
            elif isinstance(inst, Store):
                used = 0
                addrs = inst.addrs
                txn = warp.txn_index
                n = len(addrs)
                while txn < n and used < slots:
                    ldst_store(cycle, addrs[txn])
                    used += 1
                    txn += 1
                    stats.instructions += 1
                warp.txn_index = txn
                if txn >= n:
                    warp.advance()
            else:
                raise TypeError(f"unknown instruction {inst!r}")
            if used and (always or sampled()):
                wid = warp.warp_id
                sid = issue_sites_get(wid)
                if sid is None:
                    sid = site("warp", "issue", pid, wid, ph="i",
                               argkeys=("slots",))
                    issue_sites[wid] = sid
                if sid >= 0:
                    buf_append((sid, cycle, 0, None, used_args[used]))
            return used

        self._issue = traced_issue

    def _retire(self) -> None:
        finished_ctas = set()
        for warp in self._warps:
            if warp.done:
                resident = self._warp_cta.pop(id(warp), None)
                if resident is not None:
                    resident.remaining -= 1
                    if resident.remaining == 0:
                        finished_ctas.add(id(resident))
        self._warps = [w for w in self._warps if not w.done]
        if finished_ctas:
            self._resident = [
                r for r in self._resident if id(r) not in finished_ctas
            ]
            self._admit()
