"""Top-level timing simulation driver.

``simulate_trace`` replays an application trace on the configured GPU:
kernels run back-to-back (a kernel launch is a global barrier, as in
CUDA's default stream), CTAs are assigned round-robin to SMs, and SMs
advance in global-time order (always stepping the SM with the smallest
local clock) so that shared-resource contention stays causal.

``simulate_app`` is the convenience wrapper that also materializes the
replica allocations for a protection scheme and reports everything as
a :class:`~repro.sim.metrics.SimReport`.
"""

from __future__ import annotations

import heapq

from repro.arch.address_space import DeviceMemory
from repro.arch.config import GpuConfig, PAPER_CONFIG
from repro.core.hardware import HardwareBudget
from repro.core.replication import create_replicas
from repro.errors import ConfigError
from repro.kernels.base import GpuApplication
from repro.kernels.trace import AppTrace
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import PID_TIMELINE, TID_MAIN, TraceSession
from repro.sim.ldst import LdstUnit, SimStats, TimingProtection
from repro.sim.memory_subsystem import MemorySubsystem
from repro.sim.metrics import SimReport
from repro.sim.sm import SmCore


def build_protection(
    memory: DeviceMemory,
    scheme_name: str,
    protected_names: tuple[str, ...],
    lazy: bool = True,
    schemes: dict[str, str] | None = None,
) -> TimingProtection:
    """Allocate replicas in a shadow memory and derive address offsets.

    The shadow is a copy-on-write clone and the replica allocation runs
    the allocator *dry* (``populate=False``): the timing model needs
    only the address offsets, so no device-memory bytes are ever copied
    — large applications used to pay a full deep copy per
    :func:`simulate_app` call just to compute this arithmetic.  The
    simulated address map stays faithful (replicas really occupy
    distinct DRAM regions) and the caller's memory is never mutated.

    ``schemes`` (required for ``scheme_name="mixed"``) maps each
    protected object to its own scheme, so a mixed configuration
    allocates one replica for its detection objects and two for its
    correction objects.
    """
    if scheme_name == "baseline" or not protected_names:
        return TimingProtection.baseline()
    if scheme_name == "mixed":
        if not schemes:
            raise ConfigError(
                "mixed protection needs a per-object scheme map"
            )
        per_object = {
            name: schemes[name] for name in protected_names
        }
    elif scheme_name not in ("detection", "correction"):
        raise ConfigError(f"unknown scheme {scheme_name!r}")
    else:
        per_object = {name: scheme_name for name in protected_names}
    shadow = memory.cow_clone()
    offsets: dict[str, tuple[int, ...]] = {}
    for name in protected_names:
        extra = 1 if per_object[name] == "detection" else 2
        replica_sets = create_replicas(
            shadow, [shadow.object(name)], extra, populate=False
        )
        rs = replica_sets[name]
        offsets[name] = tuple(
            replica.base_addr - rs.primary.base_addr
            for replica in rs.replicas
        )
    return TimingProtection(
        scheme_name,
        lazy=lazy,
        offsets=offsets,
        schemes=per_object if scheme_name == "mixed" else {},
    )


def _publish_sim_metrics(
    metrics: MetricsRegistry,
    stats: SimStats,
    ldsts: list[LdstUnit],
    subsystem: MemorySubsystem,
    report: SimReport,
) -> None:
    """Report one simulation's counters into an observability registry.

    Covers the tentpole's simulator signals: SM stall breakdown, MSHR
    and compare-queue pressure, cache counters, and per-channel DRAM
    bank-queue / bus-queue / row-hit distributions.
    """
    metrics.inc("sim.runs")
    metrics.inc("sim.cycles", report.cycles)
    metrics.inc("sim.instructions", report.instructions)
    metrics.inc("sim.stalls.memory_wait", stats.stalls.memory_wait)
    metrics.inc("sim.stalls.mshr_full", stats.stalls.mshr_full)
    metrics.inc("sim.stalls.compare_queue_full",
                stats.stalls.compare_queue_full)
    for unit in ldsts:
        metrics.inc("sim.mshr.allocations", unit.mshr.stats.allocations)
        metrics.inc("sim.mshr.merges", unit.mshr.stats.merges)
        metrics.inc("sim.mshr.full_stalls", unit.mshr.stats.full_stalls)
        metrics.inc("sim.mshr.merge_stalls",
                    unit.mshr.stats.merge_stalls)
    metrics.inc("sim.l1.accesses", report.l1_accesses)
    metrics.inc("sim.l1.hits", report.l1_hits)
    metrics.inc("sim.l2.accesses", report.l2_accesses)
    metrics.inc("sim.l2.hits", report.l2_hits)
    metrics.inc("sim.dram.requests", report.dram_requests)
    metrics.inc("sim.dram.row_hits", report.dram_row_hits)
    metrics.inc("sim.dram.bank_queue_cycles",
                report.dram_bank_queue_cycles)
    metrics.inc("sim.dram.bus_queue_cycles",
                report.dram_bus_queue_cycles)
    for channel in subsystem.dram_channels:
        metrics.observe("sim.dram.channel_bank_queue_cycles",
                        channel.stats.bank_queue_cycles)
        metrics.observe("sim.dram.channel_bus_queue_cycles",
                        channel.stats.bus_queue_cycles)
        if channel.stats.requests:
            metrics.observe("sim.dram.channel_row_hit_pct",
                            100.0 * channel.row_hit_rate)


class _IntervalSampler:
    """Per-N-cycle time-series sampler driven by the drain loop.

    The popped heap cycle is the global low-water mark — every SM's
    local clock is at or past it — so crossing a sampling boundary
    there guarantees all work before the boundary has been simulated.
    Series are deltas over the interval (IPC, DRAM requests, row-hit
    rate) plus point-in-time MSHR occupancy; per-object read-bandwidth
    buckets are folded in by the session itself.
    """

    def __init__(
        self,
        tracer: TraceSession,
        stats: SimStats,
        ldsts: list[LdstUnit],
        subsystem: MemorySubsystem,
    ):
        self.tracer = tracer
        self.stats = stats
        self.ldsts = ldsts
        self.subsystem = subsystem
        self.interval = tracer.config.interval_cycles
        self.next_boundary = self.interval
        self._instructions = 0
        self._dram_requests = 0
        self._dram_row_hits = 0

    def advance(self, cycle: int) -> None:
        while cycle >= self.next_boundary:
            self._sample(self.next_boundary, self.interval)
            self.next_boundary += self.interval

    def flush(self, end: int) -> None:
        """Close any boundary-aligned intervals plus the trailing
        partial one at a kernel barrier."""
        self.advance(end)
        partial = end - (self.next_boundary - self.interval)
        if partial > 0 and self.stats.instructions != self._instructions:
            self._sample(end, partial)
            # Re-anchor so the next kernel's intervals stay aligned.
            self.next_boundary = (
                end // self.interval + 1
            ) * self.interval

    def _sample(self, cycle: int, length: int) -> None:
        instructions = self.stats.instructions
        requests = self.subsystem.dram_requests
        row_hits = self.subsystem.dram_row_hits
        d_instr = instructions - self._instructions
        d_req = requests - self._dram_requests
        d_hits = row_hits - self._dram_row_hits
        self._instructions = instructions
        self._dram_requests = requests
        self._dram_row_hits = row_hits
        self.tracer.add_sample(
            cycle,
            ipc=d_instr / length,
            mshr_occupancy=sum(u.mshr.outstanding for u in self.ldsts),
            row_hit_rate=(d_hits / d_req) if d_req else 0.0,
            instructions=d_instr,
            dram_requests=d_req,
        )


def _attach_trace_hooks(
    tracer: TraceSession,
    sms: list[SmCore],
    subsystem: MemorySubsystem,
) -> None:
    """Instrument every component of one simulation for ``tracer``.

    Instance methods are rebound only on these objects — the classes
    (and therefore every un-traced simulation, including ones running
    concurrently in the same process) are untouched.
    """
    tracer.register_track(
        PID_TIMELINE, "kernel timeline", TID_MAIN, "kernels")
    subsystem._attach_tracer(tracer)
    for sm in sms:
        sm._attach_tracer(tracer)


def simulate_trace(
    trace: AppTrace,
    config: GpuConfig = PAPER_CONFIG,
    protection: TimingProtection | None = None,
    budget: HardwareBudget | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: TraceSession | None = None,
) -> SimReport:
    """Run the timing simulation of one application trace.

    ``metrics``, when given, receives the simulator's observability
    counters and per-channel DRAM distributions (additively — one
    registry can aggregate many simulations).  ``tracer``, when given,
    records the cycle-level event trace and interval time series; the
    un-traced path executes exactly the code it did before tracing
    existed (hooks are attached per instance, never installed on the
    classes).
    """
    protection = protection or TimingProtection.baseline()
    budget = budget or HardwareBudget.from_config(config)
    stats = SimStats()
    subsystem = MemorySubsystem(config)
    ldsts = [
        LdstUnit(config, subsystem, protection, budget, stats,
                 name=f"sm{i}")
        for i in range(config.n_sms)
    ]
    sms = [
        SmCore(i, config, ldsts[i], stats) for i in range(config.n_sms)
    ]
    sampler: _IntervalSampler | None = None
    if tracer is not None:
        _attach_trace_hooks(tracer, sms, subsystem)
        sampler = _IntervalSampler(tracer, stats, ldsts, subsystem)

    global_time = 0
    kernel_cycles: dict[str, int] = {}
    for kernel in trace.kernels:
        assignments: list[list] = [[] for _ in sms]
        for i, cta in enumerate(kernel.ctas):
            assignments[i % len(sms)].append(cta)
        heap = []
        for sm, ctas in zip(sms, assignments):
            if ctas:
                sm.start_kernel(ctas, global_time)
                heapq.heappush(heap, (sm.cycle, sm.sm_id))
        if sampler is None:
            while heap:
                _cycle, sm_id = heapq.heappop(heap)
                sm = sms[sm_id]
                if not sm.active:
                    continue
                sm.step()
                if sm.active:
                    heapq.heappush(heap, (sm.cycle, sm.sm_id))
        else:
            while heap:
                _cycle, sm_id = heapq.heappop(heap)
                sampler.advance(_cycle)
                sm = sms[sm_id]
                if not sm.active:
                    continue
                sm.step()
                if sm.active:
                    heapq.heappush(heap, (sm.cycle, sm.sm_id))
        kernel_end = max(
            (sm.cycle for sm in sms), default=global_time
        )
        if tracer is not None:
            sampler.flush(kernel_end)
            tracer.emit(
                "kernel", kernel.name, global_time,
                kernel_end - global_time, PID_TIMELINE, TID_MAIN,
                args={"ctas": len(kernel.ctas)},
            )
        kernel_cycles[kernel.name] = kernel_end - global_time
        global_time = kernel_end

    l1_accesses = sum(u.l1.stats.accesses for u in ldsts)
    l1_hits = sum(u.l1.stats.hits for u in ldsts)
    report = SimReport(
        app_name=trace.app_name,
        scheme_name=protection.scheme_name,
        protected_names=tuple(sorted(protection.offsets)),
        cycles=global_time,
        kernel_cycles=kernel_cycles,
        instructions=stats.instructions,
        demand_misses=stats.demand_misses,
        replica_transactions=stats.replica_transactions,
        store_transactions=stats.store_transactions,
        l1_accesses=l1_accesses,
        l1_hits=l1_hits,
        l2_accesses=subsystem.l2_accesses,
        l2_hits=subsystem.l2_hits,
        dram_requests=subsystem.dram_requests,
        dram_row_hits=subsystem.dram_row_hits,
        stalls=stats.stalls,
        dram_bank_queue_cycles=subsystem.dram_bank_queue_cycles,
        dram_bus_queue_cycles=subsystem.dram_bus_queue_cycles,
    )
    if metrics is not None:
        _publish_sim_metrics(metrics, stats, ldsts, subsystem, report)
        if tracer is not None:
            tracer.publish_metrics(metrics)
    return report


def simulate_app(
    app: GpuApplication,
    trace: AppTrace | None = None,
    memory: DeviceMemory | None = None,
    config: GpuConfig = PAPER_CONFIG,
    scheme_name: str = "baseline",
    protected_names: tuple[str, ...] = (),
    budget: HardwareBudget | None = None,
    lazy: bool = True,
    metrics: MetricsRegistry | None = None,
    tracer: TraceSession | None = None,
    schemes: dict[str, str] | None = None,
) -> SimReport:
    """Simulate an application under a protection configuration.

    ``schemes`` carries the per-object scheme map when
    ``scheme_name="mixed"`` (see :func:`build_protection`).
    """
    if memory is None:
        memory = app.fresh_memory()
    if trace is None:
        trace = app.build_trace(memory)
    if tracer is not None:
        tracer.set_object_map(memory)
    protection = build_protection(
        memory, scheme_name, tuple(protected_names), lazy=lazy,
        schemes=schemes,
    )
    return simulate_trace(trace, config, protection, budget,
                          metrics=metrics, tracer=tracer)
